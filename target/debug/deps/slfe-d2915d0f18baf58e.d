/root/repo/target/debug/deps/slfe-d2915d0f18baf58e.d: src/lib.rs

/root/repo/target/debug/deps/slfe-d2915d0f18baf58e: src/lib.rs

src/lib.rs:
