/root/repo/target/debug/deps/integration-8ee53a2c04bc48cd.d: tests/integration.rs

/root/repo/target/debug/deps/integration-8ee53a2c04bc48cd: tests/integration.rs

tests/integration.rs:
