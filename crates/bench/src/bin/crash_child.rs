//! Crash-injection child process for the kill-9 recovery proof.
//!
//! Runs a durable [`DeltaServer`] for one registered application, applying a
//! deterministic seeded batch sequence, printing `applied N` (flushed) after
//! every batch so the parent test can SIGKILL it at a randomized point. On
//! restart with the same `--dir` it recovers via snapshot + WAL replay and
//! continues from the first unapplied batch — the batch sequence is a pure
//! function of the (bit-exactly recovered) graph state and the seed, so a
//! killed-and-resumed run must produce values bit-identical to an
//! uninterrupted one. On completion it writes the served values' exact bit
//! patterns to `--values-out` for the parent to compare.
//!
//! ```text
//! crash_child --dir D --app NAME --workers W [--batches B] [--snapshot-every S] [--seed SEED] [--values-out FILE]
//! ```
//!
//! `NAME` is one of: sssp, bfs, cc, wp, pr, tr, spmv, heat, numpaths.

use slfe_apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, RedundancyMode};
use slfe_delta::durability::SnapshotValue;
use slfe_delta::{DeltaServer, DurabilityConfig, ServerConfig, UpdateBatch};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, Graph};
use std::io::Write as _;
use std::path::PathBuf;

struct Options {
    dir: PathBuf,
    app: String,
    workers: usize,
    batches: u64,
    snapshot_every: u64,
    seed: u64,
    values_out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut dir = None;
    let mut app = None;
    let mut options = Options {
        dir: PathBuf::new(),
        app: String::new(),
        workers: 1,
        batches: 6,
        snapshot_every: 2,
        seed: 0,
        values_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--app" => app = Some(value("--app")?),
            "--workers" => {
                options.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?
            }
            "--batches" => {
                options.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("invalid --batches: {e}"))?
            }
            "--snapshot-every" => {
                options.snapshot_every = value("--snapshot-every")?
                    .parse()
                    .map_err(|e| format!("invalid --snapshot-every: {e}"))?
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("invalid --seed: {e}"))?
            }
            "--values-out" => options.values_out = Some(PathBuf::from(value("--values-out")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: crash_child --dir D --app NAME --workers W [--batches B] [--snapshot-every S] [--seed SEED] [--values-out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    options.dir = dir.ok_or("--dir is required")?;
    options.app = app.ok_or("--app is required")?;
    Ok(options)
}

#[derive(Clone, Copy)]
enum BatchKind {
    /// ~60% upserts (some growing the id space), ~40% deletions.
    Mixed { allow_growth: bool },
    /// Symmetric edge pairs for the undirected CC semantics.
    Symmetric,
    /// Forward-only insertions keeping the layered DAG acyclic.
    Dag,
}

/// The batch for step `i` — a pure function of the current graph and the
/// seed, so an uninterrupted run and a crash-resumed run (whose graph is
/// recovered bit-exactly) generate identical sequences.
fn make_batch(graph: &Graph, seed: u64, kind: BatchKind) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..12 {
        match kind {
            BatchKind::Mixed { allow_growth } => {
                let src = rng.range_u32(0, n);
                if rng.next_f64() < 0.6 {
                    let hi = if allow_growth { n + 6 } else { n };
                    batch.insert(src, rng.range_u32(0, hi), rng.range_f32(1.0, 10.0));
                } else {
                    let outs = graph.out_neighbors(src);
                    if !outs.is_empty() {
                        batch.delete(src, outs[rng.range_usize(0, outs.len())]);
                    }
                }
            }
            BatchKind::Symmetric => {
                let a = rng.range_u32(0, n);
                let b = rng.range_u32(0, n);
                if rng.next_f64() < 0.6 {
                    batch.insert_symmetric(a, b, 1.0);
                } else if graph.has_edge(a, b) {
                    batch.delete_symmetric(a, b);
                }
            }
            BatchKind::Dag => {
                let a = rng.range_u32(0, n - 1);
                if rng.next_f64() < 0.6 {
                    batch.insert(a, rng.range_u32(a + 1, n), 1.0);
                } else {
                    let outs = graph.out_neighbors(a);
                    if !outs.is_empty() {
                        batch.delete(a, outs[rng.range_usize(0, outs.len())]);
                    }
                }
            }
        }
    }
    batch
}

/// The arithmetic apps need the ruler-free exact-fixpoint configuration
/// (mirroring the incremental acceptance tests).
fn exact_config() -> EngineConfig {
    EngineConfig::default()
        .with_redundancy(RedundancyMode::Disabled)
        .with_max_iterations(400)
}

/// Open-or-create the durable server, apply every not-yet-applied batch
/// (announcing each on stdout for the killer), then dump the value bits.
fn serve<P, F>(
    options: &Options,
    make_graph: impl Fn() -> Graph,
    make_program: F,
    engine: EngineConfig,
    kind: BatchKind,
) where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P,
{
    let config = ServerConfig {
        cluster: ClusterConfig::new(2, options.workers),
        engine: engine.with_trace(false),
        ..ServerConfig::default()
    };
    let durability =
        DurabilityConfig::new(&options.dir).with_snapshot_every(options.snapshot_every);
    let mut server = DeltaServer::open_or_create(&make_graph, make_program, config, durability)
        .expect("failed to open or create the durable server");
    let applied = server.stats().batches_applied;
    eprintln!("starting at batch {applied}/{}", options.batches);
    for i in applied..options.batches {
        let batch = make_batch(server.graph(), options.seed.wrapping_add(i), kind);
        server.apply(&batch);
        println!("applied {}", i + 1);
        std::io::stdout().flush().expect("flush stdout");
    }
    if let Some(out) = &options.values_out {
        let mut bytes = Vec::new();
        for &v in server.values() {
            v.write(&mut bytes);
        }
        std::fs::write(out, &bytes).expect("failed to write the values file");
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let seed = options.seed;
    let rmat = move || generators::rmat(260, 1700, 0.57, 0.19, 0.19, seed + 900);
    let sym = move || cc::symmetrize(&generators::rmat(200, 900, 0.57, 0.19, 0.19, seed + 950));
    let dag = move || generators::layered(8, 30, 4, seed + 77);
    let root = slfe_graph::stats::highest_out_degree_vertex(&rmat()).unwrap_or(0);
    let grow = BatchKind::Mixed { allow_growth: true };
    let fixed = BatchKind::Mixed {
        allow_growth: false,
    };

    match options.app.as_str() {
        "sssp" => serve(
            &options,
            rmat,
            move |_: &Graph| sssp::SsspProgram { root },
            EngineConfig::default(),
            grow,
        ),
        "bfs" => serve(
            &options,
            rmat,
            move |_: &Graph| bfs::BfsProgram { root },
            EngineConfig::default(),
            grow,
        ),
        "wp" => serve(
            &options,
            rmat,
            move |_: &Graph| widestpath::WidestPathProgram { root },
            EngineConfig::default(),
            grow,
        ),
        "cc" => serve(
            &options,
            sym,
            cc::CcProgram::for_graph,
            EngineConfig::default(),
            BatchKind::Symmetric,
        ),
        "pr" => serve(
            &options,
            rmat,
            pagerank::PageRankProgram::for_graph,
            exact_config(),
            grow,
        ),
        "tr" => serve(
            &options,
            rmat,
            |_: &Graph| tunkrank::TunkRankProgram::default(),
            exact_config(),
            fixed,
        ),
        "spmv" => serve(
            &options,
            rmat,
            |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
            exact_config(),
            grow,
        ),
        "heat" => serve(
            &options,
            rmat,
            move |g: &Graph| heat::HeatProgram::point_source(g, root),
            exact_config()
                .with_tolerance(1e-6)
                .with_max_iterations(3000),
            fixed,
        ),
        "numpaths" => serve(
            &options,
            dag,
            |_: &Graph| numpaths::NumPathsProgram { root: 0 },
            exact_config(),
            BatchKind::Dag,
        ),
        other => {
            eprintln!("unknown app {other}");
            std::process::exit(2);
        }
    }
}
