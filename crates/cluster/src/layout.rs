//! Degree-aware global chunk layout: the work units of the cross-node executor.
//!
//! PR 1 cut every node's owned-vertex list into fixed 256-vertex mini-chunks and
//! ran one node at a time. Two sources of tail latency survived that design:
//!
//! * **Hub chunks.** Chunking partitioners put consecutive vertex ids together,
//!   so a chunk containing a power-law hub can carry orders of magnitude more
//!   edge work than its neighbors. Whichever worker draws it last dominates the
//!   phase makespan.
//! * **Discovery order.** Chunks were claimed in vertex order, so a hub chunk
//!   sitting at the end of the id range *started* last — the worst possible
//!   moment under work stealing.
//!
//! [`GlobalChunkLayout`] fixes both, Gemini-style (chunk-based secondary
//! partitioning): chunks whose **estimated work** (`1 + in_degree + out_degree`
//! per vertex) exceeds a per-node budget are split — a mega-hub gets a chunk of
//! its own — and the final chunk list is ordered **descending by estimate**, so
//! stealing drains the expensive tail first and the cheap chunks level the load
//! at the end. The layout spans *all* nodes: one phase hands every node's
//! chunks to one global worker pool, which is what lets `total_workers` threads
//! stay busy instead of `workers_per_node`.
//!
//! The layout is pure bookkeeping — every owned vertex appears in exactly one
//! chunk (the property tests pin this), so execution results are unaffected;
//! only the claim order and the work-per-claim distribution change.

use crate::stealing::{ScheduleOutcome, SchedulingPolicy};
use slfe_graph::{Graph, VertexId};

/// Split threshold: a chunk is closed early once its estimate reaches
/// `SPLIT_FACTOR ×` the node's average per-base-chunk estimate.
const SPLIT_FACTOR: u64 = 2;

/// One schedulable unit: a contiguous slice of a node's owned-vertex list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkChunk {
    /// The simulated node owning every vertex of this chunk.
    pub node: usize,
    /// Start index (inclusive) into `Cluster::vertices_of(node)`.
    pub start: usize,
    /// End index (exclusive) into `Cluster::vertices_of(node)`.
    pub end: usize,
    /// Estimated work: `Σ (1 + in_degree + out_degree)` over the slice.
    pub estimate: u64,
}

impl WorkChunk {
    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when the chunk covers no vertices (never produced by `build`).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The degree-aware, cluster-wide chunk layout of one graph version.
#[derive(Debug, Clone)]
pub struct GlobalChunkLayout {
    /// All chunks in execution order: descending estimate, ties by (node, start).
    chunks: Vec<WorkChunk>,
    /// Per node: indices into `chunks`, in execution order.
    per_node: Vec<Vec<usize>>,
}

impl GlobalChunkLayout {
    /// Build the layout for `owned_per_node[node]` (each node's owned vertices,
    /// as [`crate::Cluster::vertices_of`] provides them) over `graph`, with
    /// `chunk_size` as the base mini-chunk granularity.
    pub fn build(graph: &Graph, owned_per_node: &[&[VertexId]], chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk size must be positive");
        let estimate = |v: VertexId| 1 + graph.in_degree(v) as u64 + graph.out_degree(v) as u64;
        let mut chunks = Vec::new();
        for (node, owned) in owned_per_node.iter().enumerate() {
            if owned.is_empty() {
                continue;
            }
            // Budget: an even estimate share per base chunk, times the split
            // factor. A chunk that would exceed it is cut early; a single hub
            // larger than the whole budget becomes a one-vertex chunk.
            let total: u64 = owned.iter().map(|&v| estimate(v)).sum();
            let base_chunks = owned.len().div_ceil(chunk_size) as u64;
            let budget = (SPLIT_FACTOR * total.div_ceil(base_chunks)).max(1);
            let mut start = 0usize;
            let mut acc = 0u64;
            for (idx, &v) in owned.iter().enumerate() {
                acc += estimate(v);
                let len = idx + 1 - start;
                if len == chunk_size || acc >= budget || idx + 1 == owned.len() {
                    chunks.push(WorkChunk {
                        node,
                        start,
                        end: idx + 1,
                        estimate: acc,
                    });
                    start = idx + 1;
                    acc = 0;
                }
            }
        }
        // Descending estimate: stealing claims the heavy tail first. The tie
        // break keeps the order (and therefore the whole layout) deterministic.
        chunks.sort_by(|a, b| {
            b.estimate
                .cmp(&a.estimate)
                .then(a.node.cmp(&b.node))
                .then(a.start.cmp(&b.start))
        });
        let mut per_node = vec![Vec::new(); owned_per_node.len()];
        for (i, chunk) in chunks.iter().enumerate() {
            per_node[chunk.node].push(i);
        }
        Self { chunks, per_node }
    }

    /// All chunks, in execution (claim) order.
    pub fn chunks(&self) -> &[WorkChunk] {
        &self.chunks
    }

    /// Indices into [`GlobalChunkLayout::chunks`] belonging to `node`, in
    /// execution order.
    pub fn node_chunks(&self, node: usize) -> &[usize] {
        &self.per_node[node]
    }

    /// Number of simulated nodes the layout spans.
    pub fn num_nodes(&self) -> usize {
        self.per_node.len()
    }

    /// Deterministically assign `node`'s chunks (costed by
    /// `cost(chunk_index)`, typically the measured per-chunk work of the phase
    /// just executed) to `workers` simulated workers under `policy`:
    ///
    /// * [`SchedulingPolicy::WorkStealing`] — greedy least-loaded in execution
    ///   order, what chunk-grained stealing converges to; with the
    ///   descending-estimate order this is classic LPT scheduling.
    /// * [`SchedulingPolicy::StaticBlocks`] — contiguous equal-count blocks of
    ///   the node's chunk list, the "w/o Stealing" baseline of Figure 10(a).
    ///
    /// This is the simulated-cluster view: each *node* still only has
    /// `workers_per_node` workers, no matter how many global threads physically
    /// ran the chunks.
    pub fn simulate_node(
        &self,
        node: usize,
        workers: usize,
        policy: SchedulingPolicy,
        mut cost: impl FnMut(usize) -> u64,
    ) -> ScheduleOutcome {
        assert!(workers >= 1, "need at least one worker");
        let mut per_worker = vec![0u64; workers];
        let mut total = 0u64;
        let node_chunks = &self.per_node[node];
        for (pos, &chunk) in node_chunks.iter().enumerate() {
            let c = cost(chunk);
            if c == 0 {
                continue;
            }
            total += c;
            let idx = match policy {
                SchedulingPolicy::WorkStealing => {
                    per_worker
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, &w)| (w, *i))
                        .expect("at least one worker")
                        .0
                }
                SchedulingPolicy::StaticBlocks => pos * workers / node_chunks.len(),
            };
            per_worker[idx] += c;
        }
        ScheduleOutcome {
            per_worker_work: per_worker,
            total_work: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;

    fn owned_split(n: usize, nodes: usize) -> Vec<Vec<VertexId>> {
        // Contiguous shares, like the chunking partitioner produces.
        let per = n.div_ceil(nodes);
        (0..nodes)
            .map(|k| ((k * per) as u32..(((k + 1) * per).min(n)) as u32).collect())
            .collect()
    }

    #[test]
    fn chunks_cover_every_owned_vertex_exactly_once() {
        let g = generators::rmat(3000, 24000, 0.57, 0.19, 0.19, 77);
        let owned = owned_split(g.num_vertices(), 3);
        let refs: Vec<&[VertexId]> = owned.iter().map(|o| o.as_slice()).collect();
        let layout = GlobalChunkLayout::build(&g, &refs, 256);
        let mut covered = vec![0usize; g.num_vertices()];
        for chunk in layout.chunks() {
            assert!(!chunk.is_empty());
            for idx in chunk.start..chunk.end {
                covered[owned[chunk.node][idx] as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "each vertex exactly once");
    }

    #[test]
    fn chunks_are_ordered_descending_by_estimate() {
        let g = generators::rmat(2000, 30000, 0.57, 0.19, 0.19, 5);
        let owned = owned_split(g.num_vertices(), 2);
        let refs: Vec<&[VertexId]> = owned.iter().map(|o| o.as_slice()).collect();
        let layout = GlobalChunkLayout::build(&g, &refs, 128);
        for pair in layout.chunks().windows(2) {
            assert!(pair[0].estimate >= pair[1].estimate);
        }
    }

    #[test]
    fn hub_heavy_chunks_are_split() {
        // A star: vertex 0 has degree n-1, everyone else degree 1. With the
        // budget rule the hub must sit in a chunk much smaller than chunk_size.
        let n = 2048;
        let edges: Vec<(u32, u32, f32)> = (1..n).map(|v| (0u32, v as u32, 1.0)).collect();
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_weighted(edges);
        let g = b.build();
        let owned: Vec<VertexId> = (0..n as u32).collect();
        let layout = GlobalChunkLayout::build(&g, &[&owned], 256);
        let hub_chunk = layout
            .chunks()
            .iter()
            .find(|c| (c.start..c.end).contains(&0))
            .unwrap();
        assert!(
            hub_chunk.len() < 256,
            "hub chunk of {} vertices was not split",
            hub_chunk.len()
        );
        // And the hub chunk is claimed first.
        assert_eq!(layout.chunks()[0], *hub_chunk);
    }

    #[test]
    fn node_chunk_indices_partition_the_chunk_list() {
        let g = generators::rmat(1000, 8000, 0.57, 0.19, 0.19, 9);
        let owned = owned_split(g.num_vertices(), 4);
        let refs: Vec<&[VertexId]> = owned.iter().map(|o| o.as_slice()).collect();
        let layout = GlobalChunkLayout::build(&g, &refs, 64);
        let mut seen = vec![false; layout.chunks().len()];
        for node in 0..layout.num_nodes() {
            for &i in layout.node_chunks(node) {
                assert_eq!(layout.chunks()[i].node, node);
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn simulate_node_conserves_work_and_bounds_makespan() {
        let g = generators::rmat(1500, 12000, 0.57, 0.19, 0.19, 13);
        let owned = owned_split(g.num_vertices(), 2);
        let refs: Vec<&[VertexId]> = owned.iter().map(|o| o.as_slice()).collect();
        let layout = GlobalChunkLayout::build(&g, &refs, 64);
        for node in 0..2 {
            let outcome = layout.simulate_node(node, 4, SchedulingPolicy::WorkStealing, |c| {
                layout.chunks()[c].estimate
            });
            let expected: u64 = layout
                .node_chunks(node)
                .iter()
                .map(|&c| layout.chunks()[c].estimate)
                .sum();
            assert_eq!(outcome.total_work, expected);
            let max_chunk = layout
                .node_chunks(node)
                .iter()
                .map(|&c| layout.chunks()[c].estimate)
                .max()
                .unwrap_or(0);
            assert!(outcome.makespan() <= expected / 4 + max_chunk);
        }
    }

    #[test]
    fn empty_nodes_get_no_chunks() {
        let g = generators::path(10);
        let owned: Vec<VertexId> = (0..10).collect();
        let layout = GlobalChunkLayout::build(&g, &[&owned, &[]], 4);
        assert_eq!(layout.node_chunks(1), &[] as &[usize]);
        assert!(layout.chunks().iter().all(|c| c.node == 0));
        let sim = layout.simulate_node(1, 3, SchedulingPolicy::WorkStealing, |_| 1);
        assert_eq!(sim.total_work, 0);
    }
}
