//! Plain-text edge-list I/O.
//!
//! The format is the SNAP-style whitespace-separated edge list the paper's datasets
//! ship in: one edge per line, `src dst [weight]`, with `#`-prefixed comment lines.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{EdgeWeight, VertexId};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and its content.
    Parse { line: usize, content: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Parse an edge list from any reader. Lines beginning with `#` or `%` and blank
/// lines are skipped. Each remaining line must be `src dst` or `src dst weight`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, LoadError> {
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<VertexId> { tok?.parse().ok() };
        let src = parse(parts.next());
        let dst = parse(parts.next());
        let weight: Option<EdgeWeight> = match parts.next() {
            None => Some(1.0),
            Some(tok) => tok.parse().ok(),
        };
        match (src, dst, weight) {
            (Some(s), Some(d), Some(w)) if parts.next().is_none() => {
                builder.add_edge(s, d, w);
            }
            _ => {
                return Err(LoadError::Parse {
                    line: idx + 1,
                    content: line,
                });
            }
        }
    }
    Ok(builder.build())
}

/// Load an edge-list file from disk.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    let file = File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Write a graph as a weighted edge list.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# slfe edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in graph.vertices() {
        for (u, w) in graph.out_edges(v) {
            writeln!(writer, "{v} {u} {w}")?;
        }
    }
    Ok(())
}

/// Save a graph as a weighted edge-list file.
pub fn save_edge_list(graph: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_edge_list(graph, &mut writer)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_unweighted_and_weighted_lines() {
        let input = "# comment\n0 1\n1 2 3.5\n\n% another comment\n2 0 1\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_weights(1), &[3.5]);
        assert_eq!(g.out_weights(0), &[1.0]);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let input = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_trailing_tokens() {
        let input = "0 1 2.0 junk\n";
        assert!(read_edge_list(Cursor::new(input)).is_err());
    }

    #[test]
    fn round_trips_through_text() {
        let g = crate::generators::rmat(32, 100, 0.57, 0.19, 0.19, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        // The text format only records edges, so trailing isolated vertices are not
        // reconstructed; every vertex of the re-read graph must match the original.
        assert!(g2.num_vertices() <= g.num_vertices());
        for v in g2.vertices() {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("slfe_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.el");
        let g = crate::generators::path(6);
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_edge_list("/definitely/not/here.el").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }

    fn assert_graphs_equal(a: &crate::Graph, b: &crate::Graph) {
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices().filter(|&v| (v as usize) < b.num_vertices()) {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out list of {v}");
            assert_eq!(a.out_weights(v), b.out_weights(v), "weights of {v}");
        }
    }

    #[test]
    fn comments_blank_lines_and_whitespace_are_skipped() {
        let input = "\n   \n# leading comment\n  0 1  \n\t1 2\t3.5\n% percent comment\n\n2 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_weights(1), &[3.5]);
    }

    #[test]
    fn self_loops_survive_a_round_trip() {
        let input = "0 0 2.5\n0 1\n1 1\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 0));
        assert_eq!(g.in_neighbors(1), &[0, 1]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_graphs_equal(&g, &g2);
        assert!(g2.has_edge(0, 0));
        assert_eq!(g2.out_weights(0), &[2.5, 1.0]);
    }

    #[test]
    fn duplicate_edges_survive_a_round_trip() {
        // The format does not deduplicate: multigraph inputs stay multigraphs.
        let input = "0 1 1.0\n0 1 2.0\n0 1 1.0\n1 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 1, 1]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_graphs_equal(&g, &g2);
        assert_eq!(g2.out_weights(0), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn load_save_load_is_a_fixpoint_on_disk() {
        let dir =
            std::env::temp_dir().join(format!("slfe_graph_io_roundtrip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = dir.join("first.el");
        let second = dir.join("second.el");
        let g = crate::generators::rmat(64, 400, 0.57, 0.19, 0.19, 9);

        save_edge_list(&g, &first).unwrap();
        let g1 = load_edge_list(&first).unwrap();
        save_edge_list(&g1, &second).unwrap();
        let g2 = load_edge_list(&second).unwrap();

        assert_graphs_equal(&g, &g1);
        assert_graphs_equal(&g1, &g2);
        // The format records edges only, so trailing isolated vertices vanish on
        // the *first* reload; after that the vertex count is a fixpoint.
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        // Byte-level fixpoint past the header (whose vertex count may shrink
        // once, per the above): saving the reloaded graph reproduces the file.
        let body = |path: &std::path::Path| {
            let text = std::fs::read_to_string(path).unwrap();
            text.split_once('\n').unwrap().1.to_string()
        };
        assert_eq!(body(&first), body(&second));
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }
}
