//! Compressed sparse row adjacency structure.
//!
//! [`Adjacency`] stores, for every vertex, a contiguous slice of `(neighbor, weight)`
//! pairs. The same structure serves as CSR (when built from outgoing edges) and as
//! CSC (when built from incoming edges); [`crate::Graph`] keeps one of each so the
//! engine can switch between *push* (outgoing) and *pull* (incoming) traversal.

use crate::types::{Edge, EdgeWeight, VertexId};

/// Compressed adjacency: `offsets[v]..offsets[v+1]` indexes into `targets`/`weights`.
#[derive(Debug, Clone, PartialEq)]
pub struct Adjacency {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
    weights: Vec<EdgeWeight>,
}

impl Adjacency {
    /// Build a CSR structure from a list of edges, keyed by `key` (the vertex whose
    /// adjacency list the edge belongs to) and storing `other` as the neighbor.
    ///
    /// `num_vertices` must be at least `max(vertex id) + 1`.
    fn from_keyed_edges(
        num_vertices: usize,
        edges: &[Edge],
        key: impl Fn(&Edge) -> VertexId,
        other: impl Fn(&Edge) -> VertexId,
    ) -> Self {
        let mut counts = vec![0usize; num_vertices + 1];
        for e in edges {
            counts[key(e) as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; edges.len()];
        let mut weights = vec![0.0 as EdgeWeight; edges.len()];
        for e in edges {
            let k = key(e) as usize;
            let pos = cursor[k];
            targets[pos] = other(e);
            weights[pos] = e.weight;
            cursor[k] += 1;
        }
        // Sort each adjacency list by neighbor id for deterministic iteration and
        // cache-friendly scans. Lists are typically short, so insertion-style sort
        // via `sort_unstable` on index pairs is fine.
        let mut adj = Self {
            offsets,
            targets,
            weights,
        };
        adj.sort_neighbor_lists();
        adj
    }

    /// Build the *outgoing* adjacency (CSR): `neighbors(v)` are targets of edges
    /// whose source is `v`.
    pub fn outgoing(num_vertices: usize, edges: &[Edge]) -> Self {
        Self::from_keyed_edges(num_vertices, edges, |e| e.src, |e| e.dst)
    }

    /// Build the *incoming* adjacency (CSC): `neighbors(v)` are sources of edges
    /// whose destination is `v`.
    pub fn incoming(num_vertices: usize, edges: &[Edge]) -> Self {
        Self::from_keyed_edges(num_vertices, edges, |e| e.dst, |e| e.src)
    }

    fn sort_neighbor_lists(&mut self) {
        for v in 0..self.num_vertices() {
            let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
            let mut pairs: Vec<(VertexId, EdgeWeight)> = self.targets[lo..hi]
                .iter()
                .copied()
                .zip(self.weights[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|(t, _)| *t);
            for (i, (t, w)) in pairs.into_iter().enumerate() {
                self.targets[lo + i] = t;
                self.weights[lo + i] = w;
            }
        }
    }

    /// Number of vertices covered by this adjacency.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Degree of `v` (number of neighbors in this direction).
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Neighbors of `v` in this direction.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Weights parallel to [`Self::neighbors`].
    pub fn weights(&self, v: VertexId) -> &[EdgeWeight] {
        let v = v as usize;
        &self.weights[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Iterate `(neighbor, weight)` pairs of `v`.
    pub fn neighbors_with_weights(
        &self,
        v: VertexId,
    ) -> impl Iterator<Item = (VertexId, EdgeWeight)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.weights(v).iter().copied())
    }

    /// `true` if the adjacency list of `v` contains `u`.
    pub fn contains_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.neighbors(v).binary_search(&u).is_ok()
    }

    /// Raw offsets array (length `num_vertices + 1`). Useful for the partitioner,
    /// which balances on edge counts.
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw neighbor array, parallel to [`Self::raw_weights`]. Together with
    /// [`Self::offsets`] these are the complete physical representation — the
    /// snapshot writer persists them verbatim so a restore reproduces the
    /// structure *bit-for-bit*, duplicate-pair ordering included (rebuilding
    /// from an edge list would not: `sort_unstable` may reorder equal keys).
    pub fn raw_targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Raw weight array, parallel to [`Self::raw_targets`].
    pub fn raw_weights(&self) -> &[EdgeWeight] {
        &self.weights
    }

    /// Reassemble an adjacency from its raw arrays — the snapshot-restore path.
    ///
    /// The caller must supply arrays that came from (or are shaped like) a real
    /// adjacency: `offsets` monotone with `offsets[0] == 0` and a final entry
    /// equal to `targets.len()`, `weights` parallel to `targets`. The decoder in
    /// [`crate::io::binary`] validates untrusted bytes before calling this.
    pub(crate) fn from_raw(
        offsets: Vec<usize>,
        targets: Vec<VertexId>,
        weights: Vec<EdgeWeight>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(offsets[0], 0);
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        debug_assert_eq!(targets.len(), weights.len());
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Rebuild this adjacency under a physical-id permutation: vertex
    /// `step.to_new(v)` of the result holds `v`'s list with every neighbor id
    /// rewritten through `step`, **in the original entry order**. Because a
    /// remap renames ids without reordering entries, a list sorted by the
    /// external id of its neighbors stays sorted by that key — the property
    /// that keeps pull-gather fold order (and so every float sum)
    /// bit-identical across remaps.
    pub fn remapped(&self, step: &crate::remap::IdRemap) -> Self {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(self.targets.len());
        let mut weights = Vec::with_capacity(self.weights.len());
        offsets.push(0);
        for new_v in 0..n {
            let old_v = step.to_old(new_v as VertexId) as usize;
            let (lo, hi) = (self.offsets[old_v], self.offsets[old_v + 1]);
            targets.extend(self.targets[lo..hi].iter().map(|&t| step.to_new(t)));
            weights.extend_from_slice(&self.weights[lo..hi]);
            offsets.push(targets.len());
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }

    /// Build a new adjacency by replacing the lists of a few vertices and copying
    /// every untouched range wholesale — the compacting rebuild behind
    /// [`crate::Graph::apply_batch`].
    ///
    /// `edits` maps a vertex to its complete replacement list and must be sorted by
    /// vertex id, with each replacement list in the graph's canonical neighbor
    /// order (sorted by the neighbor's *external* id — which is plain id order
    /// for an unremapped graph; `apply_batch` asserts it with the right key).
    /// `new_num_vertices` may exceed the current vertex count; vertices present
    /// in neither the old structure nor `edits` get empty lists.
    pub fn patched(
        &self,
        new_num_vertices: usize,
        edits: &[(VertexId, Vec<(VertexId, EdgeWeight)>)],
    ) -> Self {
        debug_assert!(
            edits.windows(2).all(|w| w[0].0 < w[1].0),
            "edits must be sorted by vertex"
        );
        let old_n = self.num_vertices();
        let grown: usize = edits.iter().map(|(_, list)| list.len()).sum();
        let mut offsets = Vec::with_capacity(new_num_vertices + 1);
        let mut targets = Vec::with_capacity(self.targets.len() + grown);
        let mut weights = Vec::with_capacity(self.weights.len() + grown);
        offsets.push(0);
        let mut edit_cursor = 0usize;
        for v in 0..new_num_vertices {
            let edited = edits
                .get(edit_cursor)
                .filter(|(ev, _)| *ev as usize == v)
                .map(|(_, list)| list);
            if let Some(list) = edited {
                targets.extend(list.iter().map(|(t, _)| *t));
                weights.extend(list.iter().map(|(_, w)| *w));
                edit_cursor += 1;
            } else if v < old_n {
                let (lo, hi) = (self.offsets[v], self.offsets[v + 1]);
                targets.extend_from_slice(&self.targets[lo..hi]);
                weights.extend_from_slice(&self.weights[lo..hi]);
            }
            offsets.push(targets.len());
        }
        Self {
            offsets,
            targets,
            weights,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges() -> Vec<Edge> {
        vec![
            Edge::new(0, 1, 1.0),
            Edge::new(0, 3, 2.0),
            Edge::new(1, 2, 1.0),
            Edge::new(3, 4, 1.0),
            Edge::new(2, 4, 1.0),
            Edge::new(4, 5, 1.0),
            Edge::new(0, 5, 1.0),
        ]
    }

    #[test]
    fn outgoing_degrees_match_edge_list() {
        let adj = Adjacency::outgoing(6, &edges());
        assert_eq!(adj.num_vertices(), 6);
        assert_eq!(adj.num_edges(), 7);
        assert_eq!(adj.degree(0), 3);
        assert_eq!(adj.degree(1), 1);
        assert_eq!(adj.degree(5), 0);
    }

    #[test]
    fn incoming_degrees_match_edge_list() {
        let adj = Adjacency::incoming(6, &edges());
        assert_eq!(adj.degree(0), 0);
        assert_eq!(adj.degree(5), 2);
        assert_eq!(adj.degree(4), 2);
        assert_eq!(adj.neighbors(5), &[0, 4]);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let adj = Adjacency::outgoing(6, &edges());
        assert_eq!(adj.neighbors(0), &[1, 3, 5]);
        let ws = adj.weights(0);
        assert_eq!(ws, &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn contains_edge_uses_binary_search() {
        let adj = Adjacency::outgoing(6, &edges());
        assert!(adj.contains_edge(0, 3));
        assert!(!adj.contains_edge(0, 2));
        assert!(!adj.contains_edge(5, 0));
    }

    #[test]
    fn neighbors_with_weights_pairs_up() {
        let adj = Adjacency::outgoing(6, &edges());
        let pairs: Vec<_> = adj.neighbors_with_weights(0).collect();
        assert_eq!(pairs, vec![(1, 1.0), (3, 2.0), (5, 1.0)]);
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let adj = Adjacency::outgoing(4, &[]);
        assert_eq!(adj.num_edges(), 0);
        for v in 0..4 {
            assert_eq!(adj.degree(v), 0);
            assert!(adj.neighbors(v).is_empty());
        }
    }

    #[test]
    fn isolated_trailing_vertices_are_represented() {
        let adj = Adjacency::outgoing(10, &[Edge::unweighted(0, 1)]);
        assert_eq!(adj.num_vertices(), 10);
        assert_eq!(adj.degree(9), 0);
    }

    #[test]
    fn patched_replaces_touched_lists_and_copies_the_rest() {
        let adj = Adjacency::outgoing(6, &edges());
        // Replace vertex 0's list, empty vertex 4's list, leave everything else.
        let patched = adj.patched(6, &[(0, vec![(2, 9.0)]), (4, vec![])]);
        assert_eq!(patched.neighbors(0), &[2]);
        assert_eq!(patched.weights(0), &[9.0]);
        assert_eq!(patched.degree(4), 0);
        assert_eq!(patched.neighbors(1), adj.neighbors(1));
        assert_eq!(patched.neighbors(3), adj.neighbors(3));
        assert_eq!(patched.num_edges(), adj.num_edges() - 3);
    }

    #[test]
    fn patched_grows_the_vertex_space() {
        let adj = Adjacency::outgoing(3, &[Edge::unweighted(0, 1)]);
        let patched = adj.patched(5, &[(4, vec![(0, 2.0)])]);
        assert_eq!(patched.num_vertices(), 5);
        assert_eq!(patched.neighbors(4), &[0]);
        assert_eq!(patched.degree(3), 0);
        assert_eq!(patched.neighbors(0), &[1]);
    }

    #[test]
    fn patched_with_no_edits_is_identity() {
        let adj = Adjacency::outgoing(6, &edges());
        assert_eq!(adj.patched(6, &[]), adj);
    }
}
