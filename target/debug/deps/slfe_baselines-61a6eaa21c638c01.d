/root/repo/target/debug/deps/slfe_baselines-61a6eaa21c638c01.d: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_baselines-61a6eaa21c638c01.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/gas.rs:
crates/baselines/src/gemini.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/powergraph.rs:
crates/baselines/src/powerlyra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
