/root/repo/target/debug/deps/slfe_bench-57389de2d4f40d19.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libslfe_bench-57389de2d4f40d19.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/timing.rs:
