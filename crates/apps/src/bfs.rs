//! Breadth-First Search: hop distance from a root.
//!
//! BFS is SSSP with unit edge weights; it is included because the paper's guidance
//! generation (Algorithm 1) is itself a unit-weight BFS, so BFS doubles as a direct
//! check that `last_iter` equals the hop level plus the "latest incoming" rule.

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};
use std::collections::VecDeque;

/// BFS as a [`GraphProgram`]; the vertex property is the hop count from the root.
#[derive(Debug, Clone, Copy)]
pub struct BfsProgram {
    /// The source vertex.
    pub root: VertexId,
}

impl GraphProgram for BfsProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::MinMax
    }

    fn name(&self) -> &'static str {
        "bfs"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
        if v == self.root {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn initial_active(&self, v: VertexId, _degrees: &Degrees) -> bool {
        v == self.root
    }

    fn identity(&self) -> f32 {
        f32::INFINITY
    }

    fn edge_contribution(
        &self,
        _src: VertexId,
        src_value: f32,
        _weight: EdgeWeight,
    ) -> Option<f32> {
        src_value.is_finite().then_some(src_value + 1.0)
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn apply(&self, _dst: VertexId, old: f32, gathered: f32) -> f32 {
        old.min(gathered)
    }

    /// `hops + 1` strictly increases along every edge: cyclic self-support is
    /// impossible, so warm-start invalidation may prune at derivable vertices.
    fn strictly_monotonic(&self) -> bool {
        true
    }
}

/// Run BFS from `root`; values are hop counts (`INFINITY` = unreachable).
pub fn run(engine: &SlfeEngine<'_>, root: VertexId) -> ProgramResult<f32> {
    engine.run(&BfsProgram { root })
}

/// Sequential queue-based BFS reference.
pub fn reference(graph: &Graph, root: VertexId) -> Vec<f32> {
    let mut level = vec![f32::INFINITY; graph.num_vertices()];
    if graph.num_vertices() == 0 {
        return level;
    }
    level[root as usize] = 0.0;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &u in graph.out_neighbors(v) {
            if level[u as usize].is_infinite() {
                level[u as usize] = level[v as usize] + 1.0;
                queue.push_back(u);
            }
        }
    }
    level
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::distances_match;
    use slfe_cluster::ClusterConfig;
    use slfe_core::{EngineConfig, RrGuidance};
    use slfe_graph::generators;

    #[test]
    fn matches_reference_bfs_on_rmat() {
        let g = generators::rmat(400, 3000, 0.57, 0.19, 0.19, 17);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let expected = reference(&g, root);
        for config in [EngineConfig::default(), EngineConfig::without_rr()] {
            let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), config);
            let result = run(&engine, root);
            assert!(distances_match(&result.values, &expected, 1e-4));
        }
    }

    #[test]
    fn hop_levels_on_a_binary_tree_match_depth() {
        let g = generators::binary_tree(4);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = run(&engine, 0);
        for v in g.vertices() {
            let depth = (v as u64 + 1).ilog2() as f32;
            assert_eq!(result.values[v as usize], depth, "vertex {v}");
        }
    }

    #[test]
    fn guidance_last_iter_equals_bfs_depth_on_a_single_root_tree() {
        // A binary tree has exactly one in-degree-0 vertex (the root), so the
        // guidance's propagation pass and BFS from the root explore the same wave:
        // last_iter(v) must equal the hop depth of v.
        let g = generators::binary_tree(5);
        let rrg = RrGuidance::generate(&g);
        let levels = reference(&g, 0);
        for v in g.vertices() {
            assert_eq!(
                rrg.last_iter(v),
                levels[v as usize] as u32,
                "vertex {v}: guidance {} vs BFS depth {}",
                rrg.last_iter(v),
                levels[v as usize]
            );
        }
    }

    #[test]
    fn unreachable_side_component_stays_infinite() {
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (2, 3)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, 0);
        assert_eq!(result.values[1], 1.0);
        assert!(result.values[2].is_infinite());
    }
}
