//! Intra- and inter-node load imbalance measures (Figure 10).
//!
//! The paper quantifies imbalance two ways:
//!
//! * **intra-node** (Figure 10a): how much faster a node finishes with work stealing
//!   than without — here expressed as normalised runtime, stealing vs no stealing.
//! * **inter-node** (Figure 10b): the relative time difference between the earliest
//!   and latest finishing node.
//!
//! Both are computed from per-worker or per-node *busy work* in counted units.
//! Per-node work and static-block schedules are deterministic; under real work
//! stealing with more than one worker the per-worker split varies run to run
//! (the chunk-to-worker assignment is a race by design), so worker-level
//! imbalance figures are observations of one execution, not reproducible
//! constants.

/// Per-worker (or per-node) busy work/time observations for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BusyTimes {
    values: Vec<f64>,
}

impl BusyTimes {
    /// Wrap a vector of per-unit busy values (counted work or seconds).
    pub fn new(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// Observed values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The busiest unit's value — the makespan when units run in parallel.
    pub fn makespan(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Mean busy value. Returns 0 for an empty set.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Relative spread `(max - min) / max` in `[0, 1]`; the paper's inter-node
    /// "time difference between the earliest and latest finished nodes".
    pub fn relative_spread(&self) -> f64 {
        let max = self.makespan();
        if max <= 0.0 {
            return 0.0;
        }
        let min = self.values.iter().copied().fold(f64::INFINITY, f64::min);
        (max - min) / max
    }

    /// max / mean imbalance factor (1.0 = perfectly balanced).
    pub fn imbalance_factor(&self) -> f64 {
        let mean = self.mean();
        if mean <= 0.0 {
            1.0
        } else {
            self.makespan() / mean
        }
    }
}

/// Inter-node spread (Figure 10b metric) from per-node busy work.
pub fn inter_node_spread(per_node_work: &[u64]) -> f64 {
    BusyTimes::new(per_node_work.iter().map(|&w| w as f64).collect()).relative_spread()
}

/// Intra-node "speedup from stealing" (Figure 10a): the ratio of the makespan
/// without stealing to the makespan with stealing. Values above 1.0 mean stealing
/// helped; 1.0 means it was neutral.
pub fn intra_node_speedup(without_stealing: &BusyTimes, with_stealing: &BusyTimes) -> f64 {
    let base = without_stealing.makespan();
    let steal = with_stealing.makespan();
    if steal <= 0.0 {
        1.0
    } else {
        base / steal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn makespan_and_mean() {
        let b = BusyTimes::new(vec![1.0, 4.0, 3.0]);
        assert_eq!(b.makespan(), 4.0);
        assert!((b.mean() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn relative_spread_matches_paper_definition() {
        let b = BusyTimes::new(vec![8.0, 10.0, 9.0]);
        assert!((b.relative_spread() - 0.2).abs() < 1e-9);
        let balanced = BusyTimes::new(vec![5.0, 5.0]);
        assert_eq!(balanced.relative_spread(), 0.0);
    }

    #[test]
    fn imbalance_factor_is_one_when_balanced() {
        let b = BusyTimes::new(vec![2.0, 2.0, 2.0]);
        assert!((b.imbalance_factor() - 1.0).abs() < 1e-9);
        let skew = BusyTimes::new(vec![1.0, 3.0]);
        assert!((skew.imbalance_factor() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_and_zero_inputs_are_neutral() {
        let empty = BusyTimes::new(vec![]);
        assert_eq!(empty.makespan(), 0.0);
        assert_eq!(empty.relative_spread(), 0.0);
        assert_eq!(empty.imbalance_factor(), 1.0);
        assert_eq!(inter_node_spread(&[]), 0.0);
        assert_eq!(inter_node_spread(&[0, 0]), 0.0);
    }

    #[test]
    fn inter_node_spread_from_work_counts() {
        assert!((inter_node_spread(&[90, 100, 95]) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn stealing_speedup_compares_makespans() {
        let without = BusyTimes::new(vec![10.0, 2.0, 2.0, 2.0]);
        let with = BusyTimes::new(vec![4.0, 4.0, 4.0, 4.0]);
        assert!((intra_node_speedup(&without, &with) - 2.5).abs() < 1e-9);
        // Degenerate: stealing makespan of zero reports neutral.
        assert_eq!(
            intra_node_speedup(&without, &BusyTimes::new(vec![0.0])),
            1.0
        );
    }
}
