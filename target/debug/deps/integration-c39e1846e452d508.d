/root/repo/target/debug/deps/integration-c39e1846e452d508.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-c39e1846e452d508.rmeta: tests/integration.rs

tests/integration.rs:
