//! Fault-injection and fault-recovery counters.
//!
//! The deterministic fault layer (`slfe_graph::faults`) injects seeded I/O
//! failures at every disk touchpoint, and the storage/durability layers report
//! what they injected and — more importantly — what the recovery machinery did
//! about it through this plain value type, mirroring [`crate::Counters`] and
//! [`crate::DurabilityCounters`]: cheap monotone tallies, summable across
//! windows, never used for synchronisation.

use std::ops::{Add, AddAssign};

/// A snapshot of injected faults and the recovery work they triggered.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Transient faults injected (the call fails, a later retry succeeds).
    pub injected_transient: u64,
    /// Permanent faults injected (every scheduled call at the site fails).
    pub injected_permanent: u64,
    /// Short-I/O faults injected (fewer bytes delivered than requested).
    pub injected_short_io: u64,
    /// Disk-full (ENOSPC) faults injected.
    pub injected_disk_full: u64,
    /// I/O retries performed by the bounded exponential-backoff loops.
    pub io_retries: u64,
    /// Retried operations that eventually succeeded.
    pub io_retry_successes: u64,
    /// Segments quarantined after exhausting read retries and rebuilt from
    /// the authoritative recovery source.
    pub segments_quarantined: u64,
    /// Engine runs poisoned by an unrecoverable segment read (quarantine
    /// impossible or itself failed); the server discards such a run's result.
    pub poisoned_runs: u64,
}

impl FaultCounters {
    /// A zeroed counter set.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected_transient
            + self.injected_permanent
            + self.injected_short_io
            + self.injected_disk_full
    }
}

impl Add for FaultCounters {
    type Output = FaultCounters;
    fn add(self, rhs: FaultCounters) -> FaultCounters {
        FaultCounters {
            injected_transient: self.injected_transient + rhs.injected_transient,
            injected_permanent: self.injected_permanent + rhs.injected_permanent,
            injected_short_io: self.injected_short_io + rhs.injected_short_io,
            injected_disk_full: self.injected_disk_full + rhs.injected_disk_full,
            io_retries: self.io_retries + rhs.io_retries,
            io_retry_successes: self.io_retry_successes + rhs.io_retry_successes,
            segments_quarantined: self.segments_quarantined + rhs.segments_quarantined,
            poisoned_runs: self.poisoned_runs + rhs.poisoned_runs,
        }
    }
}

impl AddAssign for FaultCounters {
    fn add_assign(&mut self, rhs: FaultCounters) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_fieldwise() {
        let a = FaultCounters {
            injected_transient: 1,
            injected_permanent: 2,
            injected_short_io: 3,
            injected_disk_full: 4,
            io_retries: 5,
            io_retry_successes: 6,
            segments_quarantined: 7,
            poisoned_runs: 8,
        };
        assert_eq!(a.injected_total(), 10);
        let mut c = a + a;
        assert_eq!(c.injected_transient, 2);
        assert_eq!(c.poisoned_runs, 16);
        c += a;
        assert_eq!(c.io_retries, 15);
        assert_eq!(FaultCounters::zero(), FaultCounters::default());
    }
}
