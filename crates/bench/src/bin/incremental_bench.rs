//! Incremental update-serving benchmark: warm-start re-convergence vs full
//! recomputation across batch sizes and graph scales.
//!
//! ```text
//! incremental_bench [--vertices 50000,100000] [--degree D] [--batch-percents 0.1,1,5] [--out FILE]
//! ```
//!
//! For each (scale, batch-size, batch-mix) cell the bench:
//!
//! 1. builds an R-MAT graph and a [`DeltaServer`] (one cold SSSP run),
//! 2. stages a seeded random batch of the requested size — `insert` mixes are
//!    pure upserts, `mixed` adds 10% deletions (the cascade-heavy case),
//! 3. applies it through the serving loop (graph patch, RR-guidance repair,
//!    warm `run_from`) and records the **counter-measured work** — invalidation
//!    pass included — plus the update-batch wall-clock latency, and
//! 4. runs SSSP cold on the mutated graph (plus a fresh guidance generation)
//!    and records the same metrics for the full recompute.
//!
//! `work_ratio` is full-recompute work / warm work, both *including* their
//! guidance costs — the headline number incremental serving exists for. A
//! PageRank delta-restart cell is measured the same way. Counted work is
//! machine-independent; wall clock depends on `hardware_threads`, which is
//! recorded alongside the producing `git_commit`.

use slfe_apps::pagerank::PageRankProgram;
use slfe_apps::sssp::SsspProgram;
use slfe_bench::{git_commit, hardware_threads, json};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, RedundancyMode, SlfeEngine};
use slfe_delta::{DeltaServer, ServerConfig, UpdateBatch};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    vertices: Vec<usize>,
    degree: usize,
    batch_percents: Vec<f64>,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: vec![50_000, 100_000],
            degree: 10,
            batch_percents: vec![0.1, 1.0, 5.0],
            out: PathBuf::from("BENCH_incremental.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .split(',')
                    .map(|v| v.trim().parse().map_err(|e| format!("invalid --vertices: {e}")))
                    .collect::<Result<_, String>>()?;
            }
            "--degree" => {
                options.degree =
                    value("--degree")?.parse().map_err(|e| format!("invalid --degree: {e}"))?;
            }
            "--batch-percents" => {
                options.batch_percents = value("--batch-percents")?
                    .split(',')
                    .map(|v| v.trim().parse().map_err(|e| format!("invalid --batch-percents: {e}")))
                    .collect::<Result<_, String>>()?;
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: incremental_bench [--vertices N,N] [--degree D] [--batch-percents P,P] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// A seeded random batch sized as `percent` of the graph's edges. `delete_share`
/// of the operations delete existing edges; the rest upsert random ones.
fn make_batch(graph: &Graph, percent: f64, delete_share: f64, seed: u64) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let ops = ((graph.num_edges() as f64 * percent / 100.0).round() as usize).max(1);
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let src = rng.range_u32(0, n);
        if rng.next_f64() >= delete_share {
            batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
        } else {
            let outs = graph.out_neighbors(src);
            if !outs.is_empty() {
                batch.delete(src, outs[rng.range_usize(0, outs.len())]);
            }
        }
    }
    batch
}

struct Cell {
    vertices: usize,
    edges: usize,
    batch_percent: f64,
    mode: &'static str,
    dirty_vertices: usize,
    warm_work: u64,
    warm_guidance_work: u64,
    warm_iterations: u32,
    warm_wall_seconds: f64,
    guidance_regenerated: bool,
    /// Simulated messages shipping the batch from the ingest node to partition
    /// owners — the serving cost a work-only comparison would quietly ignore.
    distribution_messages: u64,
    full_work: u64,
    full_guidance_work: u64,
    full_wall_seconds: f64,
    /// Counter-measured work of the full recompute over the warm restart —
    /// engine counters only, matching the paper's split of execution vs
    /// preprocessing cost.
    work_ratio: f64,
    /// The same ratio with each side's guidance cost (repair vs regeneration)
    /// added in.
    work_ratio_with_guidance: f64,
}

fn cell_json(c: &Cell) -> String {
    format!(
        "{{\"vertices\": {}, \"edges\": {}, \"batch_percent\": {}, \"mode\": {}, \
         \"dirty_vertices\": {}, \"warm_work\": {}, \"warm_guidance_work\": {}, \
         \"warm_iterations\": {}, \"warm_wall_seconds\": {}, \"guidance_regenerated\": {}, \
         \"distribution_messages\": {}, \
         \"full_work\": {}, \"full_guidance_work\": {}, \"full_wall_seconds\": {}, \
         \"work_ratio\": {}, \"work_ratio_with_guidance\": {}}}",
        c.vertices,
        c.edges,
        json::float(c.batch_percent),
        json::string(c.mode),
        c.dirty_vertices,
        c.warm_work,
        c.warm_guidance_work,
        c.warm_iterations,
        json::float_fixed(c.warm_wall_seconds, 6),
        c.guidance_regenerated,
        c.distribution_messages,
        c.full_work,
        c.full_guidance_work,
        json::float_fixed(c.full_wall_seconds, 6),
        json::float_fixed(c.work_ratio, 2),
        json::float_fixed(c.work_ratio_with_guidance, 2),
    )
}

fn measure_sssp_cell(graph: &Graph, percent: f64, mode: &'static str, delete_share: f64) -> Cell {
    let root = slfe_graph::stats::highest_out_degree_vertex(graph).unwrap_or(0);
    let config = ServerConfig {
        cluster: ClusterConfig::new(2, 2),
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let mut server = DeltaServer::new(graph.clone(), move |_| SsspProgram { root }, config);
    let batch = make_batch(graph, percent, delete_share, 9000 + (percent * 10.0) as u64);
    let outcome = server.apply(&batch);
    assert!(outcome.converged, "warm serving run must converge");

    // Full recompute on the mutated graph: guidance generation + cold run.
    let (mutated, _) = graph.apply_batch(&batch);
    let full_start = Instant::now();
    let engine = SlfeEngine::build(
        &mutated,
        ClusterConfig::new(2, 2),
        EngineConfig::default().with_trace(false),
    );
    let full = engine.run(&SsspProgram { root });
    let full_wall_seconds = full_start.elapsed().as_secs_f64();
    let full_guidance_work = engine.guidance().generation_work();
    let full_work = full.stats.totals.work();

    Cell {
        vertices: mutated.num_vertices(),
        edges: mutated.num_edges(),
        batch_percent: percent,
        mode,
        dirty_vertices: outcome.effect.dirty.len(),
        warm_work: outcome.work,
        warm_guidance_work: outcome.guidance.work,
        warm_iterations: outcome.iterations,
        warm_wall_seconds: outcome.wall_seconds,
        guidance_regenerated: outcome.guidance.regenerated,
        distribution_messages: outcome.distribution_messages,
        full_work,
        full_guidance_work,
        full_wall_seconds,
        work_ratio: full_work as f64 / outcome.work.max(1) as f64,
        work_ratio_with_guidance: (full_work + full_guidance_work) as f64
            / (outcome.work + outcome.guidance.work).max(1) as f64,
    }
}

/// PageRank delta-restart on one scale: warm iterations/work vs cold, both
/// ruler-free so the two runs converge to the same exact fixpoint.
fn measure_pagerank(graph: &Graph, percent: f64) -> String {
    let config = EngineConfig::default()
        .with_redundancy(RedundancyMode::Disabled)
        .with_trace(false)
        .with_max_iterations(500);
    let cluster = ClusterConfig::new(2, 2);
    let previous = SlfeEngine::build(graph, cluster.clone(), config.clone())
        .run(&PageRankProgram::for_graph(graph));
    let batch = make_batch(graph, percent, 0.1, 777);
    let (mutated, effect) = graph.apply_batch(&batch);
    let dirty = effect.dirty_bitset(mutated.num_vertices());
    let program = PageRankProgram::for_graph(&mutated);

    let warm_engine = SlfeEngine::build(&mutated, cluster.clone(), config.clone());
    let warm_start = Instant::now();
    let warm = warm_engine.run_from(&program, &previous, &dirty);
    let warm_wall = warm_start.elapsed().as_secs_f64();
    let cold_start = Instant::now();
    let cold = SlfeEngine::build(&mutated, cluster, config).run(&program);
    let cold_wall = cold_start.elapsed().as_secs_f64();
    format!(
        "{{\"vertices\": {}, \"batch_percent\": {}, \"warm_iterations\": {}, \
         \"cold_iterations\": {}, \"warm_work\": {}, \"cold_work\": {}, \
         \"warm_wall_seconds\": {}, \"cold_wall_seconds\": {}, \"work_ratio\": {}}}",
        mutated.num_vertices(),
        json::float(percent),
        warm.stats.iterations,
        cold.stats.iterations,
        warm.stats.totals.work(),
        cold.stats.totals.work(),
        json::float_fixed(warm_wall, 6),
        json::float_fixed(cold_wall, 6),
        json::float_fixed(
            cold.stats.totals.work() as f64 / warm.stats.totals.work().max(1) as f64,
            2
        ),
    )
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut cells: Vec<Cell> = Vec::new();
    let mut pagerank_cells: Vec<String> = Vec::new();
    for &n in &options.vertices {
        eprintln!(
            "building R-MAT graph: {n} vertices, ~{} edges",
            n * options.degree
        );
        let graph = generators::rmat(n, n * options.degree, 0.57, 0.19, 0.19, 2026);
        for &percent in &options.batch_percents {
            for (mode, delete_share) in [("insert", 0.0), ("mixed", 0.1)] {
                let cell = measure_sssp_cell(&graph, percent, mode, delete_share);
                eprintln!(
                    "  sssp {n}v {percent}% {mode}: warm {} (+{} guidance) vs full {} (+{} guidance) \
                     work -> {:.1}x counters, {:.1}x with guidance; {:.1}ms vs {:.1}ms wall",
                    cell.warm_work,
                    cell.warm_guidance_work,
                    cell.full_work,
                    cell.full_guidance_work,
                    cell.work_ratio,
                    cell.work_ratio_with_guidance,
                    cell.warm_wall_seconds * 1e3,
                    cell.full_wall_seconds * 1e3,
                );
                cells.push(cell);
            }
        }
        pagerank_cells.push(measure_pagerank(&graph, 1.0));
    }

    // The acceptance gate this bench exists to witness: at every measured scale
    // of 100k+ vertices, a 1% edge batch must do >= 5x less counter-measured
    // work warm than a full recompute does.
    for cell in &cells {
        if cell.vertices >= 100_000 && cell.batch_percent == 1.0 {
            assert!(
                cell.work_ratio >= 5.0,
                "1% {} batch at {} vertices saved only {:.1}x counter-measured work",
                cell.mode,
                cell.vertices,
                cell.work_ratio
            );
        }
    }

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"git_commit\": {},", json::string(&git_commit()));
    let _ = writeln!(json, "  \"hardware_threads\": {},", hardware_threads());
    let _ = writeln!(
        json,
        "  \"note\": {},",
        json::string(
            "counted work is machine-independent; wall clock depends on hardware_threads. \
             work_ratio compares engine counters (edge computations + vertex updates, warm incl. the \
             invalidation pass) of a full recompute vs the warm restart; work_ratio_with_guidance adds \
             each side's guidance cost (repair — with its competitive fallback to regeneration — vs \
             fresh generation). The guidance is scheduling metadata the warm path itself never reads, \
             so a serving deployment may also maintain it lazily."
        )
    );
    json.push_str("  \"sssp\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {}{}",
            cell_json(cell),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n  \"pagerank_delta_restart\": [\n");
    for (i, cell) in pagerank_cells.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {cell}{}",
            if i + 1 < pagerank_cells.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {}", options.out.display());
}
