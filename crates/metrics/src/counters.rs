//! Computation and communication counters.
//!
//! Two flavours are provided: [`Counters`], a plain value type used for snapshots
//! and arithmetic, and [`AtomicCounters`], which concurrent workers update with
//! relaxed atomics and which converts into a [`Counters`] snapshot at the end of an
//! iteration. Relaxed ordering is sufficient because the counters are statistics,
//! never used for synchronisation.

use std::ops::{Add, AddAssign};
use std::sync::atomic::{AtomicU64, Ordering};

/// A snapshot of work performed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Number of edge computations (one per edge visited by a pull/push function).
    pub edge_computations: u64,
    /// Number of vertex property updates (writes that changed a value).
    pub vertex_updates: u64,
    /// Number of inter-node messages sent.
    pub messages_sent: u64,
    /// Number of bytes carried by those messages.
    pub bytes_sent: u64,
    /// Number of OS threads spawned while this counter window was open.
    ///
    /// With the persistent worker pool (ROADMAP architecture note, PR 3) an
    /// engine spawns its threads once at build time and every run reuses them,
    /// so a run's totals report **0** here; any nonzero value in a run means
    /// per-phase spawning has regressed. The pool-reuse regression test pins
    /// the build-time spawn count itself at `< total_workers`.
    pub threads_spawned: u64,
    /// Number of work chunks the executor skipped without touching their
    /// vertices, because the chunk-level activity summary proved the whole
    /// chunk cold (frontier-empty source chunk in push mode; fully rr-gated,
    /// in-edge-free, caught-up-and-quiescent, or fully early-converged
    /// destination chunk in pull mode). Skipping is deterministic — it
    /// depends only on barrier-merged state — so this tally is identical at
    /// every worker count *among the chunked global execution paths*
    /// (`workers_per_node >= 2`, and pull phases at any worker count). The
    /// one exception: `workers_per_node: 1` push phases take the historical
    /// chunk-free sequential oracle path, which reports no skips at all.
    pub chunks_skipped: u64,
    /// Peak bytes of push-mode gather scratch (per-worker dense buffers or
    /// sparse contribution maps, plus the shared merge buffers) live at any
    /// iteration barrier inside this counter window. Unlike every other field
    /// this is a high-water mark, and merging it depends on how the two
    /// windows relate in *time*: [`Counters::merge_concurrent`] (windows live
    /// simultaneously — several workers' scratch at one barrier) **sums** the
    /// footprints, while `+` (windows sequential in time — iterations into a
    /// run total) takes the max. Using `+` across concurrent windows
    /// under-reports the true peak by up to a factor of the worker count.
    pub scratch_bytes_peak: u64,
    /// Out-of-core execution: segments faulted from disk through the buffer
    /// pool. 0 when the engine runs against the in-memory store. Unlike the
    /// work counters this is an I/O statistic: it depends on cache state and
    /// chunk→worker timing, so it is *not* guaranteed identical across worker
    /// counts.
    pub segments_faulted: u64,
    /// Bytes those segment faults read from disk.
    pub segment_bytes_read: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Updates per vertex — the Table 2 metric. Returns 0 for an empty graph.
    pub fn updates_per_vertex(&self, num_vertices: usize) -> f64 {
        if num_vertices == 0 {
            0.0
        } else {
            self.vertex_updates as f64 / num_vertices as f64
        }
    }

    /// Total work units: edge computations + vertex updates. Used as the
    /// machine-independent "runtime" proxy in the counted-cost experiments.
    pub fn work(&self) -> u64 {
        self.edge_computations + self.vertex_updates
    }

    /// Combine two counter windows that were live **at the same time** — e.g.
    /// two workers' phase counters merged at a barrier. Flow counters sum
    /// either way; `scratch_bytes_peak` differs: memory held simultaneously
    /// adds up, so the concurrent merge **sums** it, where the sequential `+`
    /// takes the max. Summing per-worker footprints at each barrier and
    /// max-ing barriers across time is what reports the run's true peak.
    pub fn merge_concurrent(self, rhs: Counters) -> Counters {
        Counters {
            scratch_bytes_peak: self.scratch_bytes_peak + rhs.scratch_bytes_peak,
            ..self + rhs
        }
    }
}

impl Add for Counters {
    type Output = Counters;
    fn add(self, rhs: Counters) -> Counters {
        Counters {
            edge_computations: self.edge_computations + rhs.edge_computations,
            vertex_updates: self.vertex_updates + rhs.vertex_updates,
            messages_sent: self.messages_sent + rhs.messages_sent,
            bytes_sent: self.bytes_sent + rhs.bytes_sent,
            threads_spawned: self.threads_spawned + rhs.threads_spawned,
            chunks_skipped: self.chunks_skipped + rhs.chunks_skipped,
            // A peak, not a flow: combining *sequential* windows keeps the
            // high-water mark (concurrent windows must use
            // `merge_concurrent`, which sums the simultaneously-live bytes).
            scratch_bytes_peak: self.scratch_bytes_peak.max(rhs.scratch_bytes_peak),
            segments_faulted: self.segments_faulted + rhs.segments_faulted,
            segment_bytes_read: self.segment_bytes_read + rhs.segment_bytes_read,
        }
    }
}

impl AddAssign for Counters {
    fn add_assign(&mut self, rhs: Counters) {
        *self = *self + rhs;
    }
}

/// Concurrent counters updated by worker threads.
#[derive(Debug, Default)]
pub struct AtomicCounters {
    edge_computations: AtomicU64,
    vertex_updates: AtomicU64,
    messages_sent: AtomicU64,
    bytes_sent: AtomicU64,
}

impl AtomicCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `n` edge computations.
    pub fn add_edge_computations(&self, n: u64) {
        self.edge_computations.fetch_add(n, Ordering::Relaxed);
    }

    /// Record `n` vertex updates.
    pub fn add_vertex_updates(&self, n: u64) {
        self.vertex_updates.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one message of `bytes` bytes.
    pub fn add_message(&self, bytes: u64) {
        self.messages_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Take a consistent-enough snapshot (individual fields are read relaxed).
    pub fn snapshot(&self) -> Counters {
        Counters {
            edge_computations: self.edge_computations.load(Ordering::Relaxed),
            vertex_updates: self.vertex_updates.load(Ordering::Relaxed),
            messages_sent: self.messages_sent.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            // Worker-side counters never spawn threads, skip chunks, own
            // scratch or fault segments; the engine reports those directly
            // into its run's totals.
            threads_spawned: 0,
            chunks_skipped: 0,
            scratch_bytes_peak: 0,
            segments_faulted: 0,
            segment_bytes_read: 0,
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.edge_computations.store(0, Ordering::Relaxed);
        self.vertex_updates.store(0, Ordering::Relaxed);
        self.messages_sent.store(0, Ordering::Relaxed);
        self.bytes_sent.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_and_add_assign_accumulate() {
        let a = Counters {
            edge_computations: 1,
            vertex_updates: 2,
            messages_sent: 3,
            bytes_sent: 4,
            threads_spawned: 5,
            chunks_skipped: 6,
            scratch_bytes_peak: 7,
            segments_faulted: 8,
            segment_bytes_read: 9,
        };
        let b = Counters {
            edge_computations: 10,
            vertex_updates: 20,
            messages_sent: 30,
            bytes_sent: 40,
            threads_spawned: 50,
            chunks_skipped: 60,
            scratch_bytes_peak: 70,
            segments_faulted: 80,
            segment_bytes_read: 90,
        };
        let mut c = a + b;
        assert_eq!(c.edge_computations, 11);
        assert_eq!(c.bytes_sent, 44);
        assert_eq!(c.threads_spawned, 55);
        assert_eq!(c.chunks_skipped, 66);
        assert_eq!(c.scratch_bytes_peak, 70, "peak merges as a max");
        assert_eq!(c.segments_faulted, 88);
        assert_eq!(c.segment_bytes_read, 99);
        c += a;
        assert_eq!(c.vertex_updates, 24);
        assert_eq!(c.threads_spawned, 60);
        assert_eq!(c.chunks_skipped, 72);
        assert_eq!(
            c.scratch_bytes_peak, 70,
            "smaller window does not lower the peak"
        );
    }

    /// The barrier-merge semantics the engine relies on: worker scratch live
    /// *simultaneously* at one barrier sums; barriers across *time* max.
    /// Hand-computed: three workers holding 100/50/25 bytes at iteration 1
    /// (footprint 175), two workers holding 60/60 at iteration 2 (footprint
    /// 120) — the run peak is 175, not `max(100, 60) = 100` as the old
    /// max-everywhere merge would report.
    #[test]
    fn concurrent_merge_sums_scratch_and_sequential_merge_maxes_it() {
        let worker = |scratch: u64| Counters {
            edge_computations: 1,
            scratch_bytes_peak: scratch,
            ..Counters::zero()
        };
        let barrier1 = worker(100)
            .merge_concurrent(worker(50))
            .merge_concurrent(worker(25));
        assert_eq!(barrier1.scratch_bytes_peak, 175, "concurrent sums");
        assert_eq!(barrier1.edge_computations, 3, "flow counters still sum");
        let barrier2 = worker(60).merge_concurrent(worker(60));
        assert_eq!(barrier2.scratch_bytes_peak, 120);
        let run = barrier1 + barrier2;
        assert_eq!(run.scratch_bytes_peak, 175, "sequential maxes");
        assert_eq!(run.edge_computations, 5);
    }

    #[test]
    fn updates_per_vertex_matches_table2_semantics() {
        let c = Counters {
            vertex_updates: 90,
            ..Counters::zero()
        };
        assert!((c.updates_per_vertex(10) - 9.0).abs() < 1e-9);
        assert_eq!(c.updates_per_vertex(0), 0.0);
    }

    #[test]
    fn work_sums_computations_and_updates() {
        let c = Counters {
            edge_computations: 5,
            vertex_updates: 7,
            ..Counters::zero()
        };
        assert_eq!(c.work(), 12);
    }

    #[test]
    fn atomic_counters_accumulate_across_threads() {
        let counters = Arc::new(AtomicCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.add_edge_computations(1);
                        c.add_vertex_updates(2);
                        c.add_message(8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = counters.snapshot();
        assert_eq!(snap.edge_computations, 4000);
        assert_eq!(snap.vertex_updates, 8000);
        assert_eq!(snap.messages_sent, 4000);
        assert_eq!(snap.bytes_sent, 32000);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = AtomicCounters::new();
        c.add_edge_computations(5);
        c.add_message(100);
        c.reset();
        assert_eq!(c.snapshot(), Counters::zero());
    }
}
