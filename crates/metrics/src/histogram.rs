//! Log2-bucketed latency histograms.
//!
//! An HDR-style histogram over `u64` values (nanoseconds in practice) with a
//! fixed 64×32 bucket grid: one row per power-of-two magnitude, 32 sub-buckets
//! per row, so relative quantization error is bounded by 1/32 ≈ 3% everywhere.
//! Values below 32 are recorded exactly. Histograms merge with `+`, and
//! percentile queries are answered against the recorded `[min, max]` bounds so
//! `p100` is always the exact maximum observed.

use std::ops::{Add, AddAssign};

/// Sub-buckets per power-of-two row. Must be a power of two.
const SUB_BUCKETS: usize = 32;
/// log2(SUB_BUCKETS).
const SUB_BITS: u32 = 5;
/// Total bucket slots: 64 rows × 32 sub-buckets.
const NUM_BUCKETS: usize = 64 * SUB_BUCKETS;

/// A mergeable log2-bucketed histogram of `u64` samples.
///
/// Bucket storage is allocated lazily on the first `record`, so an empty
/// histogram (the telemetry-off common case) costs three words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// Bucket index for a value: exact below `SUB_BUCKETS`, otherwise the top
/// `SUB_BITS + 1` significant bits select (row, sub-bucket).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= SUB_BITS
    let sub = ((v >> (msb as u32 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (msb - SUB_BITS as usize + 1) * SUB_BUCKETS + sub
}

/// Smallest value that maps to bucket `idx` — the inverse of [`bucket_index`].
fn bucket_lower_bound(idx: usize) -> u64 {
    if idx < SUB_BUCKETS {
        return idx as u64;
    }
    let row = idx / SUB_BUCKETS;
    let sub = (idx % SUB_BUCKETS) as u64;
    let msb = (row - 1) as u32 + SUB_BITS;
    if msb >= 64 {
        // One past the bucket of u64::MAX; only reachable as an exclusive
        // upper bound, never from a recorded sample.
        return u64::MAX;
    }
    (1u64 << msb) + (sub << (msb - SUB_BITS))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum recorded sample; `None` when empty.
    pub fn min(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Exact maximum recorded sample; `None` when empty.
    pub fn max(&self) -> Option<u64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// Arithmetic mean of recorded samples; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The value at percentile `p` in `[0, 1]`; `None` when empty.
    ///
    /// Answers with the lower bound of the bucket holding the rank-`⌈p·count⌉`
    /// sample, clamped to the exact recorded `[min, max]` — so `p = 0` returns
    /// the exact minimum and `p = 1` the exact maximum, and every answer is
    /// within one log2/32 bucket of the true order statistic.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The last-rank sample is the recorded maximum — answer exactly.
            return Some(self.max);
        }
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_lower_bound(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

impl Add for LatencyHistogram {
    type Output = LatencyHistogram;

    fn add(mut self, rhs: LatencyHistogram) -> LatencyHistogram {
        self += rhs;
        self
    }
}

impl AddAssign for LatencyHistogram {
    fn add_assign(&mut self, rhs: LatencyHistogram) {
        if rhs.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        for (dst, src) in self.buckets.iter_mut().zip(rhs.buckets.iter()) {
            *dst += src;
        }
        self.count += rhs.count;
        self.sum = self.sum.saturating_add(rhs.sum);
        self.min = self.min.min(rhs.min);
        self.max = self.max.max(rhs.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — a tiny local copy so this zero-dependency crate can run
    /// seeded property loops without depending on `slfe-graph`.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    /// Relative error bound between a bucket lower bound and any value in that
    /// bucket: one sub-bucket width, i.e. 1/32 of the value's magnitude (plus
    /// a small absolute slack for single-digit values, which are exact anyway).
    fn within_one_bucket(answer: u64, reference: u64) -> bool {
        let lo = bucket_lower_bound(bucket_index(reference));
        let hi_idx = bucket_index(reference) + 1;
        let hi = bucket_lower_bound(hi_idx);
        answer >= lo.min(reference) && answer <= hi.max(reference)
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lower_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_invertible_at_boundaries() {
        let mut prev = 0usize;
        for msb in 5..63u32 {
            for sub in 0..SUB_BUCKETS as u64 {
                let v = (1u64 << msb) + (sub << (msb - SUB_BITS));
                let idx = bucket_index(v);
                assert!(idx >= prev, "index not monotone at v={v}");
                prev = idx;
                assert_eq!(bucket_lower_bound(idx), v, "inverse failed at v={v}");
            }
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn min_max_and_extreme_percentiles_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in [17u64, 900, 35_000, 1_000_000_007] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(17));
        assert_eq!(h.max(), Some(1_000_000_007));
        assert_eq!(h.percentile(0.0), Some(17));
        assert_eq!(h.percentile(1.0), Some(1_000_000_007));
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn property_percentiles_within_one_bucket_of_sorted_reference() {
        let mut rng = Rng(0x5eed_0001);
        for _ in 0..20 {
            let n = 200 + (rng.next() % 800) as usize;
            let mut h = LatencyHistogram::new();
            let mut vals: Vec<u64> = Vec::with_capacity(n);
            for _ in 0..n {
                // Span ~9 orders of magnitude like real latencies do.
                let magnitude = rng.next() % 30;
                let v = (rng.next() % 1000).wrapping_shl(magnitude as u32) | 1;
                vals.push(v);
                h.record(v);
            }
            vals.sort_unstable();
            for p in [0.5f64, 0.9, 0.99] {
                let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
                let reference = vals[rank - 1];
                let answer = h.percentile(p).unwrap();
                assert!(
                    within_one_bucket(answer, reference),
                    "p{p}: answer {answer} not within one bucket of reference {reference}"
                );
            }
        }
    }

    #[test]
    fn property_merge_matches_concatenated_stream() {
        let mut rng = Rng(0x5eed_0002);
        for _ in 0..10 {
            let mut a = LatencyHistogram::new();
            let mut b = LatencyHistogram::new();
            let mut all = LatencyHistogram::new();
            for i in 0..500 {
                let v = rng.next() % 10_000_000;
                if i % 2 == 0 {
                    a.record(v);
                } else {
                    b.record(v);
                }
                all.record(v);
            }
            let merged = a.clone() + b.clone();
            assert_eq!(merged, all);
            // AddAssign agrees with Add.
            let mut assigned = a;
            assigned += b;
            assert_eq!(assigned, all);
        }
    }

    #[test]
    fn property_merge_is_associative() {
        let mut rng = Rng(0x5eed_0003);
        let mut parts = [
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        ];
        for i in 0..600 {
            parts[i % 3].record(rng.next() % 1_000_000);
        }
        let [a, b, c] = parts;
        let left = (a.clone() + b.clone()) + c.clone();
        let right = a + (b + c);
        assert_eq!(left, right);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut h = LatencyHistogram::new();
        h.record(42);
        let merged = h.clone() + LatencyHistogram::new();
        assert_eq!(merged, h);
        let other_way = LatencyHistogram::new() + h.clone();
        assert_eq!(other_way, h);
    }

    #[test]
    fn mean_and_sum_track_samples() {
        let mut h = LatencyHistogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.sum(), 60);
        assert!((h.mean().unwrap() - 20.0).abs() < 1e-12);
    }
}
