//! Gemini-style baseline: computation-centric push/pull with chunking partitions.
//!
//! The paper builds SLFE on Gemini's execution model and attributes its advantage
//! over Gemini purely to redundancy reduction (§4.2, Figure 5). The Gemini baseline
//! is therefore the SLFE engine with redundancy reduction disabled, re-labelled, so
//! the comparison isolates exactly the paper's contribution.

use crate::{BaselineEngine, BaselineKind};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::Graph;

/// The Gemini-like engine.
#[derive(Debug)]
pub struct GeminiEngine<'g> {
    inner: SlfeEngine<'g>,
}

impl<'g> GeminiEngine<'g> {
    /// Build a Gemini-like engine over `graph`.
    pub fn build(graph: &'g Graph, cluster: ClusterConfig) -> Self {
        Self {
            inner: SlfeEngine::build(graph, cluster, EngineConfig::without_rr()),
        }
    }

    /// Build with a custom engine configuration; the redundancy mode is forced off.
    pub fn with_config(graph: &'g Graph, cluster: ClusterConfig, config: EngineConfig) -> Self {
        let config = EngineConfig {
            redundancy: slfe_core::RedundancyMode::Disabled,
            ..config
        };
        Self {
            inner: SlfeEngine::build(graph, cluster, config),
        }
    }

    /// Access the wrapped engine (e.g. for its cluster statistics).
    pub fn engine(&self) -> &SlfeEngine<'g> {
        &self.inner
    }
}

impl BaselineEngine for GeminiEngine<'_> {
    fn kind(&self) -> BaselineKind {
        BaselineKind::Gemini
    }

    fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        let mut result = self.inner.run(program);
        result.stats.engine = self.kind().name().to_string();
        // Gemini has no preprocessing beyond partitioning (which SLFE shares), so no
        // RRG overhead is charged.
        result.stats.phases.preprocessing_seconds = 0.0;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_apps::sssp::SsspProgram;
    use slfe_graph::generators;

    #[test]
    fn reports_itself_as_gemini_with_no_preprocessing_cost() {
        let g = generators::rmat(200, 1400, 0.57, 0.19, 0.19, 2);
        let engine = GeminiEngine::build(&g, ClusterConfig::new(4, 2));
        assert_eq!(engine.kind(), BaselineKind::Gemini);
        let result = engine.run(&SsspProgram { root: 0 });
        assert_eq!(result.stats.engine, "gemini");
        assert_eq!(result.stats.phases.preprocessing_seconds, 0.0);
    }

    #[test]
    fn produces_the_same_distances_as_slfe() {
        let g = generators::rmat(300, 2400, 0.57, 0.19, 0.19, 6);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let gemini = GeminiEngine::build(&g, ClusterConfig::new(4, 2));
        let slfe = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let a = gemini.run(&SsspProgram { root });
        let b = slfe.run(&SsspProgram { root });
        for v in 0..g.num_vertices() {
            let (x, y) = (a.values[v], b.values[v]);
            assert!((x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-4);
        }
    }
}
