//! # slfe-bench
//!
//! Shared harness used by the `experiments` binary (which regenerates every table
//! and figure of the paper's evaluation section), by the wall-clock benches under
//! `benches/`, and by the `parallel_bench` binary that emits `BENCH_parallel.json`.
//!
//! The harness runs one of the paper's five evaluation applications (SSSP, CC, WP,
//! PR, TR — plus BFS as an extra) on one of the engines (SLFE with/without RR,
//! Gemini, PowerGraph, PowerLyra, Ligra, GraphChi) over one of the dataset proxies,
//! and returns a uniform [`AppRun`] summary the experiment code renders into the
//! paper's tables and series.

pub mod experiments;
pub mod json;
pub mod provenance;
pub mod runner;
pub mod timing;

pub use provenance::{git_commit, hardware_threads};
pub use runner::{AppRun, EngineKind, ExperimentContext};
pub use timing::{time_best_of, BenchSample};
