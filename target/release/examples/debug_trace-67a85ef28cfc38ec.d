/root/repo/target/release/examples/debug_trace-67a85ef28cfc38ec.d: examples/debug_trace.rs

/root/repo/target/release/examples/debug_trace-67a85ef28cfc38ec: examples/debug_trace.rs

examples/debug_trace.rs:
