//! Physical layout policies: compute an [`IdRemap`] step that reorders a
//! graph's physical ids for cache locality.
//!
//! The serving layer applies these on its snapshot path: the remapped graph's
//! CSR/CSC arrays are laid out partition-contiguously (every node's owned
//! vertices occupy one physical range), and — under
//! [`ReorderPolicy::DegreeDescending`] — hub vertices cluster at the front of
//! each partition's range. Hot hubs then share out-of-core segments, so a
//! byte-budgeted [`slfe_graph::BufferPool`] keeps them resident while the
//! cold tail faults rarely-touched segments on demand.

use crate::partitioning::Partitioning;
use slfe_graph::{Graph, IdRemap, ReorderPolicy, VertexId};

/// Compute the remap step (old-physical → new-physical) that lays vertices
/// out partition-contiguously in node-id order, ordering each partition's
/// vertices by `policy`:
///
/// * [`ReorderPolicy::DegreeDescending`] — total degree (out + in)
///   descending, ties by external id ascending. Hubs cluster into the hot
///   segments at the front of the partition's range.
/// * [`ReorderPolicy::None`] — external id ascending (a pure
///   migration-compaction layout with no degree clustering).
///
/// The result is a bijection over all of `graph`'s physical ids; it returns
/// [`IdRemap::Identity`] when the layout already matches. `partitioning` must
/// cover the graph.
pub fn contiguous_degree_layout(
    graph: &Graph,
    partitioning: &Partitioning,
    policy: ReorderPolicy,
) -> IdRemap {
    assert_eq!(
        partitioning.num_vertices(),
        graph.num_vertices(),
        "partitioning must cover the graph"
    );
    let mut forward = vec![0 as VertexId; graph.num_vertices()];
    let mut next: VertexId = 0;
    let mut scratch: Vec<VertexId> = Vec::new();
    for node in 0..partitioning.num_parts() {
        scratch.clear();
        scratch.extend_from_slice(partitioning.vertices_of(node));
        match policy {
            ReorderPolicy::DegreeDescending => scratch.sort_by_key(|&v| {
                let degree = graph.out_degree(v) + graph.in_degree(v);
                (std::cmp::Reverse(degree), graph.external_id(v))
            }),
            ReorderPolicy::None => scratch.sort_by_key(|&v| graph.external_id(v)),
        }
        for &old in &scratch {
            forward[old as usize] = next;
            next += 1;
        }
    }
    IdRemap::from_forward(forward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;

    #[test]
    fn layout_is_partition_contiguous_and_degree_sorted() {
        let g = generators::rmat(120, 900, 0.57, 0.19, 0.19, 5);
        let owners: Vec<usize> = (0..g.num_vertices()).map(|v| v % 3).collect();
        let p = Partitioning::from_owners(owners, 3);
        let step = contiguous_degree_layout(&g, &p, ReorderPolicy::DegreeDescending);
        let r = g.remapped(&step);
        r.validate().unwrap();
        // Each node's vertices occupy one contiguous physical range, in
        // non-increasing total-degree order.
        let mut start = 0usize;
        for node in 0..3 {
            let len = p.vertices_of(node).len();
            let mut prev = usize::MAX;
            for new_v in start..start + len {
                let old = step.to_old(new_v as VertexId);
                assert_eq!(p.owner_of(old), node, "physical id {new_v}");
                let degree = g.out_degree(old) + g.in_degree(old);
                assert!(degree <= prev, "degrees must not increase within a node");
                prev = degree;
            }
            start += len;
        }
        assert_eq!(start, g.num_vertices());
    }

    #[test]
    fn identity_layout_collapses_to_identity() {
        // A single partition of an already externally-sorted graph under
        // ReorderPolicy::None is the existing layout.
        let g = generators::path(10);
        let p = Partitioning::from_owners(vec![0; 10], 1);
        let step = contiguous_degree_layout(&g, &p, ReorderPolicy::None);
        assert!(step.is_identity());
    }

    #[test]
    fn migration_then_reorder_round_trips_externally() {
        let g = generators::rmat(80, 500, 0.57, 0.19, 0.19, 7);
        // Heavily skewed: node 0 owns everything, nodes 1..3 are empty.
        let p = Partitioning::from_owners(vec![0; 80], 4);
        assert!(p.imbalance() > 3.9);
        let owners = p.migrated_owners(1.1).expect("skew must trigger migration");
        let q = Partitioning::from_owners(owners, 4);
        assert!(q.imbalance() <= 1.1);
        let step = contiguous_degree_layout(&g, &q, ReorderPolicy::DegreeDescending);
        let r = g.remapped(&step);
        for ext in g.vertices() {
            assert_eq!(r.external_id(r.to_physical(ext)), ext);
        }
    }

    #[test]
    fn migrated_owners_is_none_when_balanced() {
        let p = Partitioning::from_owners(vec![0, 1, 0, 1], 2);
        assert!(p.migrated_owners(1.5).is_none());
        // Spread of one vertex cannot be improved.
        let p = Partitioning::from_owners(vec![0, 1, 0], 2);
        assert!(p.migrated_owners(1.0).is_none());
    }
}
