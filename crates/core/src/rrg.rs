//! Redundancy-Reduction Guidance (RRG) generation — paper Algorithm 1.
//!
//! The guidance records, for every vertex, `last_iter`: the last propagation level
//! (unit-weight BFS level + 1) at which the vertex can still receive a value from an
//! active in-neighbor. During execution:
//!
//! * **start late** (min/max apps): computations on a vertex before iteration
//!   `last_iter` can be skipped — every input the vertex will ever need has not all
//!   arrived yet, so intermediate results would be recomputed anyway.
//! * **finish early** (arithmetic apps): once a vertex's value has been stable for
//!   `last_iter` consecutive iterations it is declared early-converged and skipped.
//!
//! Algorithm 1 as printed iterates destination vertices and scans *incoming* edges
//! every round, which is `O(|E| * levels)`. The frontier formulation used here —
//! scan the *outgoing* edges of the vertices visited in the previous round, with a
//! `visited` flag so each vertex propagates exactly once — touches each edge `O(1)`
//! times, which is what makes the preprocessing overhead negligible (§4.4,
//! Figure 8). The trade-off: a vertex propagates the level of its *first* reach
//! (its unit-weight BFS level), so on graphs where a vertex is reachable both by a
//! short path and a longer chain, `last_iter` is a **lower bound** of Algorithm 1's
//! fixpoint. A lower bound is always *safe* — it only means fewer skipped
//! computations, never a skipped final value — and the engine's coverage tracking
//! (Algorithm 3's flush push) independently guarantees delivery.

use slfe_graph::{AtomicBitset, Graph, VertexId};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Frontier chunk granularity of the parallel generation pass. Coarser than the
/// engine's 256-vertex mini-chunks because each frontier entry fans out over its
/// whole out-neighborhood.
const FRONTIER_CHUNK: usize = 512;

/// Per-vertex redundancy-reduction guidance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrGuidance {
    last_iter: Vec<u32>,
    max_level: u32,
    work: u64,
}

impl RrGuidance {
    /// Run the preprocessing pass over `graph` and produce the guidance, on the
    /// calling thread.
    ///
    /// Roots are the vertices with no incoming edges (they can never receive an
    /// update, so their propagation level is 0). Graphs with no such vertex (e.g. a
    /// single strongly connected component) fall back to using the highest
    /// out-degree vertex as the root, which still yields usable levels; vertices the
    /// BFS never reaches keep `last_iter = 0` and are therefore never skipped.
    pub fn generate(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut last_iter = vec![0u32; n];
        let mut visited = vec![false; n];
        let mut work: u64 = 0;

        let mut frontier = Self::roots(graph);
        for &root in &frontier {
            visited[root as usize] = true;
        }

        let mut iter: u32 = 1;
        let mut max_level = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &src in &frontier {
                for &dst in graph.out_neighbors(src) {
                    work += 1;
                    // The destination sits at a later propagation level than the
                    // cached one: remember the latest level at which it can still
                    // receive a fresh value.
                    if last_iter[dst as usize] < iter {
                        last_iter[dst as usize] = iter;
                        max_level = max_level.max(iter);
                    }
                    if !visited[dst as usize] {
                        visited[dst as usize] = true;
                        next.push(dst);
                    }
                }
            }
            frontier = next;
            iter += 1;
        }

        Self { last_iter, max_level, work }
    }

    /// The BFS seed set: vertices with no incoming edges, or the highest
    /// out-degree vertex when none exists.
    fn roots(graph: &Graph) -> Vec<VertexId> {
        let mut frontier: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| graph.in_degree(v) == 0)
            .collect();
        if frontier.is_empty() && graph.num_vertices() > 0 {
            if let Some(hub) = slfe_graph::stats::highest_out_degree_vertex(graph) {
                frontier.push(hub);
            }
        }
        frontier
    }

    /// Run the preprocessing pass on up to `workers` real threads.
    ///
    /// The BFS stays level-synchronous, so the result is **identical** to
    /// [`RrGuidance::generate`] for every worker count: within a round, every
    /// reached destination receives the same level (the round number) no matter
    /// which worker touches it first, `last_iter` updates go through an atomic
    /// `fetch_max`, and the `visited` claim is an [`AtomicBitset`] `fetch_or` with
    /// exactly one winner. The per-round frontier *order* may differ across runs,
    /// which is invisible in the output; the counted `generation_work` is the total
    /// out-degree of all visited vertices and therefore also identical. This is
    /// what keeps the §4.4 claim honest at scale: preprocessing parallelises just
    /// like an execution iteration does.
    pub fn generate_parallel(graph: &Graph, workers: usize) -> Self {
        if workers <= 1 {
            return Self::generate(graph);
        }
        let n = graph.num_vertices();
        let last_iter: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        let visited = AtomicBitset::new(n);
        let mut work: u64 = 0;

        let mut frontier = Self::roots(graph);
        for &root in &frontier {
            visited.insert_shared(root as usize);
        }

        let mut iter: u32 = 1;
        while !frontier.is_empty() {
            let num_chunks = frontier.len().div_ceil(FRONTIER_CHUNK);
            if num_chunks == 1 {
                // A small frontier is not worth a thread round trip.
                let mut next = Vec::new();
                for &src in &frontier {
                    for &dst in graph.out_neighbors(src) {
                        work += 1;
                        last_iter[dst as usize].fetch_max(iter, Ordering::Relaxed);
                        if visited.insert_shared(dst as usize) {
                            next.push(dst);
                        }
                    }
                }
                frontier = next;
            } else {
                let cursor = AtomicUsize::new(0);
                let round: Vec<(Vec<VertexId>, u64)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let cursor = &cursor;
                            let frontier = &frontier;
                            let visited = &visited;
                            let last_iter = &last_iter;
                            scope.spawn(move || {
                                let mut local_next = Vec::new();
                                let mut local_work = 0u64;
                                loop {
                                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                                    let start = chunk * FRONTIER_CHUNK;
                                    if start >= frontier.len() {
                                        break;
                                    }
                                    let end = (start + FRONTIER_CHUNK).min(frontier.len());
                                    for &src in &frontier[start..end] {
                                        for &dst in graph.out_neighbors(src) {
                                            local_work += 1;
                                            last_iter[dst as usize]
                                                .fetch_max(iter, Ordering::Relaxed);
                                            if visited.insert_shared(dst as usize) {
                                                local_next.push(dst);
                                            }
                                        }
                                    }
                                }
                                (local_next, local_work)
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().expect("RRG worker panicked")).collect()
                });
                let mut next = Vec::new();
                for (local_next, local_work) in round {
                    next.extend(local_next);
                    work += local_work;
                }
                frontier = next;
            }
            iter += 1;
        }

        let last_iter: Vec<u32> = last_iter.into_iter().map(AtomicU32::into_inner).collect();
        let max_level = last_iter.iter().copied().max().unwrap_or(0);
        Self { last_iter, max_level, work }
    }

    /// The last propagation level of vertex `v` (0 for roots and unreached
    /// vertices, meaning "never skip").
    pub fn last_iter(&self, v: VertexId) -> u32 {
        self.last_iter[v as usize]
    }

    /// The full per-vertex guidance array.
    pub fn last_iters(&self) -> &[u32] {
        &self.last_iter
    }

    /// The largest `last_iter` over all vertices — the depth of the propagation
    /// structure, and the earliest iteration by which every vertex has started.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.last_iter.len()
    }

    /// Counted work (edges traversed) spent generating the guidance; the Figure 8
    /// overhead metric.
    pub fn generation_work(&self) -> u64 {
        self.work
    }

    /// Histogram of `last_iter` values, used by the harness to show how much
    /// "start late" head-room a graph offers.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_level as usize + 1];
        for &l in &self.last_iter {
            hist[l as usize] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;

    #[test]
    fn path_levels_increase_along_the_chain() {
        let g = generators::path(6);
        let rrg = RrGuidance::generate(&g);
        // Vertex 0 is the root (level 0); vertex k is reached at level k.
        assert_eq!(rrg.last_iters(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(rrg.max_level(), 5);
    }

    #[test]
    fn diamond_takes_the_latest_incoming_level() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3: vertex 3 hears from level-1 vertices in
        // iteration 2, so its last_iter must be 2 even though it is first reached in
        // iteration 1.
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let g = b.build();
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.last_iter(0), 0);
        assert_eq!(rrg.last_iter(1), 1);
        assert_eq!(rrg.last_iter(2), 1);
        assert_eq!(rrg.last_iter(3), 2);
    }

    #[test]
    fn star_has_a_single_level() {
        let g = generators::star(20);
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.last_iter(0), 0);
        for leaf in 1..21 {
            assert_eq!(rrg.last_iter(leaf), 1);
        }
        assert_eq!(rrg.max_level(), 1);
        assert_eq!(rrg.level_histogram(), vec![1, 20]);
    }

    #[test]
    fn cycle_without_roots_falls_back_and_never_blocks() {
        let g = generators::cycle(5);
        let rrg = RrGuidance::generate(&g);
        // A root was chosen arbitrarily; every vertex still gets a finite level and
        // the unreached-vertex guarantee (level 0 = never skipped) holds trivially.
        assert!(rrg.max_level() <= 5);
        assert_eq!(rrg.num_vertices(), 5);
    }

    #[test]
    fn generation_work_is_linear_in_edges() {
        let g = generators::rmat(500, 4000, 0.57, 0.19, 0.19, 3);
        let rrg = RrGuidance::generate(&g);
        // The frontier formulation touches each out-edge of each visited vertex
        // exactly once, so work is bounded by |E|.
        assert!(rrg.generation_work() <= g.num_edges() as u64);
        assert!(rrg.generation_work() > 0);
    }

    #[test]
    fn unreachable_vertices_keep_level_zero() {
        // 0 -> 1 plus an isolated 2-cycle (2 <-> 3) that no root reaches.
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (2, 3), (3, 2)]);
        let g = b.build();
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.last_iter(2), 0);
        assert_eq!(rrg.last_iter(3), 0);
        assert_eq!(rrg.last_iter(1), 1);
    }

    #[test]
    fn empty_graph_generates_empty_guidance() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.num_vertices(), 0);
        assert_eq!(rrg.max_level(), 0);
        assert_eq!(rrg.generation_work(), 0);
    }

    #[test]
    fn guidance_is_deterministic() {
        let g = generators::rmat(200, 1500, 0.57, 0.19, 0.19, 8);
        let a = RrGuidance::generate(&g);
        let b = RrGuidance::generate(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_generation_is_identical_to_sequential() {
        for (graph, label) in [
            (generators::rmat(800, 8000, 0.57, 0.19, 0.19, 5), "rmat"),
            (generators::layered(10, 300, 5, 2), "layered"),
            (generators::path(2000), "path"),
            (generators::cycle(50), "cycle"),
        ] {
            let sequential = RrGuidance::generate(&graph);
            for workers in [2usize, 4] {
                let parallel = RrGuidance::generate_parallel(&graph, workers);
                assert_eq!(sequential, parallel, "{label} with {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_generation_with_one_worker_is_the_sequential_pass() {
        let g = generators::rmat(300, 2400, 0.57, 0.19, 0.19, 13);
        assert_eq!(RrGuidance::generate(&g), RrGuidance::generate_parallel(&g, 1));
    }

    #[test]
    fn parallel_generation_handles_the_empty_graph() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let rrg = RrGuidance::generate_parallel(&g, 4);
        assert_eq!(rrg.num_vertices(), 0);
        assert_eq!(rrg.max_level(), 0);
    }
}
