//! TunkRank: follower-influence ranking for social graphs.
//!
//! TunkRank models the expected number of people who read a message posted by `v`:
//! an edge `u -> v` means "u follows v", and
//!
//! ```text
//! TR(v) = Σ_{u ∈ followers(v)} (1 + p · TR(u)) / following(u)
//! ```
//!
//! where `following(u)` is `u`'s out-degree and `p` is the retweet probability.
//! Like PageRank, the stored property is the *outgoing share*
//! `(1 + p·TR(u)) / following(u)` so that an edge contribution is just the source's
//! stored value; `vertex_update` rebuilds the share from the gathered influence.

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};

/// Default retweet probability.
pub const DEFAULT_RETWEET_PROBABILITY: f32 = 0.5;

/// TunkRank as a [`GraphProgram`].
#[derive(Debug, Clone, Copy)]
pub struct TunkRankProgram {
    /// Probability that a follower re-shares a message.
    pub retweet_probability: f32,
}

impl Default for TunkRankProgram {
    fn default() -> Self {
        Self {
            retweet_probability: DEFAULT_RETWEET_PROBABILITY,
        }
    }
}

impl GraphProgram for TunkRankProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::Arithmetic
    }

    fn name(&self) -> &'static str {
        "tunkrank"
    }

    fn initial_value(&self, v: VertexId, degrees: &Degrees) -> f32 {
        // Influence starts at zero, so the initial share is 1 / following(v).
        let out = degrees.out_degree(v);
        if out > 0 {
            1.0 / out as f32
        } else {
            1.0
        }
    }

    fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
        true
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn edge_contribution(
        &self,
        _src: VertexId,
        src_value: f32,
        _weight: EdgeWeight,
    ) -> Option<f32> {
        Some(src_value)
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _dst: VertexId, _old: f32, gathered: f32) -> f32 {
        gathered
    }

    fn vertex_update(&self, v: VertexId, value: f32, degrees: &Degrees) -> f32 {
        // `value` is the gathered influence TR(v); re-express it as the share this
        // vertex sends to everyone it follows.
        let share_numerator = 1.0 + self.retweet_probability * value;
        let out = degrees.out_degree(v);
        if out > 0 {
            share_numerator / out as f32
        } else {
            share_numerator
        }
    }

    fn changed(&self, old: f32, new: f32, tolerance: f64) -> bool {
        (old - new).abs() as f64 > tolerance
    }
}

/// Run TunkRank with the default retweet probability; the result's `values` are
/// shares (use [`influence`] to convert back to TunkRank scores).
pub fn run(engine: &SlfeEngine<'_>) -> ProgramResult<f32> {
    engine.run(&TunkRankProgram::default())
}

/// Convert stored shares back to influence scores:
/// `TR(v) = share(v) * following(v) - 1) / p` (with the out-degree-0 special case).
pub fn influence(graph: &Graph, shares: &[f32], retweet_probability: f32) -> Vec<f32> {
    graph
        .vertices()
        .map(|v| {
            let out = graph.out_degree(v);
            let numerator = if out > 0 {
                shares[v as usize] * out as f32
            } else {
                shares[v as usize]
            };
            (numerator - 1.0) / retweet_probability
        })
        .collect()
}

/// Sequential fixed-point reference for TunkRank influence scores.
pub fn reference(graph: &Graph, retweet_probability: f32, iterations: u32) -> Vec<f32> {
    let n = graph.num_vertices();
    let mut tr = vec![0.0f32; n];
    for _ in 0..iterations {
        let mut next = vec![0.0f32; n];
        for v in graph.vertices() {
            // v's followers are its in-neighbors (u -> v means "u follows v").
            let mut sum = 0.0f32;
            for &u in graph.in_neighbors(v) {
                let following = graph.out_degree(u).max(1) as f32;
                sum += (1.0 + retweet_probability * tr[u as usize]) / following;
            }
            next[v as usize] = sum;
        }
        tr = next;
    }
    tr
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators, GraphBuilder};

    fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn matches_fixed_point_reference_on_a_social_proxy() {
        let g = Dataset::STwitter.load_scaled(40_000);
        let expected = reference(&g, DEFAULT_RETWEET_PROBABILITY, 100);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let result = run(&engine);
        let got = influence(&g, &result.values, DEFAULT_RETWEET_PROBABILITY);
        assert!(
            max_abs_diff(&got, &expected) < 1e-2,
            "TunkRank diverges from reference by {}",
            max_abs_diff(&got, &expected)
        );
    }

    #[test]
    fn account_with_more_followers_is_more_influential() {
        // 1, 2, 3 follow 0; only 4 follows 5. Vertex 0 should out-rank vertex 5.
        let mut b = GraphBuilder::new();
        b.extend_unweighted([(1, 0), (2, 0), (3, 0), (4, 5)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine);
        let tr = influence(&g, &result.values, DEFAULT_RETWEET_PROBABILITY);
        assert!(tr[0] > tr[5]);
        assert!(
            tr[0] >= 2.9,
            "three followers give influence about 3, got {}",
            tr[0]
        );
    }

    #[test]
    fn vertices_with_no_followers_have_zero_influence() {
        let g = generators::path(5);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = run(&engine);
        let tr = influence(&g, &result.values, DEFAULT_RETWEET_PROBABILITY);
        assert!(
            tr[0].abs() < 1e-5,
            "path head has no followers, got {}",
            tr[0]
        );
        assert!(tr[4] > 0.0);
    }

    #[test]
    fn rr_and_non_rr_agree() {
        let g = Dataset::Wiki.load_scaled(128_000);
        let rr = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let no_rr = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::without_rr());
        let a = influence(&g, &run(&rr).values, DEFAULT_RETWEET_PROBABILITY);
        let b = influence(&g, &run(&no_rr).values, DEFAULT_RETWEET_PROBABILITY);
        assert!(max_abs_diff(&a, &b) < 1e-2);
    }
}
