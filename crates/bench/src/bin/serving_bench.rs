//! Serving-under-load benchmark: concurrent readers vs a group-committing
//! writer, with fault injection armed, as a recorded artifact.
//!
//! ```text
//! serving_bench [--vertices N] [--updates U] [--readers R] [--out FILE]
//! ```
//!
//! For SSSP at 1 and 4 workers, a durable [`DeltaServer`] wrapped in the
//! [`ServingFrontend`] serves `R` hammering reader threads (point,
//! multi-point, top-k, plus deliberately expired deadlines) while a producer
//! pushes `U` seeded edge updates through the bounded admission queue, the
//! whole time under the seeded whole-schedule [`FaultPlan`]. Before the JSON
//! is written, every run is probe-asserted:
//!
//! * every reader sample must be **bit-identical** to the published version
//!   it was stamped with, and every published version bit-identical to a
//!   single-threaded fault-free oracle replaying the recorded batches;
//! * every refusal must be **typed** (`Overloaded` / `ReadOnly` /
//!   `DeadlineExceeded`) — an untyped failure panics the run;
//! * zero quarantines and zero thread panics.
//!
//! Emits `BENCH_serving.json`: queries/sec, shed rate, update (apply)
//! latency, and p50/p99 read latency measured while batches apply.

use slfe_apps::sssp::SsspProgram;
use slfe_bench::json;
use slfe_cluster::ClusterConfig;
use slfe_core::EngineConfig;
use slfe_delta::{
    AdmitError, DeltaServer, DurabilityConfig, EdgeUpdate, FrontendConfig, QueryError,
    ServerConfig, ServingFrontend,
};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, stats, FaultPlan, Graph, RetryPolicy};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Options {
    vertices: usize,
    updates: u64,
    readers: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 400,
            updates: 240,
            readers: 2,
            out: PathBuf::from("BENCH_serving.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--updates" => {
                options.updates = value("--updates")?
                    .parse()
                    .map_err(|e| format!("invalid --updates: {e}"))?
            }
            "--readers" => {
                options.readers = value("--readers")?
                    .parse()
                    .map_err(|e| format!("invalid --readers: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: serving_bench [--vertices N] [--updates U] [--readers R] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    if options.readers == 0 {
        return Err("--readers must be at least 1".into());
    }
    Ok(options)
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slfe-serving-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic update stream, a pure function of the step index.
fn update_for(i: u64, n: u32) -> EdgeUpdate {
    let mut rng = SplitMix64::seed_from_u64(0x5EED ^ i);
    let src = rng.range_u32(0, n);
    if rng.next_f64() < 0.7 {
        EdgeUpdate::Insert {
            src,
            dst: rng.range_u32(0, n + 8),
            weight: rng.range_f32(1.0, 10.0),
        }
    } else {
        EdgeUpdate::Delete {
            src,
            dst: rng.range_u32(0, n),
        }
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Out-of-core engine so segment faults sit on the apply path.
fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_trace(false)
        .with_storage_budget(24 << 10)
        .with_storage_segment_bytes(2 << 10)
}

struct RunRecord {
    workers: usize,
    wall_seconds: f64,
    versions: u64,
    updates_submitted: u64,
    sheds: u64,
    shed_rate: f64,
    queries: u64,
    queries_per_sec: f64,
    deadline_refusals: u64,
    read_p50_ns: u64,
    read_p99_ns: u64,
    read_samples: u64,
    apply_p50_ns: u64,
    apply_p99_ns: u64,
    injections: u64,
    io_retries: u64,
    point_samples_verified: u64,
}

fn run_one(graph: &Graph, nodes: usize, workers: usize, options: &Options) -> RunRecord {
    let total_workers = nodes * workers;
    let tag = format!("{total_workers}w");
    let root = stats::highest_out_degree_vertex(graph).unwrap_or(0);
    let make = move |_: &Graph| SsspProgram { root };
    let seed = 7u64;
    let config = ServerConfig {
        cluster: ClusterConfig::new(nodes, workers),
        engine: engine_config(),
        fault_plan: Some(FaultPlan::seeded_transient(seed)),
        ..ServerConfig::default()
    };
    let dir = bench_dir(&tag);
    let retry = RetryPolicy {
        max_retries: 8,
        ..Default::default()
    }
    .with_jitter_seed(seed);
    let durability = DurabilityConfig::new(&dir)
        .with_snapshot_every(4)
        .with_retry(retry);
    let server = DeltaServer::create_durable(graph.clone(), make, config, durability)
        .expect("create durable serving server");

    let frontend = ServingFrontend::spawn(
        server,
        FrontendConfig {
            queue_capacity: 32,
            record_history: true,
            ..FrontendConfig::default()
        },
    );
    let initial = frontend.handle().published();
    let started = Instant::now();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for reader_id in 0..options.readers as u64 {
        let handle = frontend.handle();
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut rng = SplitMix64::seed_from_u64(0xBEE5 ^ reader_id);
            let mut samples: Vec<(u64, u32, Option<u32>)> = Vec::new();
            let mut deadline_refusals = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = rng.range_u32(0, 1024);
                let answer = handle.point(v, None).expect("point query");
                samples.push((answer.seq, v, answer.value.map(|x| x.to_bits())));
                let multi = handle
                    .multi_point(&[0, v, 11], None)
                    .expect("multi-point query");
                for (idx, &q) in [0u32, v, 11].iter().enumerate() {
                    samples.push((multi.seq, q, multi.value[idx].map(|x| x.to_bits())));
                }
                if samples.len().is_multiple_of(64) {
                    let _ = handle
                        .top_k_by(
                            8,
                            |a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal),
                            None,
                        )
                        .expect("top-k query");
                    match handle.point(0, Some(Duration::ZERO)) {
                        Err(QueryError::DeadlineExceeded { .. }) => deadline_refusals += 1,
                        other => panic!("expected a typed deadline refusal, got {other:?}"),
                    }
                }
            }
            (samples, deadline_refusals)
        }));
    }

    // Producer: every shed must be typed; back off and retry until admitted.
    let producer = frontend.handle();
    let n = graph.num_vertices() as u32;
    let mut sheds = 0u64;
    for i in 0..options.updates {
        loop {
            match producer.submit(update_for(i, n)) {
                Ok(()) => break,
                Err(AdmitError::Overloaded { retry_after, .. }) => {
                    sheds += 1;
                    std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                }
                Err(AdmitError::ReadOnly { .. }) => {
                    sheds += 1;
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e @ AdmitError::InvalidUpdate { .. }) => {
                    panic!("producer stages only valid endpoints: {e}")
                }
            }
        }
    }

    let handle = frontend.handle();
    let server = frontend.shutdown();
    let wall_seconds = started.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let mut reader_outputs = Vec::new();
    for r in readers {
        reader_outputs.push(r.join().expect("reader thread panicked"));
    }

    // ---- Probe assertions ------------------------------------------------
    let history = handle.commit_history();
    let counters = handle.counters();
    assert_eq!(counters.updates_submitted, options.updates);
    assert_eq!(counters.updates_coalesced, options.updates);
    assert_eq!(counters.batches_quarantined, 0, "transient faults absorb");
    assert!(
        server.fault_counters().injected_total() > 0,
        "the seeded fault schedule never fired"
    );

    let oracle_config = ServerConfig {
        cluster: ClusterConfig::new(1, 1),
        engine: engine_config(),
        ..ServerConfig::default()
    };
    let mut oracle = DeltaServer::new(graph.clone(), make, oracle_config);
    assert_eq!(bits(initial.values()), bits(oracle.values()), "version 0");
    for (i, (batch, version)) in history.iter().enumerate() {
        oracle.apply(batch);
        assert_eq!(version.seq(), i as u64 + 1);
        assert_eq!(
            bits(version.values()),
            bits(oracle.values()),
            "{tag}: published version {} diverges from the oracle",
            version.seq()
        );
    }
    let mut point_samples_verified = 0u64;
    let mut deadline_refusals = 0u64;
    for (samples, refusals) in &reader_outputs {
        deadline_refusals += refusals;
        for &(seq, v, sample_bits) in samples {
            let values = if seq == 0 {
                initial.values()
            } else {
                history[seq as usize - 1].1.values()
            };
            assert_eq!(
                sample_bits,
                values.get(v as usize).map(|x| x.to_bits()),
                "{tag}: torn read at seq {seq} vertex {v}"
            );
            point_samples_verified += 1;
        }
    }

    // ---- Measurements ----------------------------------------------------
    let read = handle.read_latency();
    let apply = handle.apply_latency();
    let queries = counters.queries;
    let record = RunRecord {
        workers: total_workers,
        wall_seconds,
        versions: history.len() as u64,
        updates_submitted: counters.updates_submitted,
        sheds,
        shed_rate: sheds as f64 / (sheds + counters.updates_submitted).max(1) as f64,
        queries,
        queries_per_sec: queries as f64 / wall_seconds.max(1e-9),
        deadline_refusals,
        read_p50_ns: read.percentile(0.50).unwrap_or(0),
        read_p99_ns: read.percentile(0.99).unwrap_or(0),
        read_samples: read.count(),
        apply_p50_ns: apply.percentile(0.50).unwrap_or(0),
        apply_p99_ns: apply.percentile(0.99).unwrap_or(0),
        injections: server.fault_counters().injected_total(),
        io_retries: server.fault_counters().io_retries,
        point_samples_verified,
    };
    eprintln!(
        "{tag}: {} versions, {:.0} queries/s, shed rate {:.3}, read p50 {}ns p99 {}ns, {} injections",
        record.versions,
        record.queries_per_sec,
        record.shed_rate,
        record.read_p50_ns,
        record.read_p99_ns,
        record.injections
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    record
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();
    let graph = generators::rmat(
        options.vertices,
        options.vertices * 6,
        0.57,
        0.19,
        0.19,
        9_2026,
    );

    let mut records = Vec::new();
    for (nodes, workers) in [(1usize, 1usize), (2, 2)] {
        eprintln!("serving under load at {} workers", nodes * workers);
        records.push(run_one(&graph, nodes, workers, &options));
    }

    // ---- Emit ------------------------------------------------------------
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("Concurrent serving under update traffic with the seeded fault schedule armed: reader threads hammer point/multi-point/top-k queries against published versions while the writer group-commits seeded edge updates on a durable out-of-core SSSP server. Probe-asserted before emission: every reader sample bit-identical to its stamped published version, every published version bit-identical to a single-threaded fault-free oracle replay, every refusal typed, zero quarantines, zero panics. Latencies are wall-clock and machine-dependent; counts are deterministic up to scheduling")
    );
    let _ = writeln!(
        out,
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}}},\n  \"updates\": {},\n  \"readers\": {},",
        graph.num_vertices(),
        graph.num_edges(),
        options.updates,
        options.readers
    );
    out.push_str("  \"runs\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"workers\": {}, \"wall_seconds\": {:.6}, \"versions\": {}, \"updates_submitted\": {}, \"sheds\": {}, \"shed_rate\": {:.6}, \"queries\": {}, \"queries_per_sec\": {:.1}, \"deadline_refusals\": {}, \"read_p50_ns\": {}, \"read_p99_ns\": {}, \"read_samples\": {}, \"apply_p50_ns\": {}, \"apply_p99_ns\": {}, \"injections\": {}, \"io_retries\": {}, \"point_samples_verified\": {}}}",
            r.workers,
            r.wall_seconds,
            r.versions,
            r.updates_submitted,
            r.sheds,
            r.shed_rate,
            r.queries,
            r.queries_per_sec,
            r.deadline_refusals,
            r.read_p50_ns,
            r.read_p99_ns,
            r.read_samples,
            r.apply_p50_ns,
            r.apply_p99_ns,
            r.injections,
            r.io_retries,
            r.point_samples_verified
        );
    }
    out.push_str("\n  ]\n}\n");

    // The emitted document must survive the workspace's own JSON parser.
    json::parse(&out).expect("serving_bench emitted invalid JSON");
    if let Err(e) = std::fs::write(&options.out, &out) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{out}");
    eprintln!("wrote {}", options.out.display());
}
