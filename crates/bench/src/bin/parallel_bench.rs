//! Wall-clock scaling benchmark for the pooled cross-node executor.
//!
//! ```text
//! parallel_bench [--vertices N] [--degree D] [--nodes 1,2,4] [--workers 1,2,4,8] [--runs K] [--out FILE]
//! ```
//!
//! Runs two workloads over a `nodes × workers_per_node` topology sweep and
//! records real wall-clock seconds into `BENCH_parallel.json`:
//!
//! * **scaling** — PageRank and SSSP on an R-MAT graph (default 120k vertices)
//!   for every combination of `--nodes` and `--workers`. Each point records
//!   `total_workers = nodes × workers_per_node` (the persistent pool's size),
//!   `threads_spawned` by that engine's pool (pinning pool reuse: always
//!   `total_workers - 1`, however many iterations ran), measured
//!   `speedup_vs_1_worker` against the `(1 node, 1 worker)` baseline, and
//!   `schedule_parallelism` — total counted work divided by the busiest
//!   simulated worker, i.e. what the deterministic schedule yields on
//!   unconstrained hardware. On a machine with at least `total_workers`
//!   hardware threads the two agree; the JSON records `hardware_threads` so a
//!   single-core container's numbers are read correctly.
//! * **redundancy** — SSSP with RR on vs off on a deep layered graph, wall
//!   clock, demonstrating that redundancy reduction wins in real time, not
//!   just counted work.
//!
//! All engine runs disable tracing so the measurement is the hot loop, not the
//! per-iteration bookkeeping.

use slfe_apps::{pagerank::PageRankProgram, sssp::SsspProgram};
use slfe_bench::json;
use slfe_bench::timing::time_best_of;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, SlfeEngine};
use slfe_graph::{generators, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    degree: usize,
    nodes: Vec<usize>,
    workers: Vec<usize>,
    runs: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 120_000,
            degree: 15,
            nodes: vec![1, 2, 4],
            workers: vec![1, 2, 4, 8],
            runs: 3,
            out: PathBuf::from("BENCH_parallel.json"),
        }
    }
}

fn parse_list(name: &str, raw: &str) -> Result<Vec<usize>, String> {
    let list = raw
        .split(',')
        .map(|w| w.trim().parse().map_err(|e| format!("invalid {name}: {e}")))
        .collect::<Result<Vec<usize>, String>>()?;
    if list.is_empty() || list[0] != 1 {
        return Err(format!("{name} must start with 1 (the baseline)"));
    }
    Ok(list)
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices =
                    value("--vertices")?.parse().map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree =
                    value("--degree")?.parse().map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--nodes" => options.nodes = parse_list("--nodes", &value("--nodes")?)?,
            "--workers" => options.workers = parse_list("--workers", &value("--workers")?)?,
            "--runs" => {
                options.runs = value("--runs")?.parse().map_err(|e| format!("invalid --runs: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: parallel_bench [--vertices N] [--degree D] [--nodes 1,2,4] [--workers 1,2,4] [--runs K] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// One measured configuration of the scaling sweep.
struct ScalingPoint {
    nodes: usize,
    workers_per_node: usize,
    total_workers: usize,
    threads_spawned: u64,
    wall_seconds: f64,
    speedup_vs_1_worker: f64,
    schedule_parallelism: f64,
    iterations: u32,
    total_work: u64,
    messages: u64,
    chunks_skipped: u64,
}

/// total counted work / busiest simulated worker's counted work: the speedup
/// the deterministic schedule itself admits, independent of how many hardware
/// threads executed it.
fn schedule_parallelism(per_node_worker_work: &[Vec<u64>]) -> f64 {
    let total: u64 = per_node_worker_work.iter().flatten().sum();
    let makespan: u64 = per_node_worker_work
        .iter()
        .map(|node| node.iter().copied().max().unwrap_or(0))
        .max()
        .unwrap_or(0);
    if makespan == 0 {
        1.0
    } else {
        total as f64 / makespan as f64
    }
}

fn sweep<P, F>(
    graph: &Graph,
    nodes_list: &[usize],
    workers_list: &[usize],
    runs: usize,
    make_program: F,
) -> Vec<ScalingPoint>
where
    P: slfe_core::GraphProgram<Value = f32>,
    F: Fn() -> P,
{
    let mut points = Vec::new();
    let mut baseline = None;
    for &nodes in nodes_list {
        for &workers in workers_list {
            let config = EngineConfig::default().with_trace(false);
            let engine = SlfeEngine::build(graph, ClusterConfig::new(nodes, workers), config);
            let program = make_program();
            let mut last_result = None;
            let sample = time_best_of(runs, || last_result = Some(engine.run(&program)));
            let result = last_result.expect("at least one measured run");
            let base = *baseline.get_or_insert(sample.best_seconds);
            points.push(ScalingPoint {
                nodes,
                workers_per_node: workers,
                total_workers: nodes * workers,
                threads_spawned: engine.pool().threads_spawned(),
                wall_seconds: sample.best_seconds,
                speedup_vs_1_worker: base / sample.best_seconds.max(1e-12),
                schedule_parallelism: schedule_parallelism(&result.per_node_worker_work),
                iterations: result.stats.iterations,
                total_work: result.stats.totals.work(),
                messages: result.stats.totals.messages_sent,
                chunks_skipped: result.stats.totals.chunks_skipped,
            });
            let p = points.last().unwrap();
            eprintln!(
                "  {nodes}x{workers} ({} total): {:.4}s wall ({:.2}x vs 1 worker, schedule parallelism {:.2}x, {} spawned)",
                p.total_workers, p.wall_seconds, p.speedup_vs_1_worker, p.schedule_parallelism, p.threads_spawned
            );
        }
    }
    points
}

fn scaling_json(app: &str, points: &[ScalingPoint]) -> String {
    let mut out = String::new();
    let _ = write!(out, "    {}: [", json::string(app));
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"nodes\": {}, \"workers_per_node\": {}, \"total_workers\": {}, \"threads_spawned\": {}, \"wall_seconds\": {}, \"speedup_vs_1_worker\": {}, \"schedule_parallelism\": {}, \"iterations\": {}, \"total_work\": {}, \"messages\": {}, \"chunks_skipped\": {}}}",
            p.nodes, p.workers_per_node, p.total_workers, p.threads_spawned,
            json::float_fixed(p.wall_seconds, 6),
            json::float_fixed(p.speedup_vs_1_worker, 4),
            json::float_fixed(p.schedule_parallelism, 4),
            p.iterations, p.total_work, p.messages, p.chunks_skipped
        );
    }
    out.push_str("\n    ]");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();

    eprintln!(
        "building R-MAT graph: {} vertices, ~{} edges",
        options.vertices,
        options.vertices * options.degree
    );
    let rmat = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        2026,
    );
    let root = slfe_graph::stats::highest_out_degree_vertex(&rmat).unwrap_or(0);

    eprintln!(
        "PageRank scaling sweep (nodes: {:?} x workers: {:?})",
        options.nodes, options.workers
    );
    let pr_points = sweep(
        &rmat,
        &options.nodes,
        &options.workers,
        options.runs,
        || PageRankProgram::new(rmat.num_vertices()),
    );
    eprintln!(
        "SSSP scaling sweep (nodes: {:?} x workers: {:?})",
        options.nodes, options.workers
    );
    let sssp_points = sweep(
        &rmat,
        &options.nodes,
        &options.workers,
        options.runs,
        || SsspProgram { root },
    );

    // Redundancy-reduction wall-clock comparison on a propagation-deep graph.
    // 16 layers keeps one layer's frontier above the 5% pull threshold, so the
    // engine runs the wide pull iterations where "start late" has redundancy to
    // remove (a deeper graph stays in push mode, which RR does not optimise).
    let layers = 16;
    let width = (options.vertices / layers).max(1);
    let layered = generators::layered(layers, width, 8, 7);
    let rr_workers = options
        .workers
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .min(hardware_threads.max(1));
    eprintln!(
        "SSSP RR on/off on layered graph ({} vertices, {rr_workers} workers)",
        layered.num_vertices()
    );
    let rr_root = 0;
    let config_on = EngineConfig::default().with_trace(false);
    let config_off = EngineConfig::without_rr().with_trace(false);
    let engine_on = SlfeEngine::build(&layered, ClusterConfig::new(1, rr_workers), config_on);
    let engine_off = SlfeEngine::build(&layered, ClusterConfig::new(1, rr_workers), config_off);
    let rr_on = time_best_of(options.runs, || {
        engine_on.run(&SsspProgram { root: rr_root })
    });
    let rr_off = time_best_of(options.runs, || {
        engine_off.run(&SsspProgram { root: rr_root })
    });
    let rr_on_work = engine_on
        .run(&SsspProgram { root: rr_root })
        .stats
        .totals
        .work();
    let rr_off_work = engine_off
        .run(&SsspProgram { root: rr_root })
        .stats
        .totals
        .work();
    eprintln!(
        "  RR on: {:.4}s wall / {} work; RR off: {:.4}s wall / {} work",
        rr_on.best_seconds, rr_on_work, rr_off.best_seconds, rr_off_work
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("speedup_vs_1_worker is measured wall clock against the (1 node, 1 worker) baseline and is bounded by hardware_threads; schedule_parallelism is counted work / busiest simulated worker over the deterministic degree-aware schedule and shows what total_workers yield on unconstrained hardware; threads_spawned pins the persistent pool (always total_workers - 1, however many iterations ran)")
    );
    let _ = writeln!(
        json,
        "  \"graph\": {{\"kind\": \"rmat\", \"vertices\": {}, \"edges\": {}, \"seed\": 2026}},",
        rmat.num_vertices(),
        rmat.num_edges()
    );
    json.push_str("  \"scaling\": {\n");
    json.push_str(&scaling_json("pagerank", &pr_points));
    json.push_str(",\n");
    json.push_str(&scaling_json("sssp", &sssp_points));
    json.push_str("\n  },\n");
    let _ = writeln!(
        json,
        "  \"redundancy\": {{\"graph\": {{\"kind\": \"layered\", \"vertices\": {}, \"edges\": {}}}, \"workers\": {rr_workers}, \"rr_on_wall_seconds\": {}, \"rr_off_wall_seconds\": {}, \"rr_on_work\": {rr_on_work}, \"rr_off_work\": {rr_off_work}, \"rr_wall_speedup\": {}, \"rr_work_reduction_percent\": {}}}",
        layered.num_vertices(),
        layered.num_edges(),
        json::float_fixed(rr_on.best_seconds, 6),
        json::float_fixed(rr_off.best_seconds, 6),
        json::float_fixed(rr_off.best_seconds / rr_on.best_seconds.max(1e-12), 4),
        json::float_fixed(100.0 * (1.0 - rr_on_work as f64 / rr_off_work.max(1) as f64), 2)
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {}", options.out.display());
}
