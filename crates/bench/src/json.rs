//! JSON emission helpers shared by every `BENCH_*.json`-writing bin.
//!
//! The implementation (emitters *and* the validating parser) lives in
//! [`slfe_metrics::json`] so the telemetry exporters and the bench bins share
//! one definition; this module re-exports it under the historical path.

pub use slfe_metrics::json::*;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexports_cover_emitters_and_parser() {
        let doc = format!("{{\"s\": {}, \"f\": {}}}", string("x"), float(1.5));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(float_fixed(2.0, 2), "2.00");
    }
}
