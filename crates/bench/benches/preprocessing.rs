//! Criterion benchmark backing Figure 8: the cost of generating the
//! redundancy-reduction guidance (Algorithm 1) relative to one SSSP execution.

use criterion::{criterion_group, criterion_main, Criterion};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, RrGuidance, SlfeEngine};
use slfe_graph::datasets::Dataset;

fn bench_preprocessing(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_rrg_overhead");
    group.sample_size(10);
    for dataset in [Dataset::Pokec, Dataset::LiveJournal, Dataset::Friendster] {
        let graph = dataset.load_scaled(16_000);
        group.bench_function(format!("rrg_generation_{}", dataset.abbreviation()), |b| {
            b.iter(|| RrGuidance::generate(&graph))
        });
        group.bench_function(format!("sssp_execution_{}", dataset.abbreviation()), |b| {
            let engine = SlfeEngine::build(&graph, ClusterConfig::new(8, 4), EngineConfig::default());
            let root = slfe_graph::stats::highest_out_degree_vertex(&graph).unwrap_or(0);
            b.iter(|| slfe_apps::sssp::run(&engine, root))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_preprocessing);
criterion_main!(benches);
