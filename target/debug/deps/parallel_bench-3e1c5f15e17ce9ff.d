/root/repo/target/debug/deps/parallel_bench-3e1c5f15e17ce9ff.d: crates/bench/src/bin/parallel_bench.rs

/root/repo/target/debug/deps/libparallel_bench-3e1c5f15e17ce9ff.rmeta: crates/bench/src/bin/parallel_bench.rs

crates/bench/src/bin/parallel_bench.rs:
