/root/repo/target/debug/deps/slfe_cluster-9f122708491cbd9d.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_cluster-9f122708491cbd9d.rmeta: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs Cargo.toml

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/config.rs:
crates/cluster/src/stealing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
