//! Fundamental scalar types shared across the workspace.

/// Identifier of a vertex. Vertices are densely numbered `0..num_vertices`.
///
/// A `u32` bounds graphs to ~4.29 billion vertices, which covers every dataset in
/// the paper (the largest, Friendster, has 65.6 M vertices) and halves the memory
/// footprint of adjacency arrays compared to `usize` on 64-bit machines.
pub type VertexId = u32;

/// Weight attached to an edge. Single precision is what the paper's applications
/// (SSSP, WidestPath, PageRank) use for vertex properties as well.
pub type EdgeWeight = f32;

/// Sentinel for "no vertex". Used by traversal results (e.g. parent pointers).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// A directed, weighted edge `(src, dst, weight)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
    /// Edge weight (1.0 for unweighted inputs).
    pub weight: EdgeWeight,
}

impl Edge {
    /// Create a new edge.
    pub fn new(src: VertexId, dst: VertexId, weight: EdgeWeight) -> Self {
        Self { src, dst, weight }
    }

    /// Create an unweighted (weight = 1.0) edge.
    pub fn unweighted(src: VertexId, dst: VertexId) -> Self {
        Self::new(src, dst, 1.0)
    }

    /// The same edge with direction flipped. Weight is preserved.
    pub fn reversed(self) -> Self {
        Self {
            src: self.dst,
            dst: self.src,
            weight: self.weight,
        }
    }
}

/// Identifier of a (simulated) cluster node that owns a graph partition.
pub type NodeId = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_constructors() {
        let e = Edge::new(1, 2, 3.5);
        assert_eq!(e.src, 1);
        assert_eq!(e.dst, 2);
        assert_eq!(e.weight, 3.5);

        let u = Edge::unweighted(4, 5);
        assert_eq!(u.weight, 1.0);
    }

    #[test]
    fn edge_reversed_swaps_endpoints_and_keeps_weight() {
        let e = Edge::new(7, 9, 2.25);
        let r = e.reversed();
        assert_eq!(r.src, 9);
        assert_eq!(r.dst, 7);
        assert_eq!(r.weight, 2.25);
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn invalid_vertex_is_max() {
        assert_eq!(INVALID_VERTEX, u32::MAX);
    }
}
