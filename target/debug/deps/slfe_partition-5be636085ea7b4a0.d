/root/repo/target/debug/deps/slfe_partition-5be636085ea7b4a0.d: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

/root/repo/target/debug/deps/libslfe_partition-5be636085ea7b4a0.rmeta: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

crates/partition/src/lib.rs:
crates/partition/src/chunking.rs:
crates/partition/src/hash.rs:
crates/partition/src/partitioning.rs:
crates/partition/src/quality.rs:
