/root/repo/target/debug/deps/parallel_bench-22c57a707aeb8a88.d: crates/bench/src/bin/parallel_bench.rs

/root/repo/target/debug/deps/libparallel_bench-22c57a707aeb8a88.rmeta: crates/bench/src/bin/parallel_bench.rs

crates/bench/src/bin/parallel_bench.rs:
