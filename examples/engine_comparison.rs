//! Compare SLFE against every baseline engine on one graph and one application —
//! a miniature, single-run version of the paper's Table 5.
//!
//! Run with: `cargo run --release --example engine_comparison`

use slfe::baselines::{
    BaselineEngine, GeminiEngine, GraphChiEngine, LigraEngine, PowerGraphEngine, PowerLyraEngine,
};
use slfe::graph::datasets::Dataset;
use slfe::metrics::Table;
use slfe::prelude::*;

fn main() {
    let graph = Dataset::LiveJournal.load_scaled(16_000);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).expect("non-empty graph");
    let cluster = ClusterConfig::new(8, 4);
    let program = slfe::apps::sssp::SsspProgram { root };

    let mut table = Table::new(
        format!(
            "SSSP on the LJ proxy ({} vertices, {} edges), 8 simulated nodes",
            graph.num_vertices(),
            graph.num_edges()
        ),
        &[
            "engine",
            "work units",
            "messages",
            "iterations",
            "sim. seconds",
        ],
    );

    let slfe_engine = SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default());
    let slfe_result = slfe_engine.run(&program);
    let slfe_seconds = slfe_result.stats.phases.total_seconds();
    table.add_row(&[
        "slfe".to_string(),
        slfe_result.stats.totals.work().to_string(),
        slfe_result.stats.totals.messages_sent.to_string(),
        slfe_result.iterations().to_string(),
        format!("{slfe_seconds:.6}"),
    ]);

    let mut add = |name: &str, result: slfe::core::ProgramResult<f32>| {
        table.add_row(&[
            name.to_string(),
            result.stats.totals.work().to_string(),
            result.stats.totals.messages_sent.to_string(),
            result.iterations().to_string(),
            format!("{:.6}", result.stats.phases.total_seconds()),
        ]);
    };

    add(
        "gemini",
        GeminiEngine::build(&graph, cluster.clone()).run(&program),
    );
    add(
        "powerlyra",
        PowerLyraEngine::build(&graph, cluster.clone()).run(&program),
    );
    add(
        "powergraph",
        PowerGraphEngine::build(&graph, cluster.clone()).run(&program),
    );
    add(
        "ligra (1 node)",
        LigraEngine::build(&graph, 4).run(&program),
    );
    add(
        "graphchi (1 node)",
        GraphChiEngine::build(&graph, 4).run(&program),
    );

    println!("{table}");
    println!("Every engine computes the same shortest distances; they differ in how much");
    println!("redundant work and communication they perform to get there (paper §4.2).");
}
