/root/repo/target/debug/deps/properties-68b5531b31ce6a6a.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-68b5531b31ce6a6a.rmeta: tests/properties.rs

tests/properties.rs:
