//! Cluster topology and cost-model configuration.

use crate::comm::CommCostModel;

/// Configuration of the simulated cluster.
///
/// The paper's testbed is 8 nodes × 68 cores; the defaults here are a scaled-down
/// 8 × 4 configuration so that the full experiment suite runs quickly on a laptop.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of logical cluster nodes (graph partitions).
    pub num_nodes: usize,
    /// Number of worker threads per node (intra-node parallelism).
    pub workers_per_node: usize,
    /// Mini-chunk size used by the work-stealing scheduler (the paper fixes 256).
    pub chunk_size: usize,
    /// Cost model converting counted messages into simulated communication seconds.
    pub comm_cost: CommCostModel,
}

impl ClusterConfig {
    /// Create a configuration with `num_nodes` nodes and `workers_per_node` workers,
    /// using the default chunk size and communication cost model.
    pub fn new(num_nodes: usize, workers_per_node: usize) -> Self {
        assert!(num_nodes >= 1, "cluster needs at least one node");
        assert!(workers_per_node >= 1, "each node needs at least one worker");
        Self {
            num_nodes,
            workers_per_node,
            chunk_size: crate::stealing::DEFAULT_CHUNK_SIZE,
            comm_cost: CommCostModel::default(),
        }
    }

    /// A single node with a single worker — the degenerate "shared memory" setup
    /// used by the Ligra/GraphChi comparisons and by unit tests.
    pub fn single_node() -> Self {
        Self::new(1, 1)
    }

    /// The paper's 8-node setup with a laptop-friendly 4 workers per node.
    pub fn paper_default() -> Self {
        Self::new(8, 4)
    }

    /// Override the mini-chunk size.
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size >= 1, "chunk size must be positive");
        self.chunk_size = chunk_size;
        self
    }

    /// Override the communication cost model.
    pub fn with_comm_cost(mut self, model: CommCostModel) -> Self {
        self.comm_cost = model;
        self
    }

    /// Total worker count across the cluster.
    pub fn total_workers(&self) -> usize {
        self.num_nodes * self.workers_per_node
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_sets_topology() {
        let c = ClusterConfig::new(4, 3);
        assert_eq!(c.num_nodes, 4);
        assert_eq!(c.workers_per_node, 3);
        assert_eq!(c.total_workers(), 12);
        assert_eq!(c.chunk_size, crate::stealing::DEFAULT_CHUNK_SIZE);
    }

    #[test]
    fn single_node_is_one_by_one() {
        let c = ClusterConfig::single_node();
        assert_eq!(c.num_nodes, 1);
        assert_eq!(c.workers_per_node, 1);
    }

    #[test]
    fn paper_default_matches_eight_nodes() {
        let c = ClusterConfig::paper_default();
        assert_eq!(c.num_nodes, 8);
        assert_eq!(c, ClusterConfig::default());
    }

    #[test]
    fn builders_override_fields() {
        let c = ClusterConfig::new(2, 2)
            .with_chunk_size(64)
            .with_comm_cost(CommCostModel::free());
        assert_eq!(c.chunk_size, 64);
        assert_eq!(c.comm_cost, CommCostModel::free());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        ClusterConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_size_panics() {
        let _ = ClusterConfig::new(1, 1).with_chunk_size(0);
    }
}
