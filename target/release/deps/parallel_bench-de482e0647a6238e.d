/root/repo/target/release/deps/parallel_bench-de482e0647a6238e.d: crates/bench/src/bin/parallel_bench.rs

/root/repo/target/release/deps/parallel_bench-de482e0647a6238e: crates/bench/src/bin/parallel_bench.rs

crates/bench/src/bin/parallel_bench.rs:
