/root/repo/target/release/deps/preprocessing-aa72252a09484e11.d: crates/bench/benches/preprocessing.rs

/root/repo/target/release/deps/preprocessing-aa72252a09484e11: crates/bench/benches/preprocessing.rs

crates/bench/benches/preprocessing.rs:
