//! Cross-crate integration tests: build graphs, partition them, run every
//! application on every engine and check results against the sequential oracles —
//! the end-to-end counterpart of the paper's Theorem 1 (redundancy reduction does
//! not change any application's output).

use slfe::baselines::{
    BaselineEngine, GeminiEngine, GraphChiEngine, LigraEngine, PowerGraphEngine, PowerLyraEngine,
};
use slfe::graph::datasets::Dataset;
use slfe::prelude::*;

fn proxy() -> slfe::graph::Graph {
    Dataset::Pokec.load_scaled(16_000)
}

fn assert_distances_eq(a: &[f32], b: &[f32], tolerance: f32) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            (x.is_infinite() && y.is_infinite()) || (x - y).abs() <= tolerance,
            "vertex {i}: {x} vs {y}"
        );
    }
}

#[test]
fn every_engine_agrees_with_dijkstra_on_sssp() {
    let graph = proxy();
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let oracle = slfe::apps::sssp::reference(&graph, root);
    let program = slfe::apps::sssp::SsspProgram { root };
    let cluster = ClusterConfig::new(4, 2);

    let slfe_rr = SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default()).run(&program);
    let slfe_norr =
        SlfeEngine::build(&graph, cluster.clone(), EngineConfig::without_rr()).run(&program);
    let gemini = GeminiEngine::build(&graph, cluster.clone()).run(&program);
    let powergraph = PowerGraphEngine::build(&graph, cluster.clone()).run(&program);
    let powerlyra = PowerLyraEngine::build(&graph, cluster).run(&program);
    let ligra = LigraEngine::build(&graph, 2).run(&program);
    let graphchi = GraphChiEngine::build(&graph, 2).run(&program);

    for result in [
        &slfe_rr,
        &slfe_norr,
        &gemini,
        &powergraph,
        &powerlyra,
        &ligra,
        &graphchi,
    ] {
        assert_distances_eq(&result.values, &oracle, 1e-3);
        assert!(result.converged, "{} did not converge", result.stats.engine);
    }
}

#[test]
fn every_engine_agrees_with_union_find_on_cc() {
    let graph = slfe::apps::cc::symmetrize(&Dataset::STwitter.load_scaled(32_000));
    let oracle = slfe::apps::cc::reference(&graph);
    let cluster = ClusterConfig::new(4, 2);
    let program = slfe::apps::cc::CcProgram::default();

    let engines: Vec<(String, Vec<f32>)> = vec![
        (
            "slfe".into(),
            SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default())
                .run(&program)
                .values,
        ),
        (
            "gemini".into(),
            GeminiEngine::build(&graph, cluster.clone())
                .run(&program)
                .values,
        ),
        (
            "powergraph".into(),
            PowerGraphEngine::build(&graph, cluster.clone())
                .run(&program)
                .values,
        ),
        (
            "powerlyra".into(),
            PowerLyraEngine::build(&graph, cluster).run(&program).values,
        ),
    ];
    for (name, values) in engines {
        assert_eq!(values, oracle, "{name} disagrees with union-find");
    }
}

#[test]
fn pagerank_mass_is_preserved_across_engines_on_a_sink_free_graph() {
    // On a cycle every vertex has an out-edge, so the total rank must stay 1.
    let graph = slfe::graph::generators::cycle(500);
    let program = slfe::apps::pagerank::PageRankProgram::new(graph.num_vertices());
    for cluster in [ClusterConfig::single_node(), ClusterConfig::new(4, 2)] {
        let result = SlfeEngine::build(&graph, cluster, EngineConfig::default()).run(&program);
        let total: f32 = slfe::apps::pagerank::ranks(&graph, &result.values)
            .iter()
            .sum();
        assert!((total - 1.0).abs() < 1e-3, "rank mass {total}");
    }
}

#[test]
fn rrg_guidance_is_reusable_across_applications_on_the_same_engine() {
    // §3.2: the guidance is generated once per graph and reused by every app.
    let graph = proxy();
    let engine = SlfeEngine::build(&graph, ClusterConfig::new(4, 2), EngineConfig::default());
    let guidance_before = engine.guidance().clone();

    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let _ = slfe::apps::sssp::run(&engine, root);
    let _ = slfe::apps::widestpath::run(&engine, root);
    let _ = slfe::apps::pagerank::run(&engine);

    assert_eq!(
        engine.guidance(),
        &guidance_before,
        "guidance must not be mutated by runs"
    );
    assert!(engine.preprocessing_seconds() > 0.0);
}

#[test]
fn partitioners_cover_every_vertex_and_chunking_balances_edges() {
    let graph = Dataset::Orkut.load_scaled(64_000);
    for nodes in [1usize, 2, 4, 8] {
        let chunked = ChunkingPartitioner::default().partition(&graph, nodes);
        chunked
            .validate(&graph)
            .expect("chunking produces a valid partitioning");
        let quality = slfe::partition::PartitionQuality::measure(&graph, &chunked);
        assert!(
            quality.edge_imbalance < 2.0,
            "imbalance {} at {nodes} nodes",
            quality.edge_imbalance
        );
    }
}

#[test]
fn stats_speedup_helpers_are_consistent_between_rr_and_non_rr_runs() {
    let graph = slfe::graph::generators::layered(16, 80, 6, 3);
    let program = slfe::apps::sssp::SsspProgram { root: 0 };
    let rr =
        SlfeEngine::build(&graph, ClusterConfig::new(4, 2), EngineConfig::default()).run(&program);
    let norr = SlfeEngine::build(&graph, ClusterConfig::new(4, 2), EngineConfig::without_rr())
        .run(&program);
    let speedup = rr.stats.work_speedup_over(&norr.stats);
    let improvement = rr.stats.work_improvement_percent_over(&norr.stats);
    assert!(
        speedup >= 1.0,
        "start-late should win on a deep layered graph, got {speedup}"
    );
    assert!(improvement > 0.0);
}

#[test]
fn parallel_workers_match_sequential_results_for_bfs_sssp_cc() {
    // The engine's determinism guarantee: min/max programs merge push
    // contributions through an idempotent combine and pull every destination on
    // exactly one worker, so any worker count produces the sequential results
    // bit for bit, with redundancy reduction on or off.
    let graph = Dataset::Pokec.load_scaled(24_000);
    let cc_graph = slfe::apps::cc::symmetrize(&graph);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    for config in [EngineConfig::default(), EngineConfig::without_rr()] {
        for nodes in [1usize, 4] {
            let run_all = |workers: usize| {
                let engine =
                    SlfeEngine::build(&graph, ClusterConfig::new(nodes, workers), config.clone());
                let bfs = slfe::apps::bfs::run(&engine, root);
                let sssp = slfe::apps::sssp::run(&engine, root);
                let cc_engine = SlfeEngine::build(
                    &cc_graph,
                    ClusterConfig::new(nodes, workers),
                    config.clone(),
                );
                let cc = slfe::apps::cc::run(&cc_engine);
                (bfs, sssp, cc)
            };
            let (bfs_seq, sssp_seq, cc_seq) = run_all(1);
            for workers in [2usize, 4] {
                let (bfs_par, sssp_par, cc_par) = run_all(workers);
                let rr = config.redundancy;
                let ctx = format!("{nodes} nodes, {workers} workers, rr={rr:?}");
                assert_eq!(bfs_seq.values, bfs_par.values, "bfs values differ ({ctx})");
                assert_eq!(
                    sssp_seq.values, sssp_par.values,
                    "sssp values differ ({ctx})"
                );
                assert_eq!(cc_seq.values, cc_par.values, "cc values differ ({ctx})");
                assert_eq!(bfs_seq.stats.iterations, bfs_par.stats.iterations, "{ctx}");
                assert_eq!(sssp_seq.converged, sssp_par.converged, "{ctx}");
            }
        }
    }
}

#[test]
fn edge_list_round_trip_preserves_application_results() {
    let graph = Dataset::Delicious.load_scaled(256_000);
    let dir = std::env::temp_dir().join("slfe_integration_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("delicious_proxy.el");
    slfe::graph::io::save_edge_list(&graph, &path).unwrap();
    let reloaded = slfe::graph::io::load_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let root = 0;
    let a = slfe::apps::bfs::reference(&graph, root);
    let b = slfe::apps::bfs::reference(&reloaded, root);
    assert_eq!(&a[..reloaded.num_vertices()], &b[..]);
}
