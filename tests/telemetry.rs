//! Telemetry acceptance tests (PR 7): the telemetry switch must be purely
//! observational. For **every registered application** ([`slfe::apps::AppKind::ALL`])
//! at 1 and 4 workers, a telemetry-on run must be bit-identical — values,
//! work counters, iteration count, convergence flag, per-node-pair message
//! tallies — to the telemetry-off run (which is itself the pre-telemetry
//! default). The on-run must actually collect: iteration/phase spans, worker
//! execute windows, and the iteration-wall histogram, all exportable as
//! Chrome trace JSON that a real parser accepts.

use slfe::apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath, AppKind};
use slfe::core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe::graph::{generators, Graph};
use slfe::metrics::{json, Counters, HIST_ITERATION_WALL};
use slfe::prelude::ClusterConfig;

/// Run `program` with telemetry off and on; values (via `compare`), counters
/// and message tallies must be identical, and the on-run's hub must have
/// collected spans plus the per-iteration wall histogram.
fn check_telemetry_is_observation_only<P, V, PF, C>(
    graph: &Graph,
    config: EngineConfig,
    make_program: PF,
    compare: C,
) where
    P: GraphProgram<Value = V>,
    V: Copy + Send + Sync + std::fmt::Debug,
    PF: Fn(&Graph) -> P,
    C: Fn(&[V], &[V], usize),
{
    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let off_engine =
            SlfeEngine::build(graph, cluster.clone(), config.clone().with_telemetry(false));
        let on_engine = SlfeEngine::build(graph, cluster, config.clone().with_telemetry(true));
        let off = off_engine.run(&make_program(graph));
        let on = on_engine.run(&make_program(graph));

        compare(&off.values, &on.values, workers);
        assert_eq!(off.stats.iterations, on.stats.iterations);
        assert_eq!(off.converged, on.converged);
        // `scratch_bytes_peak` sums per-worker high-water marks, which depend
        // on who won the chunk-stealing races — timing-dependent at >1
        // workers (tests/sparse.rs strips it the same way). Every other
        // counter is pinned equal; at 1 worker everything is.
        let strip_peak = |c: Counters| Counters {
            scratch_bytes_peak: 0,
            ..c
        };
        if workers == 1 {
            assert_eq!(
                off.stats.totals, on.stats.totals,
                "counters diverge under telemetry at 1 worker"
            );
        }
        assert_eq!(
            strip_peak(off.stats.totals),
            strip_peak(on.stats.totals),
            "counters diverge under telemetry at {workers} workers"
        );
        for src in 0..2 {
            for dst in 0..2 {
                assert_eq!(
                    off_engine
                        .cluster()
                        .comm_tracker()
                        .messages_between(src, dst),
                    on_engine
                        .cluster()
                        .comm_tracker()
                        .messages_between(src, dst),
                    "message tally {src}->{dst} diverges at {workers} workers"
                );
            }
        }

        // Off: the hub must have collected nothing at all.
        let off_snap = off_engine.telemetry().snapshot();
        assert!(
            off_snap.spans.is_empty(),
            "telemetry-off run recorded spans"
        );
        assert!(off_snap.histograms.is_empty());

        // On: iterations, phases and the wall histogram are all there.
        let on_snap = on_engine.telemetry().snapshot();
        let iteration_spans = on_snap
            .spans
            .iter()
            .filter(|s| s.name == "iteration")
            .count();
        assert_eq!(
            iteration_spans as u32, on.stats.iterations,
            "one iteration span per iteration at {workers} workers"
        );
        assert!(on_snap.spans.iter().any(|s| s.name == "phase"));
        assert!(
            on_snap.spans.iter().any(|s| s.name == "execute"),
            "no worker execute window drained at {workers} workers"
        );
        let wall = on_snap
            .histogram(HIST_ITERATION_WALL)
            .expect("iteration wall histogram missing");
        assert_eq!(wall.count(), on.stats.iterations as u64);
        assert!(wall.percentile(0.5).is_some());

        // Every emitted trace document must survive a real JSON parser.
        let doc = on_snap.chrome_trace();
        let parsed = json::parse(&doc).unwrap_or_else(|e| panic!("invalid trace JSON: {e}"));
        let events = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), on_snap.spans.len());
        // And the flame table must aggregate them without panicking.
        assert!(on_snap.flame_table().render().contains("iteration"));
    }
}

fn assert_bits_equal(off: &[f32], on: &[f32], workers: usize, app: AppKind) {
    assert_eq!(off.len(), on.len());
    for (v, (a, b)) in off.iter().zip(on).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{app}: vertex {v} diverges at {workers} workers ({a} vs {b})"
        );
    }
}

#[test]
fn every_registered_program_is_bit_identical_under_telemetry() {
    let rmat = generators::rmat(320, 2100, 0.57, 0.19, 0.19, 6100);
    let sym = cc::symmetrize(&generators::rmat(220, 1000, 0.57, 0.19, 0.19, 6150));
    let dag = generators::layered(8, 30, 4, 61);
    let root = slfe::graph::stats::highest_out_degree_vertex(&rmat).unwrap();

    for app in AppKind::ALL {
        eprintln!("checking {app}");
        match app {
            AppKind::Sssp => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default(),
                |_| sssp::SsspProgram { root },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::Bfs => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default(),
                |_| bfs::BfsProgram { root },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::WidestPath => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default(),
                |_| widestpath::WidestPathProgram { root },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::ConnectedComponents => check_telemetry_is_observation_only(
                &sym,
                EngineConfig::default(),
                cc::CcProgram::for_graph,
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::PageRank => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default(),
                pagerank::PageRankProgram::for_graph,
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::TunkRank => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default(),
                |_| tunkrank::TunkRankProgram::default(),
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::SpMV => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default(),
                |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
                |d: &[(f32, f32)], s: &[(f32, f32)], k| {
                    for (v, (a, b)) in d.iter().zip(s).enumerate() {
                        assert_eq!(
                            (a.0.to_bits(), a.1.to_bits()),
                            (b.0.to_bits(), b.1.to_bits()),
                            "SpMV: vertex {v} diverges at {k} workers"
                        );
                    }
                },
            ),
            AppKind::HeatSimulation => check_telemetry_is_observation_only(
                &rmat,
                EngineConfig::default().with_max_iterations(120),
                |g: &Graph| heat::HeatProgram::point_source(g, root),
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::NumPaths => check_telemetry_is_observation_only(
                &dag,
                EngineConfig::default(),
                |_| numpaths::NumPathsProgram { root: 0 },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
        }
    }
}

/// The default configuration must keep telemetry off: anyone building an
/// engine the pre-PR way gets the pre-PR (uninstrumented) execution.
#[test]
fn telemetry_defaults_off_and_the_default_engine_collects_nothing() {
    assert!(!EngineConfig::default().telemetry.enabled);
    let graph = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 6200);
    let engine = SlfeEngine::build(&graph, ClusterConfig::new(2, 2), EngineConfig::default());
    let result = engine.run(&sssp::SsspProgram { root: 0 });
    assert!(result.stats.iterations > 0);
    let snap = engine.telemetry().snapshot();
    assert!(snap.spans.is_empty());
    assert!(snap.histograms.is_empty());
}

/// Out-of-core + telemetry: segment faults surface as storage spans and the
/// fault-latency histogram, while values stay bit-identical to the
/// telemetry-off streaming run.
#[test]
fn out_of_core_telemetry_records_segment_faults_without_perturbing_values() {
    use slfe::metrics::HIST_SEGMENT_FAULT;
    let graph = generators::rmat(6_000, 48_000, 0.57, 0.19, 0.19, 6300);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let oocore = EngineConfig::default()
        .with_storage_budget(64 << 10)
        .with_storage_segment_bytes(4 << 10)
        .with_trace(false);
    let off = SlfeEngine::build(&graph, ClusterConfig::new(2, 2), oocore.clone())
        .run(&sssp::SsspProgram { root });
    let on_engine = SlfeEngine::build(
        &graph,
        ClusterConfig::new(2, 2),
        oocore.with_telemetry(true),
    );
    let on = on_engine.run(&sssp::SsspProgram { root });
    assert_eq!(
        off.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        on.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    // The I/O tallies are timing-dependent at >1 workers by design (two
    // workers racing on one segment may both read it — see `BufferPool::get`),
    // and `scratch_bytes_peak` depends on chunk-stealing races, so only the
    // *computation* counters are pinned equal here.
    let strip_nondeterministic = |c: Counters| Counters {
        segments_faulted: 0,
        segment_bytes_read: 0,
        scratch_bytes_peak: 0,
        ..c
    };
    assert_eq!(
        strip_nondeterministic(off.stats.totals),
        strip_nondeterministic(on.stats.totals)
    );
    assert!(on.stats.totals.segments_faulted > 0);

    let snap = on_engine.telemetry().snapshot();
    let faults = snap
        .histogram(HIST_SEGMENT_FAULT)
        .expect("segment fault histogram missing");
    // The histogram sees every pool fault since engine construction; the
    // engine totals only the faults inside its phase windows.
    assert!(faults.count() >= on.stats.totals.segments_faulted);
    assert!(snap
        .spans
        .iter()
        .any(|s| s.name == "segment_fault" && s.cat == "storage"));
    assert!(snap.spans.iter().any(|s| s.name == "disk_read"));
    assert!(snap.spans.iter().any(|s| s.name == "decode"));
    // Storage lanes render on non-coordinator tracks.
    assert!(snap
        .spans
        .iter()
        .filter(|s| s.cat == "storage")
        .all(|s| s.track >= 1));
}

/// Chunk-level sanity for the trace math: spans nest (phase within iteration)
/// and all timestamps are monotone within the run.
#[test]
fn spans_nest_and_use_one_monotone_timeline() {
    let graph = generators::layered(10, 200, 4, 6400);
    let engine = SlfeEngine::build(
        &graph,
        ClusterConfig::new(2, 2),
        EngineConfig::default().with_telemetry(true),
    );
    let result = engine.run(&sssp::SsspProgram { root: 0 });
    assert!(result.converged);
    let snap = engine.telemetry().snapshot();
    let iterations: Vec<_> = snap
        .spans
        .iter()
        .filter(|s| s.name == "iteration")
        .collect();
    let phases: Vec<_> = snap.spans.iter().filter(|s| s.name == "phase").collect();
    assert!(!iterations.is_empty() && !phases.is_empty());
    // Every phase span lies inside some iteration span.
    for phase in &phases {
        let inside = iterations.iter().any(|it| {
            phase.start_ns >= it.start_ns
                && phase.start_ns + phase.dur_ns <= it.start_ns + it.dur_ns
        });
        assert!(inside, "phase span escapes every iteration span");
    }
    // Iteration spans are disjoint and ordered on the shared clock.
    let mut starts: Vec<u64> = iterations.iter().map(|s| s.start_ns).collect();
    let sorted = {
        let mut s = starts.clone();
        s.sort_unstable();
        s
    };
    assert_eq!(starts, sorted, "iteration spans out of order");
    starts.dedup();
    assert_eq!(starts.len(), iterations.len());
}

/// The `Counters` equality the per-app sweep relies on is exhaustive — a new
/// counter field that telemetry accidentally perturbs must fail here, not
/// slip through a stale field list.
#[test]
fn counter_equality_covers_every_field() {
    let zero = Counters::zero();
    let sum = zero + zero;
    assert_eq!(zero, sum);
}
