//! Incremental recomputation acceptance tests: for **every registered
//! application** ([`slfe::apps::AppKind::ALL`]), `apply_batch` + `run_from`
//! must produce the same values as a from-scratch run on the mutated graph —
//! bit-for-bit for min/max programs, at the exact ruler-free fixpoint for
//! arithmetic ones — over seeded random batches, at 1 and 4 workers per node.

use slfe::apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath, AppKind};
use slfe::core::{EngineConfig, GraphProgram, RedundancyMode, SlfeEngine};
use slfe::graph::rng::SplitMix64;
use slfe::graph::{generators, Graph, UpdateBatch};
use slfe::prelude::ClusterConfig;

/// A mixed random batch: ~60% upserts (some growing the id space), ~40%
/// deletions of real edges.
fn mixed_batch(graph: &Graph, seed: u64, ops: usize, allow_growth: bool) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let src = rng.range_u32(0, n);
        if rng.next_f64() < 0.6 {
            let hi = if allow_growth { n + 6 } else { n };
            batch.insert(src, rng.range_u32(0, hi), rng.range_f32(1.0, 10.0));
        } else {
            let outs = graph.out_neighbors(src);
            if !outs.is_empty() {
                batch.delete(src, outs[rng.range_usize(0, outs.len())]);
            }
        }
    }
    batch
}

/// A symmetric batch for the Connected Components (undirected) semantics.
fn symmetric_batch(graph: &Graph, seed: u64, ops: usize) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let a = rng.range_u32(0, n);
        let b = rng.range_u32(0, n);
        if rng.next_f64() < 0.6 {
            batch.insert_symmetric(a, b, 1.0);
        } else if graph.has_edge(a, b) {
            batch.delete_symmetric(a, b);
        }
    }
    batch
}

/// A DAG-preserving batch for NumPaths: only forward (lower id -> higher id)
/// insertions on the layered generator's topologically ordered ids.
fn dag_batch(graph: &Graph, seed: u64, ops: usize) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let a = rng.range_u32(0, n - 1);
        if rng.next_f64() < 0.6 {
            batch.insert(a, rng.range_u32(a + 1, n), 1.0);
        } else {
            let outs = graph.out_neighbors(a);
            if !outs.is_empty() {
                batch.delete(a, outs[rng.range_usize(0, outs.len())]);
            }
        }
    }
    batch
}

/// Warm-start `program` across `batch` and compare with a from-scratch run on
/// the mutated graph. `config` is shared by the previous run, the warm run and
/// the cold oracle; `compare` receives (warm, cold) value slices.
fn check_warm_equals_cold<P, V, PF, C>(
    graph: &Graph,
    batch: &UpdateBatch,
    config: EngineConfig,
    make_program: PF,
    compare: C,
) where
    P: GraphProgram<Value = V>,
    V: Copy + PartialEq + Send + Sync + std::fmt::Debug,
    PF: Fn(&Graph) -> P,
    C: Fn(&[V], &[V], usize),
{
    let (mutated, effect) = graph.apply_batch(batch);
    let dirty = effect.dirty_bitset(mutated.num_vertices());
    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let previous =
            SlfeEngine::build(graph, cluster.clone(), config.clone()).run(&make_program(graph));
        let program = make_program(&mutated);
        let warm_engine = SlfeEngine::build(&mutated, cluster.clone(), config.clone());
        let warm = warm_engine.run_from(&program, &previous, &dirty);
        let cold = SlfeEngine::build(&mutated, cluster, config.clone()).run(&program);
        assert!(
            warm.converged,
            "warm run failed to converge at {workers} workers"
        );
        compare(&warm.values, &cold.values, workers);
    }
}

fn assert_bits_equal(warm: &[f32], cold: &[f32], workers: usize, app: AppKind) {
    assert_eq!(warm.len(), cold.len());
    for (v, (a, b)) in warm.iter().zip(cold).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{app}: vertex {v} diverges at {workers} workers ({a} vs {b})"
        );
    }
}

fn assert_close(warm: &[f32], cold: &[f32], workers: usize, app: AppKind, tol: f32) {
    assert_eq!(warm.len(), cold.len());
    for (v, (a, b)) in warm.iter().zip(cold).enumerate() {
        assert!(
            (a - b).abs() <= tol,
            "{app}: vertex {v} diverges at {workers} workers ({a} vs {b})"
        );
    }
}

/// The arithmetic oracle must run ruler-free: warm restarts reach the exact
/// fixpoint, while the multi ruler's "finish early" is a lossy approximation
/// whose error is not what these tests measure.
fn exact_config() -> EngineConfig {
    EngineConfig::default()
        .with_redundancy(RedundancyMode::Disabled)
        .with_max_iterations(400)
}

#[test]
fn every_registered_program_warm_equals_cold_on_random_batches() {
    for seed in 0..3u64 {
        let rmat = generators::rmat(260, 1700, 0.57, 0.19, 0.19, seed + 900);
        let sym = cc::symmetrize(&generators::rmat(200, 900, 0.57, 0.19, 0.19, seed + 950));
        let dag = generators::layered(8, 30, 4, seed + 77);
        let root = slfe::graph::stats::highest_out_degree_vertex(&rmat).unwrap();

        for app in AppKind::ALL {
            eprintln!("checking {app} (seed {seed})");
            match app {
                AppKind::Sssp => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed, 25, true),
                    EngineConfig::default(),
                    |_| sssp::SsspProgram { root },
                    |w, c, k| assert_bits_equal(w, c, k, app),
                ),
                AppKind::Bfs => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed + 1, 25, true),
                    EngineConfig::default(),
                    |_| bfs::BfsProgram { root },
                    |w, c, k| assert_bits_equal(w, c, k, app),
                ),
                AppKind::WidestPath => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed + 2, 25, true),
                    EngineConfig::default(),
                    |_| widestpath::WidestPathProgram { root },
                    |w, c, k| assert_bits_equal(w, c, k, app),
                ),
                AppKind::ConnectedComponents => check_warm_equals_cold(
                    &sym,
                    &symmetric_batch(&sym, seed + 3, 18),
                    EngineConfig::default(),
                    cc::CcProgram::for_graph,
                    |w, c, k| assert_bits_equal(w, c, k, app),
                ),
                AppKind::PageRank => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed + 4, 20, true),
                    exact_config(),
                    pagerank::PageRankProgram::for_graph,
                    |w, c, k| assert_close(w, c, k, app, 1e-5),
                ),
                AppKind::TunkRank => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed + 5, 20, false),
                    exact_config(),
                    |_| tunkrank::TunkRankProgram::default(),
                    |w, c, k| assert_close(w, c, k, app, 1e-5),
                ),
                AppKind::SpMV => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed + 6, 20, true),
                    exact_config(),
                    |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
                    |w: &[(f32, f32)], c: &[(f32, f32)], k| {
                        for (v, (a, b)) in w.iter().zip(c).enumerate() {
                            assert_eq!(
                                (a.0.to_bits(), a.1.to_bits()),
                                (b.0.to_bits(), b.1.to_bits()),
                                "SpMV: vertex {v} diverges at {k} workers"
                            );
                        }
                    },
                ),
                // Heat's geometric decay converges slowly near machine epsilon;
                // a softer tolerance keeps the trajectory short while both runs
                // still walk it identically.
                AppKind::HeatSimulation => check_warm_equals_cold(
                    &rmat,
                    &mixed_batch(&rmat, seed + 7, 20, false),
                    exact_config()
                        .with_tolerance(1e-6)
                        .with_max_iterations(3000),
                    |g: &Graph| heat::HeatProgram::point_source(g, root),
                    // Heat's warm hook restarts from the initial condition, so
                    // warm and cold run the identical trajectory.
                    |w, c, k| assert_bits_equal(w, c, k, app),
                ),
                AppKind::NumPaths => check_warm_equals_cold(
                    &dag,
                    &dag_batch(&dag, seed + 8, 15),
                    exact_config(),
                    |_| numpaths::NumPathsProgram { root: 0 },
                    |w, c, k| assert_bits_equal(w, c, k, app),
                ),
            }
        }
    }
}

/// Regression: component-splitting deletions must invalidate values whose only
/// remaining "support" is circular. CC's label copy and WidestPath's capacity
/// min are not strictly monotonic, so after deleting the bridge 0-1 in
/// `{0-1, 1-2}` the stale labels of 1 and 2 derive from each other; the
/// invalidation pass must reset them rather than trust that phantom support.
#[test]
fn bridge_deletions_invalidate_circularly_supported_values() {
    use slfe::apps::cc::CcProgram;
    use slfe::apps::widestpath::WidestPathProgram;
    use slfe::graph::GraphBuilder;

    // CC on the symmetric path 0-1-2: labels [0,0,0]; cut 0-1 -> [0,1,1].
    let mut b = GraphBuilder::new().symmetric(true);
    b.add_unweighted(0, 1).add_unweighted(1, 2);
    let cc_graph = b.build();
    let mut cc_batch = UpdateBatch::new();
    cc_batch.delete_symmetric(0, 1);

    // WidestPath from 0 over 0 -(10)-> 1 <-(10)-> 2: capacities [inf, 10, 10];
    // cut 0 -> 1 and both become unreachable (capacity 0).
    let mut b = GraphBuilder::new();
    b.extend_weighted([(0, 1, 10.0), (1, 2, 10.0), (2, 1, 10.0)]);
    let wp_graph = b.build();
    let mut wp_batch = UpdateBatch::new();
    wp_batch.delete(0, 1);

    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let check = |graph: &Graph, batch: &UpdateBatch, use_effect: bool| {
            let (mutated, effect) = graph.apply_batch(batch);
            let previous = SlfeEngine::build(graph, cluster.clone(), EngineConfig::default())
                .run(&CcProgram::default());
            let warm_engine = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default());
            let warm = if use_effect {
                warm_engine.run_from_effect(&CcProgram::default(), &previous, &effect)
            } else {
                warm_engine.run_from(
                    &CcProgram::default(),
                    &previous,
                    &effect.dirty_bitset(mutated.num_vertices()),
                )
            };
            let cold = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default())
                .run(&CcProgram::default());
            assert_eq!(warm.values, cold.values, "CC bridge cut diverges");
        };
        check(&cc_graph, &cc_batch, false);
        check(&cc_graph, &cc_batch, true);

        let (mutated, effect) = wp_graph.apply_batch(&wp_batch);
        let program = WidestPathProgram { root: 0 };
        let previous =
            SlfeEngine::build(&wp_graph, cluster.clone(), EngineConfig::default()).run(&program);
        let warm = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default())
            .run_from_effect(&program, &previous, &effect);
        let cold =
            SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default()).run(&program);
        assert_eq!(warm.values, cold.values, "WidestPath bridge cut diverges");
        assert_eq!(warm.values[1], 0.0, "vertex 1 must become unreachable");
        assert_eq!(warm.values[2], 0.0, "vertex 2 must become unreachable");
    }
}

/// Regression: a candidate that *beats* the stored value must not prune the
/// invalidation cascade when it is derived from a neighbor that is itself
/// invalidated later in the pass. Here vertex 1's candidate 6 (via vertex 3's
/// soon-dead distance 5 plus the new edge 3->1) "improves" on its stored 10;
/// trusting it would strand 10 while the true new distance is 51.
#[test]
fn improvement_through_a_stale_neighbor_still_invalidates() {
    use slfe::graph::GraphBuilder;
    let mut b = GraphBuilder::new();
    b.extend_weighted([
        (0, 1, 10.0),
        (0, 3, 5.0),
        (0, 2, 40.0),
        (2, 1, 45.0),
        (2, 3, 10.0),
    ]);
    let graph = b.build();
    let mut batch = UpdateBatch::new();
    batch.delete(0, 1).delete(0, 3).insert(3, 1, 1.0);
    let (mutated, effect) = graph.apply_batch(&batch);
    let program = sssp::SsspProgram { root: 0 };
    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let previous =
            SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default()).run(&program);
        let engine = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default());
        let warm = engine.run_from_effect(&program, &previous, &effect);
        let cold = SlfeEngine::build(&mutated, cluster, EngineConfig::default()).run(&program);
        assert_eq!(warm.values, cold.values, "{workers} workers");
        assert_eq!(warm.values, vec![0.0, 51.0, 40.0, 50.0]);
    }
}

#[test]
fn run_from_effect_matches_run_from_for_every_program_shape() {
    for seed in 0..2u64 {
        let rmat = generators::rmat(220, 1500, 0.57, 0.19, 0.19, seed + 1500);
        let root = slfe::graph::stats::highest_out_degree_vertex(&rmat).unwrap();
        let batch = mixed_batch(&rmat, seed + 40, 25, true);
        let (mutated, effect) = rmat.apply_batch(&batch);
        let cluster = ClusterConfig::new(2, 2);
        let program = sssp::SsspProgram { root };
        let previous =
            SlfeEngine::build(&rmat, cluster.clone(), EngineConfig::default()).run(&program);
        let engine = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default());
        let via_dirty = engine.run_from(
            &program,
            &previous,
            &effect.dirty_bitset(mutated.num_vertices()),
        );
        let via_effect = engine.run_from_effect(&program, &previous, &effect);
        let cold = SlfeEngine::build(&mutated, cluster, EngineConfig::default()).run(&program);
        for v in 0..mutated.num_vertices() {
            assert_eq!(via_dirty.values[v].to_bits(), cold.values[v].to_bits());
            assert_eq!(via_effect.values[v].to_bits(), cold.values[v].to_bits());
        }
        // The effect-seeded pass can only do less invalidation work.
        assert!(via_effect.stats.totals.work() <= via_dirty.stats.totals.work());
    }
}

#[test]
fn repaired_guidance_equals_regeneration_for_every_batch_shape() {
    use slfe::core::RrGuidance;
    for seed in 0..3u64 {
        let graph = generators::rmat(300, 2000, 0.57, 0.19, 0.19, seed + 1200);
        for (label, batch) in [
            ("mixed", mixed_batch(&graph, seed, 30, true)),
            ("symmetric", symmetric_batch(&graph, seed, 20)),
        ] {
            let old = RrGuidance::generate(&graph);
            let (mutated, effect) = graph.apply_batch(&batch);
            let (repaired, _) = old.repair(&mutated, &effect.dirty, 4);
            assert!(
                repaired.guidance_eq(&RrGuidance::generate(&mutated)),
                "{label} batch, seed {seed}: repaired guidance diverges"
            );
        }
    }
}

#[test]
fn warm_start_saves_work_on_serving_sized_batches() {
    // The serving regime: a large graph, a small batch.
    let graph = generators::rmat(8_000, 64_000, 0.57, 0.19, 0.19, 2027);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let mut rng = SplitMix64::seed_from_u64(13);
    let mut batch = UpdateBatch::new();
    for _ in 0..60 {
        batch.insert(
            rng.range_u32(0, graph.num_vertices() as u32),
            rng.range_u32(0, graph.num_vertices() as u32),
            rng.range_f32(4.0, 10.0),
        );
    }
    let (mutated, effect) = graph.apply_batch(&batch);
    let dirty = effect.dirty_bitset(mutated.num_vertices());
    let cluster = ClusterConfig::new(2, 1);
    let program = sssp::SsspProgram { root };
    let previous =
        SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default()).run(&program);
    let warm = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default())
        .run_from(&program, &previous, &dirty);
    let cold = SlfeEngine::build(&mutated, cluster, EngineConfig::default()).run(&program);
    assert_eq!(
        warm.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        cold.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );
    assert!(
        warm.stats.totals.work() * 5 <= cold.stats.totals.work(),
        "warm restart should save >=5x counted work ({} vs {})",
        warm.stats.totals.work(),
        cold.stats.totals.work()
    );
}
