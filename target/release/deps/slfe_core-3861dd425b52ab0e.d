/root/repo/target/release/deps/slfe_core-3861dd425b52ab0e.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/release/deps/libslfe_core-3861dd425b52ab0e.rlib: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/release/deps/libslfe_core-3861dd425b52ab0e.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/rrg.rs:
