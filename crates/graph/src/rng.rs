//! A small, dependency-free deterministic PRNG.
//!
//! The generators and the randomized test suites need reproducible pseudo-random
//! streams, not cryptographic quality. This is the SplitMix64 generator (Steele et
//! al., "Fast splittable pseudorandom number generators", OOPSLA'14) — the same
//! mixer `java.util.SplittableRandom` and xoshiro seeding use. It is seedable,
//! portable and passes BigCrush when used as a 64-bit stream, which is far more
//! than graph generation requires.

/// SplitMix64: a tiny deterministic 64-bit PRNG.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Equal seeds produce equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift rejection-free mapping; the bias is < span / 2^64, which is
        // negligible for graph-generation span sizes.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_usize(lo as usize, hi as usize) as u32
    }

    /// Uniform `f32` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // An f64 draw within 2^-25 of 1.0 rounds up to 1.0f32, which would land
        // exactly on `hi`; clamp keeps the documented half-open contract.
        (lo + (self.next_f64() as f32) * (hi - lo)).clamp(lo, hi.next_down())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_produce_equal_streams() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::seed_from_u64(1);
        let mut b = SplitMix64::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut rng = SplitMix64::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds_and_hit_all_values() {
        let mut rng = SplitMix64::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..500 {
            let v = rng.range_usize(0, 8);
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all buckets of a small range get hit"
        );
        for _ in 0..100 {
            let w = rng.range_f32(1.0, 10.0);
            assert!((1.0..10.0).contains(&w));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SplitMix64::seed_from_u64(0).range_usize(5, 5);
    }
}
