/root/repo/target/debug/deps/slfe_core-7f6b2891a906d825.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/debug/deps/slfe_core-7f6b2891a906d825: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/rrg.rs:
