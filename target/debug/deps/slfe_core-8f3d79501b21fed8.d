/root/repo/target/debug/deps/slfe_core-8f3d79501b21fed8.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/debug/deps/libslfe_core-8f3d79501b21fed8.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/rrg.rs:
