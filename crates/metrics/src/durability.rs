//! Durability instrumentation: WAL, snapshot, and compaction counters.
//!
//! The delta server's durability layer (`slfe-delta::durability`) reports its
//! activity through this plain value type, mirroring the engine's
//! [`crate::Counters`] style: cheap monotone tallies, summable across
//! windows, never used for synchronisation.

use std::ops::{Add, AddAssign};

/// A snapshot of durability work performed by a serving process.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityCounters {
    /// Update batches appended to the write-ahead log.
    pub wal_entries_appended: u64,
    /// Bytes those appends wrote (frame headers included).
    pub wal_bytes_appended: u64,
    /// fsync (`sync_data`) calls issued by WAL appends — the per-batch
    /// durability cost the bench reports.
    pub wal_fsyncs: u64,
    /// Batches re-applied from the WAL during recovery.
    pub wal_entries_replayed: u64,
    /// Bytes of torn or corrupt WAL tail discarded when opening the log.
    pub wal_bytes_truncated: u64,
    /// Snapshots written (atomic temp-file + rename cycles completed).
    pub snapshots_written: u64,
    /// Bytes of the snapshot files written.
    pub snapshot_bytes_written: u64,
    /// Segment-file compactions performed on the snapshot path.
    pub compactions: u64,
    /// Dead backing-file bytes those compactions reclaimed.
    pub compaction_bytes_reclaimed: u64,
}

impl DurabilityCounters {
    /// A zeroed counter set.
    pub fn zero() -> Self {
        Self::default()
    }
}

impl Add for DurabilityCounters {
    type Output = DurabilityCounters;
    fn add(self, rhs: DurabilityCounters) -> DurabilityCounters {
        DurabilityCounters {
            wal_entries_appended: self.wal_entries_appended + rhs.wal_entries_appended,
            wal_bytes_appended: self.wal_bytes_appended + rhs.wal_bytes_appended,
            wal_fsyncs: self.wal_fsyncs + rhs.wal_fsyncs,
            wal_entries_replayed: self.wal_entries_replayed + rhs.wal_entries_replayed,
            wal_bytes_truncated: self.wal_bytes_truncated + rhs.wal_bytes_truncated,
            snapshots_written: self.snapshots_written + rhs.snapshots_written,
            snapshot_bytes_written: self.snapshot_bytes_written + rhs.snapshot_bytes_written,
            compactions: self.compactions + rhs.compactions,
            compaction_bytes_reclaimed: self.compaction_bytes_reclaimed
                + rhs.compaction_bytes_reclaimed,
        }
    }
}

impl AddAssign for DurabilityCounters {
    fn add_assign(&mut self, rhs: DurabilityCounters) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_fieldwise() {
        let a = DurabilityCounters {
            wal_entries_appended: 1,
            wal_bytes_appended: 2,
            wal_fsyncs: 3,
            wal_entries_replayed: 4,
            wal_bytes_truncated: 5,
            snapshots_written: 6,
            snapshot_bytes_written: 7,
            compactions: 8,
            compaction_bytes_reclaimed: 9,
        };
        let mut c = a + a;
        assert_eq!(c.wal_entries_appended, 2);
        assert_eq!(c.compaction_bytes_reclaimed, 18);
        c += a;
        assert_eq!(c.wal_fsyncs, 9);
        assert_eq!(c.snapshot_bytes_written, 21);
        assert_eq!(DurabilityCounters::zero(), DurabilityCounters::default());
    }
}
