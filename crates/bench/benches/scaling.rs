//! Criterion benchmarks backing Figures 6, 7 and 10: worker-count scaling of the
//! mini-chunk scheduler, node-count scaling of the engine, and the work-stealing
//! ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use slfe_bench::{runner, EngineKind};
use slfe_apps::AppKind;
use slfe_cluster::{ChunkScheduler, ClusterConfig, SchedulingPolicy};
use slfe_graph::datasets::Dataset;

fn bench_scaling(c: &mut Criterion) {
    let graph = Dataset::LiveJournal.load_scaled(16_000);

    // Figure 6: intra-node worker sweep (wall clock of the whole run).
    let mut group = c.benchmark_group("fig6_intra_node_workers");
    group.sample_size(10);
    for workers in [1usize, 4, 16] {
        group.bench_function(format!("pagerank_{workers}_workers"), |b| {
            b.iter(|| {
                runner::run_app(EngineKind::Slfe, AppKind::PageRank, &graph, ClusterConfig::new(1, workers))
            })
        });
    }
    group.finish();

    // Figure 7: inter-node sweep.
    let mut group = c.benchmark_group("fig7_inter_node_nodes");
    group.sample_size(10);
    for nodes in [1usize, 4, 8] {
        group.bench_function(format!("pagerank_{nodes}_nodes"), |b| {
            b.iter(|| {
                runner::run_app(EngineKind::Slfe, AppKind::PageRank, &graph, ClusterConfig::new(nodes, 4))
            })
        });
    }
    group.finish();

    // Figure 10a: scheduler ablation on a synthetic skewed chunk-cost distribution.
    let mut group = c.benchmark_group("fig10a_stealing_ablation");
    group.sample_size(20);
    let scheduler = ChunkScheduler::new(8, 256);
    let items = 256 * 512;
    let cost = |chunk: usize| if chunk % 37 == 0 { 2000u64 } else { 50 };
    for (name, policy) in [
        ("static_blocks", SchedulingPolicy::StaticBlocks),
        ("work_stealing", SchedulingPolicy::WorkStealing),
    ] {
        group.bench_function(name, |b| b.iter(|| scheduler.simulate(items, policy, cost)));
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
