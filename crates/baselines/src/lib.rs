//! # slfe-baselines
//!
//! Behaviour-faithful re-implementations of the systems the paper compares against.
//! None of these apply redundancy reduction; they differ in processing model,
//! partitioning and communication behaviour:
//!
//! * [`gemini`] — computation-centric push/pull engine with chunking partitioning
//!   and an active list; equivalent to SLFE with redundancy reduction disabled
//!   (which is precisely how the paper positions SLFE relative to Gemini).
//! * [`powergraph`] — synchronous Gather-Apply-Scatter over a hash (random)
//!   vertex placement: every processed vertex gathers over **all** incoming edges
//!   and scatters over **all** outgoing edges, with replica-synchronisation
//!   messages for every remote edge.
//! * [`powerlyra`] — PowerGraph's hybrid-cut variant: only high-degree vertices pay
//!   the full replica-synchronisation cost, low-degree vertices behave like
//!   edge-cut locality, so it sits between PowerGraph and Gemini.
//! * [`ligra`] — single-node shared-memory frontier engine (direction optimizing),
//!   i.e. Gemini's model confined to one node.
//! * [`graphchi`] — single-node out-of-core engine: every iteration streams every
//!   shard's edges from simulated disk, so its runtime is dominated by I/O.
//!
//! All engines execute the same [`slfe_core::GraphProgram`] applications and return
//! the same [`slfe_core::ProgramResult`] shape, so the harness can compare counted
//! work, messages and simulated runtime directly.

pub mod gas;
pub mod gemini;
pub mod graphchi;
pub mod ligra;
pub mod powergraph;
pub mod powerlyra;

pub use gas::{GasConfig, GasEngine};
pub use gemini::GeminiEngine;
pub use graphchi::GraphChiEngine;
pub use ligra::LigraEngine;
pub use powergraph::PowerGraphEngine;
pub use powerlyra::PowerLyraEngine;

use slfe_core::{GraphProgram, ProgramResult};

/// Which baseline system a run models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// Gemini (OSDI'16): computation-centric push/pull, chunking partitions.
    Gemini,
    /// PowerGraph (OSDI'12): GAS over random vertex placement.
    PowerGraph,
    /// PowerLyra (EuroSys'15): hybrid-cut GAS.
    PowerLyra,
    /// Ligra (PPoPP'13): shared-memory frontier engine.
    Ligra,
    /// GraphChi (OSDI'12): out-of-core single-machine engine.
    GraphChi,
}

impl BaselineKind {
    /// All baselines, in the order the paper's Table 5 / §4 discuss them.
    pub const ALL: [BaselineKind; 5] = [
        BaselineKind::Gemini,
        BaselineKind::PowerGraph,
        BaselineKind::PowerLyra,
        BaselineKind::Ligra,
        BaselineKind::GraphChi,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            BaselineKind::Gemini => "gemini",
            BaselineKind::PowerGraph => "powergraph",
            BaselineKind::PowerLyra => "powerlyra",
            BaselineKind::Ligra => "ligra",
            BaselineKind::GraphChi => "graphchi",
        }
    }

    /// `true` for systems that run on a single machine only.
    pub fn single_node_only(self) -> bool {
        matches!(self, BaselineKind::Ligra | BaselineKind::GraphChi)
    }
}

impl std::fmt::Display for BaselineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Common interface implemented by every baseline engine.
pub trait BaselineEngine {
    /// Which system this engine models.
    fn kind(&self) -> BaselineKind;

    /// Execute `program` and return its values plus execution statistics.
    fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_unique_names() {
        let mut names: Vec<&str> = BaselineKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn single_node_classification() {
        assert!(BaselineKind::Ligra.single_node_only());
        assert!(BaselineKind::GraphChi.single_node_only());
        assert!(!BaselineKind::Gemini.single_node_only());
        assert!(!BaselineKind::PowerGraph.single_node_only());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(BaselineKind::PowerLyra.to_string(), "powerlyra");
    }
}
