//! Widest Path (maximum bottleneck capacity from a root).
//!
//! The vertex property is the largest capacity with which the vertex can be reached
//! from the root, where a path's capacity is the minimum edge weight along it. The
//! aggregation is `max()` over `min(src_width, edge_weight)` contributions — the
//! `max()`-flavoured member of the paper's min/max family.

use crate::sssp::OrderedF32;
use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};
use std::collections::BinaryHeap;

/// Widest Path as a [`GraphProgram`]; unreached vertices hold 0.0, the root holds
/// `f32::INFINITY` (its bottleneck is unconstrained).
#[derive(Debug, Clone, Copy)]
pub struct WidestPathProgram {
    /// The source vertex.
    pub root: VertexId,
}

impl GraphProgram for WidestPathProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::MinMax
    }

    fn name(&self) -> &'static str {
        "widestpath"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
        if v == self.root {
            f32::INFINITY
        } else {
            0.0
        }
    }

    fn initial_active(&self, v: VertexId, _degrees: &Degrees) -> bool {
        v == self.root
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn edge_contribution(&self, _src: VertexId, src_value: f32, weight: EdgeWeight) -> Option<f32> {
        (src_value > 0.0).then(|| src_value.min(weight))
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a.max(b)
    }

    fn apply(&self, _dst: VertexId, old: f32, gathered: f32) -> f32 {
        old.max(gathered)
    }
}

/// Run Widest Path from `root`; values are bottleneck capacities (0 = unreachable,
/// `INFINITY` for the root itself).
pub fn run(engine: &SlfeEngine<'_>, root: VertexId) -> ProgramResult<f32> {
    engine.run(&WidestPathProgram { root })
}

/// Dijkstra-style reference with a max-heap on path capacity.
pub fn reference(graph: &Graph, root: VertexId) -> Vec<f32> {
    let mut width = vec![0.0f32; graph.num_vertices()];
    if graph.num_vertices() == 0 {
        return width;
    }
    width[root as usize] = f32::INFINITY;
    let mut heap = BinaryHeap::new();
    heap.push((OrderedF32(f32::INFINITY), root));
    while let Some((OrderedF32(w), v)) = heap.pop() {
        if w < width[v as usize] {
            continue;
        }
        for (u, edge_w) in graph.out_edges(v) {
            let candidate = w.min(edge_w);
            if candidate > width[u as usize] {
                width[u as usize] = candidate;
                heap.push((OrderedF32(candidate), u));
            }
        }
    }
    width
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sssp::distances_match;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators, GraphBuilder};

    #[test]
    fn picks_the_bottleneck_maximising_path() {
        // Two routes 0 -> 3: via 1 with bottleneck 5, via 2 with bottleneck 2.
        let mut b = GraphBuilder::new();
        b.extend_weighted([(0, 1, 5.0), (1, 3, 7.0), (0, 2, 9.0), (2, 3, 2.0)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, 0);
        assert_eq!(result.values[3], 5.0);
        assert_eq!(result.values[1], 5.0);
        assert_eq!(result.values[2], 9.0);
        assert!(result.values[0].is_infinite());
    }

    #[test]
    fn matches_reference_on_rmat_with_and_without_rr() {
        let g = Dataset::LiveJournal.load_scaled(40_000);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let expected = reference(&g, root);
        for config in [EngineConfig::default(), EngineConfig::without_rr()] {
            let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), config);
            let result = run(&engine, root);
            assert!(
                distances_match(&result.values, &expected, 1e-4),
                "widest path diverges from reference"
            );
        }
    }

    #[test]
    fn unreachable_vertices_keep_zero_width() {
        let g = generators::path(4); // 0 -> 1 -> 2 -> 3
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = run(&engine, 2);
        assert_eq!(result.values[0], 0.0);
        assert_eq!(result.values[1], 0.0);
        assert_eq!(result.values[3], 1.0);
    }

    #[test]
    fn reference_and_engine_agree_on_layered_graph() {
        let g = generators::layered(8, 25, 4, 13);
        let expected = reference(&g, 0);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let result = run(&engine, 0);
        assert!(distances_match(&result.values, &expected, 1e-4));
    }
}
