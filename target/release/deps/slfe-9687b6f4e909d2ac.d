/root/repo/target/release/deps/slfe-9687b6f4e909d2ac.d: src/lib.rs

/root/repo/target/release/deps/libslfe-9687b6f4e909d2ac.rlib: src/lib.rs

/root/repo/target/release/deps/libslfe-9687b6f4e909d2ac.rmeta: src/lib.rs

src/lib.rs:
