//! Serving-under-load acceptance tests (PR 9): the chaos-under-load proof.
//!
//! Reader threads hammer point / multi-point / top-k queries through the
//! [`ServingFrontend`] while the writer thread group-commits seeded update
//! batches **with fault injection armed**. The contract proved here:
//!
//! * **Snapshot consistency** — every answered query is bit-identical to
//!   some fully-published version, which in turn is bit-identical to a
//!   single-threaded fault-free oracle replaying the same batch sequence.
//!   No torn reads, at 1 and at 4 workers.
//! * **Typed refusals** — overload sheds [`AdmitError::Overloaded`] with a
//!   depth and retry hint, a read-only server sheds
//!   [`AdmitError::ReadOnly`], and an expired time budget returns
//!   [`QueryError::DeadlineExceeded`]. Nothing blocks forever, nothing
//!   panics.
//! * **Quarantine** — a poison batch (same apply-error kind twice) is moved
//!   to the dead-letter list and later batches keep committing.
//! * **Resumption** — a read-only server whose obstacle clears re-enters
//!   read-write via the resume probe, counted in `Health` and the registry.
//!
//! Run with `--test-threads=1`: every case spawns its own worker pool and
//! the CI container has a single hardware thread.

use slfe::apps::sssp;
use slfe::cluster::ClusterConfig;
use slfe::core::EngineConfig;
use slfe::delta::{DeltaServer, DurabilityConfig, ServerConfig};
use slfe::graph::rng::SplitMix64;
use slfe::graph::{generators, stats, Graph};
use slfe::prelude::{
    AdmitError, EdgeUpdate, FaultKind, FaultPlan, FaultSite, FrontendConfig, QueryError,
    RetryPolicy, ServingFrontend, ServingMode,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn serving_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slfe-serving-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn chaos_graph(seed: u64) -> Graph {
    generators::rmat(220, 1400, 0.57, 0.19, 0.19, seed)
}

fn engine_config() -> EngineConfig {
    EngineConfig::default()
        .with_trace(false)
        .with_storage_budget(24 << 10)
        .with_storage_segment_bytes(2 << 10)
}

/// Deterministic update stream: step `i` of the producer, independent of
/// timing, so the proof can replay exactly what was admitted.
fn update_for(i: u64, n: u32) -> EdgeUpdate {
    let mut rng = SplitMix64::seed_from_u64(0x5EED ^ i);
    let src = rng.range_u32(0, n);
    if rng.next_f64() < 0.7 {
        EdgeUpdate::Insert {
            src,
            dst: rng.range_u32(0, n + 4),
            weight: rng.range_f32(1.0, 10.0),
        }
    } else {
        EdgeUpdate::Delete {
            src,
            dst: rng.range_u32(0, n),
        }
    }
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// The headline proof. For each worker count: a durable server with the
/// seeded whole-schedule fault plan armed serves two hammering readers and
/// one producer; afterwards every published version must be bit-identical
/// to a single-threaded fault-free oracle replaying the recorded batches,
/// and every reader sample must match the version it was stamped with.
#[test]
fn chaos_under_load_reads_are_snapshot_consistent_at_1_and_4_workers() {
    for (nodes, workers) in [(1usize, 1usize), (2, 2)] {
        let tag = format!("chaos-{nodes}x{workers}");
        let graph = chaos_graph(1030);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let make = move |_: &Graph| sssp::SsspProgram { root };
        let seed = 7u64;
        let config = ServerConfig {
            cluster: ClusterConfig::new(nodes, workers),
            engine: engine_config(),
            fault_plan: Some(FaultPlan::seeded_transient(seed)),
            ..ServerConfig::default()
        };
        let dir = serving_dir(&tag);
        // Same worst-case stacking budget as the fault sweep, plus jitter
        // from the same seed so concurrent retriers de-synchronize.
        let retry = RetryPolicy {
            max_retries: 8,
            ..Default::default()
        }
        .with_jitter_seed(seed);
        let durability = DurabilityConfig::new(&dir)
            .with_snapshot_every(2)
            .with_retry(retry);
        let server =
            DeltaServer::create_durable(graph.clone(), make, config.clone(), durability).unwrap();

        let frontend = ServingFrontend::spawn(
            server,
            FrontendConfig {
                queue_capacity: 16,
                record_history: true,
                ..FrontendConfig::default()
            },
        );
        let initial = frontend.handle().published();
        assert_eq!(initial.seq(), 0);

        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for reader_id in 0..2u64 {
            let handle = frontend.handle();
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(0xBEE5 ^ reader_id);
                // (seq, vertex, value bits) samples to verify post hoc.
                let mut samples: Vec<(u64, u32, Option<u32>)> = Vec::new();
                let mut top_samples: Vec<(u64, Vec<(u32, u32)>)> = Vec::new();
                let mut deadline_refusals = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let v = rng.range_u32(0, 240);
                    let answer = handle.point(v, None).unwrap();
                    samples.push((answer.seq, v, answer.value.map(|x| x.to_bits())));
                    let multi = handle.multi_point(&[0, v, 7], None).unwrap();
                    for (idx, &q) in [0u32, v, 7].iter().enumerate() {
                        samples.push((multi.seq, q, multi.value[idx].map(|x| x.to_bits())));
                    }
                    if samples.len().is_multiple_of(16) {
                        let top = handle
                            .top_k_by(
                                4,
                                |a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal),
                                None,
                            )
                            .unwrap();
                        top_samples.push((
                            top.seq,
                            top.value.iter().map(|&(v, d)| (v, d.to_bits())).collect(),
                        ));
                        // An already-expired budget must refuse typed, never
                        // panic or half-answer.
                        match handle.point(0, Some(Duration::ZERO)) {
                            Err(QueryError::DeadlineExceeded { .. }) => deadline_refusals += 1,
                            other => panic!("expected DeadlineExceeded, got {other:?}"),
                        }
                    }
                }
                (samples, top_samples, deadline_refusals)
            }));
        }

        // Producer: 120 deterministic updates, backing off on typed sheds.
        let producer = frontend.handle();
        let n = graph.num_vertices() as u32;
        let mut sheds = 0u64;
        for i in 0..120u64 {
            loop {
                match producer.submit(update_for(i, n)) {
                    Ok(()) => break,
                    Err(AdmitError::Overloaded { retry_after, .. }) => {
                        sheds += 1;
                        std::thread::sleep(retry_after.min(Duration::from_millis(5)));
                    }
                    Err(AdmitError::ReadOnly { .. }) => {
                        sheds += 1;
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e @ AdmitError::InvalidUpdate { .. }) => {
                        panic!("producer only stages valid endpoints: {e}")
                    }
                }
            }
        }

        let handle = frontend.handle();
        let server = frontend.shutdown();
        stop.store(true, Ordering::Relaxed);
        let mut reader_outputs = Vec::new();
        for r in readers {
            reader_outputs.push(r.join().expect("reader thread panicked"));
        }
        let history = handle.commit_history();
        let counters = handle.counters();
        assert_eq!(counters.updates_submitted, 120);
        assert_eq!(
            counters.updates_coalesced, 120,
            "a clean shutdown flushes the queue"
        );
        assert_eq!(counters.batches_quarantined, 0, "transient faults absorb");
        assert_eq!(server.stats().batches_applied, history.len() as u64);
        assert!(
            server.fault_counters().injected_total() > 0,
            "the seeded schedule never fired"
        );

        // Single-threaded fault-free oracle replaying the recorded batches:
        // every published version must match it bit for bit.
        let oracle_config = ServerConfig {
            cluster: ClusterConfig::new(1, 1),
            engine: engine_config(),
            ..ServerConfig::default()
        };
        let mut oracle = DeltaServer::new(graph.clone(), make, oracle_config);
        assert_eq!(bits(initial.values()), bits(oracle.values()), "version 0");
        for (i, (batch, version)) in history.iter().enumerate() {
            let outcome = oracle.apply(batch);
            assert!(outcome.converged);
            assert_eq!(version.seq(), i as u64 + 1);
            assert_eq!(
                bits(version.values()),
                bits(oracle.values()),
                "{tag}: published version {} diverges from the oracle",
                version.seq()
            );
        }

        // Every reader sample matches the version it was stamped with.
        let version_values = |seq: u64| -> &[f32] {
            if seq == 0 {
                initial.values()
            } else {
                history[seq as usize - 1].1.values()
            }
        };
        let mut point_samples = 0u64;
        for (samples, top_samples, deadline_refusals) in &reader_outputs {
            for &(seq, v, sample_bits) in samples {
                let values = version_values(seq);
                assert_eq!(
                    sample_bits,
                    values.get(v as usize).map(|x| x.to_bits()),
                    "{tag}: torn read at seq {seq} vertex {v}"
                );
                point_samples += 1;
            }
            for (seq, top) in top_samples {
                let expect: Vec<(u32, u32)> = if *seq == 0 {
                    &initial
                } else {
                    &history[*seq as usize - 1].1
                }
                .top_k_by(4, |a: &f32, b: &f32| {
                    b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
                })
                .iter()
                .map(|&(v, d)| (v, d.to_bits()))
                .collect();
                assert_eq!(top, &expect, "{tag}: torn top-k at seq {seq}");
            }
            assert!(*deadline_refusals > 0, "{tag}: deadline path never hit");
        }
        assert!(point_samples > 0);
        let read_latency = handle.read_latency();
        assert!(read_latency.count() >= point_samples / 4);
        assert!(read_latency.percentile(0.99).is_some());
        eprintln!(
            "{tag}: {} versions, {} point samples, {} producer sheds, {} injections",
            history.len(),
            point_samples,
            sheds,
            server.fault_counters().injected_total()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A read-only server sheds `ReadOnly` at admission — then heals itself
/// through the idle-tick resume probe once the obstacle clears. (The
/// `Overloaded` shed with depth + retry hint is pinned by the frontend's
/// unit tests.)
#[test]
fn read_only_sheds_typed_then_self_heals() {
    let graph = chaos_graph(41);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let dir = serving_dir("shed");
    let config = ServerConfig {
        cluster: ClusterConfig::new(1, 1),
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir).with_retry(RetryPolicy::none());
    let server = DeltaServer::create_durable(graph, make, config, durability).unwrap();
    let injector = Arc::clone(server.fault_injector());
    let frontend = ServingFrontend::spawn(server, FrontendConfig::default());
    let handle = frontend.handle();

    // Fill the WAL path with a standing disk-full fault: the next group
    // commit fails, quarantines, and flips the published health read-only.
    injector.arm(FaultPlan::new().fail(FaultSite::WalAppend, 0, FaultKind::DiskFull));
    handle
        .submit(EdgeUpdate::Insert {
            src: 0,
            dst: 1,
            weight: 2.0,
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.published().mode() != ServingMode::ReadOnly {
        assert!(
            Instant::now() < deadline,
            "server never published read-only"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    match handle.submit(EdgeUpdate::Insert {
        src: 0,
        dst: 2,
        weight: 1.0,
    }) {
        Err(AdmitError::ReadOnly { reason }) => {
            assert!(reason.contains("disk full"), "reason: {reason}")
        }
        other => panic!("expected ReadOnly shed, got {other:?}"),
    }
    assert_eq!(handle.dead_letters().len(), 1);
    assert_eq!(handle.dead_letters()[0].batch.len(), 1);

    // Clear the obstacle: the writer's idle tick probes the resume path and
    // re-publishes writable health without any new submission.
    injector.disarm();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.published().mode() != ServingMode::ReadWrite {
        assert!(Instant::now() < deadline, "server never resumed writes");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle
        .submit(EdgeUpdate::Insert {
            src: 0,
            dst: 3,
            weight: 1.0,
        })
        .unwrap();
    let server = frontend.shutdown();
    assert_eq!(server.stats().batches_applied, 1);
    assert_eq!(server.health().writes_resumed(), 1);
    assert_eq!(handle.counters().shed_read_only, 1);
    assert_eq!(handle.published().seq(), 1);
    let reg = handle.metrics_registry();
    assert_eq!(
        reg.get("slfe_frontend_batches_quarantined_total")
            .unwrap()
            .value,
        1.0
    );
    assert_eq!(
        reg.get_with("slfe_frontend_sheds_total", &[("reason", "read_only")])
            .unwrap()
            .value,
        1.0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A poison batch — failing with the same error kind twice — is quarantined
/// to the dead-letter list and the batch behind it commits normally.
#[test]
fn poison_batch_is_quarantined_without_stalling_the_pipeline() {
    let graph = chaos_graph(43);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let dir = serving_dir("poison");
    let config = ServerConfig {
        cluster: ClusterConfig::new(1, 1),
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir).with_retry(RetryPolicy::none());
    let server = DeltaServer::create_durable(graph, make, config, durability).unwrap();
    let injector = Arc::clone(server.fault_injector());
    let frontend = ServingFrontend::spawn(server, FrontendConfig::default());
    let handle = frontend.handle();

    // A long transient window: apply attempt, the resume probes between
    // attempts, and the post-quarantine probes all fail — the batch is
    // certainly dead-lettered.
    injector.arm(FaultPlan::new().fail(
        FaultSite::WalAppend,
        0,
        FaultKind::Transient { failures: 64 },
    ));
    handle
        .submit(EdgeUpdate::Insert {
            src: 1,
            dst: 2,
            weight: 3.0,
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.dead_letters().is_empty() {
        assert!(Instant::now() < deadline, "poison batch never quarantined");
        std::thread::sleep(Duration::from_millis(5));
    }
    let dead = handle.dead_letters();
    assert_eq!(dead.len(), 1);
    assert!(dead[0].attempts >= 2, "quarantine needs a repeated kind");

    // The pipeline behind the poison batch: disarm, wait for the self-heal,
    // submit a clean batch — it must commit and publish.
    injector.disarm();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.published().mode() != ServingMode::ReadWrite {
        assert!(Instant::now() < deadline, "server never resumed writes");
        std::thread::sleep(Duration::from_millis(10));
    }
    handle
        .submit(EdgeUpdate::Insert {
            src: 2,
            dst: 3,
            weight: 1.0,
        })
        .unwrap();
    let server = frontend.shutdown();
    assert_eq!(server.stats().batches_applied, 1);
    assert_eq!(handle.counters().batches_quarantined, 1);
    assert_eq!(handle.published().seq(), 1, "the clean batch published");
    assert!(server.health().writes_resumed() >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A transiently failing batch whose obstacle clears *between attempts* is
/// retried to success by the writer — recovered, not quarantined.
#[test]
fn transiently_failing_batch_recovers_without_quarantine() {
    let graph = chaos_graph(47);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let dir = serving_dir("recover");
    let config = ServerConfig {
        cluster: ClusterConfig::new(1, 1),
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir).with_retry(RetryPolicy::none());
    let server = DeltaServer::create_durable(graph, make, config, durability).unwrap();
    let injector = Arc::clone(server.fault_injector());
    let frontend = ServingFrontend::spawn(server, FrontendConfig::default());
    let handle = frontend.handle();

    // Exactly two failures with no-retry durability: attempt 1's append
    // fails (read-only), attempt 2's resume probe fails (ReadOnly — a new
    // kind, so no quarantine), attempt 3's probe succeeds and the batch
    // applies.
    injector.arm(FaultPlan::new().fail(
        FaultSite::WalAppend,
        0,
        FaultKind::Transient { failures: 2 },
    ));
    handle
        .submit(EdgeUpdate::Insert {
            src: 3,
            dst: 4,
            weight: 2.5,
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.published().seq() == 0 {
        assert!(Instant::now() < deadline, "batch never committed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let server = frontend.shutdown();
    assert_eq!(server.stats().batches_applied, 1);
    assert!(
        handle.dead_letters().is_empty(),
        "recovered, not quarantined"
    );
    assert_eq!(handle.counters().batches_quarantined, 0);
    assert!(handle.counters().apply_retries >= 1);
    assert_eq!(server.health().writes_resumed(), 1);
    assert_eq!(
        server
            .metrics_registry()
            .get("slfe_health_writes_resumed_total")
            .unwrap()
            .value,
        1.0
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite: the Health/ServingMode state machine, table-driven, with every
/// transition's registry gauges asserted — Writable → Degraded (failed
/// snapshot) → cleared (successful snapshot) → ReadOnly (ENOSPC) → probe
/// refused while the obstacle stands → resumed once it clears.
#[test]
fn health_state_machine_transitions_with_registry_gauges() {
    let graph = chaos_graph(53);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let dir = serving_dir("health");
    let config = ServerConfig {
        cluster: ClusterConfig::new(1, 1),
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir)
        .with_snapshot_every(1)
        .with_retry(RetryPolicy::none());
    let mut server = DeltaServer::create_durable(graph.clone(), make, config, durability).unwrap();
    let injector = Arc::clone(server.fault_injector());

    let assert_gauges = |server: &DeltaServer<sssp::SsspProgram, _>,
                         step: &str,
                         read_only: f64,
                         degraded: f64,
                         resumed: f64| {
        let reg = server.metrics_registry();
        assert_eq!(
            reg.get("slfe_health_read_only").unwrap().value,
            read_only,
            "{step}: slfe_health_read_only"
        );
        assert_eq!(
            reg.get("slfe_health_degraded").unwrap().value,
            degraded,
            "{step}: slfe_health_degraded"
        );
        assert_eq!(
            reg.get("slfe_health_writes_resumed_total").unwrap().value,
            resumed,
            "{step}: slfe_health_writes_resumed_total"
        );
    };

    let mut batch_seed = 60u64;
    let mut next_batch = |g: &Graph| {
        let mut rng = SplitMix64::seed_from_u64(batch_seed);
        batch_seed += 1;
        let n = g.num_vertices() as u32;
        let mut batch = slfe::prelude::UpdateBatch::new();
        batch.insert(rng.range_u32(0, n), rng.range_u32(0, n), 1.5);
        batch
    };

    // Step 1: healthy and writable.
    assert_eq!(server.health().mode(), ServingMode::ReadWrite);
    assert_gauges(&server, "healthy", 0.0, 0.0, 0.0);

    // Step 2: a failing snapshot degrades but keeps the server writable.
    injector.arm(FaultPlan::new().fail(FaultSite::SnapshotWrite, 0, FaultKind::Permanent));
    let batch = next_batch(server.graph());
    let outcome = server.try_apply(&batch).unwrap();
    assert!(outcome.degraded);
    assert!(server.health().is_degraded() && !server.health().is_read_only());
    assert_gauges(&server, "degraded", 0.0, 1.0, 0.0);

    // Step 3: a later successful snapshot clears the degradation.
    injector.disarm();
    let batch = next_batch(server.graph());
    let outcome = server.try_apply(&batch).unwrap();
    assert!(!outcome.degraded);
    assert!(!server.health().is_degraded());
    assert_eq!(
        server.health().snapshot_failures(),
        1,
        "count is cumulative"
    );
    assert_gauges(&server, "cleared", 0.0, 0.0, 0.0);

    // Step 4: ENOSPC on the WAL flips read-only; applies are refused typed.
    injector.arm(FaultPlan::new().fail(FaultSite::WalAppend, 0, FaultKind::DiskFull));
    let batch = next_batch(server.graph());
    let err = server.try_apply(&batch).unwrap_err();
    assert_eq!(err.kind(), "wal_append");
    assert!(server.health().is_read_only());
    assert_gauges(&server, "read-only", 1.0, 1.0, 0.0);
    let err = server.try_apply(&batch).unwrap_err();
    assert_eq!(err.kind(), "read_only");

    // Step 5: the resume probe is refused while the obstacle stands.
    assert!(!server.try_resume_writes());
    assert!(server.health().is_read_only());
    assert_gauges(&server, "probe-refused", 1.0, 1.0, 0.0);

    // Step 6: obstacle cleared — the probe succeeds, writes resume, and the
    // next apply goes through end to end.
    injector.disarm();
    assert!(server.try_resume_writes());
    assert_eq!(server.health().mode(), ServingMode::ReadWrite);
    assert!(server.health().read_only_reason().is_none());
    assert_gauges(&server, "resumed", 0.0, 0.0, 1.0);
    let batch = next_batch(server.graph());
    assert!(server.try_apply(&batch).is_ok());
    assert_eq!(server.stats().batches_applied, 3);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The frontend registry carries the serving-layer metrics the ISSUE names:
/// queue gauges, shed/deadline/quarantine counters, published seq, and
/// read-latency percentiles.
#[test]
fn frontend_registry_exposes_queue_shed_and_latency_metrics() {
    let graph = chaos_graph(59);
    let root = stats::highest_out_degree_vertex(&graph).unwrap();
    let make = move |_: &Graph| sssp::SsspProgram { root };
    let config = ServerConfig {
        cluster: ClusterConfig::new(1, 1),
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let server = DeltaServer::new(graph, make, config);
    let frontend = ServingFrontend::spawn(server, FrontendConfig::default());
    let handle = frontend.handle();
    handle
        .submit(EdgeUpdate::Insert {
            src: 0,
            dst: 1,
            weight: 1.0,
        })
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.published().seq() == 0 {
        assert!(Instant::now() < deadline, "batch never committed");
        std::thread::sleep(Duration::from_millis(5));
    }
    for v in 0..32u32 {
        handle.point(v, None).unwrap();
    }
    let _ = handle.point(0, Some(Duration::ZERO));
    let reg = handle.metrics_registry();
    for name in [
        "slfe_frontend_queue_depth",
        "slfe_frontend_queue_capacity",
        "slfe_frontend_queue_high_water",
        "slfe_frontend_published_seq",
        "slfe_frontend_group_commit_limit",
        "slfe_frontend_updates_submitted_total",
        "slfe_frontend_queries_total",
        "slfe_frontend_deadline_exceeded_total",
        "slfe_frontend_batches_committed_total",
        "slfe_frontend_updates_coalesced_total",
        "slfe_frontend_batches_quarantined_total",
        "slfe_frontend_apply_retries_total",
        "slfe_frontend_resume_attempts_total",
        "slfe_frontend_read_latency_count",
        "slfe_frontend_read_latency_p50_ns",
        "slfe_frontend_read_latency_p99_ns",
    ] {
        assert!(reg.get(name).is_some(), "registry is missing {name}");
    }
    for reason in ["overloaded", "read_only", "invalid"] {
        assert!(
            reg.get_with("slfe_frontend_sheds_total", &[("reason", reason)])
                .is_some(),
            "registry is missing sheds_total{{reason={reason}}}"
        );
    }
    assert_eq!(reg.get("slfe_frontend_published_seq").unwrap().value, 1.0);
    assert_eq!(
        reg.get("slfe_frontend_deadline_exceeded_total")
            .unwrap()
            .value,
        1.0
    );
    assert!(reg.get("slfe_frontend_read_latency_count").unwrap().value >= 32.0);
    // The exposition renders (the in-repo parser consumes this in CI).
    let text = reg.prometheus_text();
    assert!(text.contains("slfe_frontend_queue_depth"));
    drop(frontend);
}
