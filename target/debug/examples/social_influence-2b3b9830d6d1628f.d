/root/repo/target/debug/examples/social_influence-2b3b9830d6d1628f.d: examples/social_influence.rs

/root/repo/target/debug/examples/libsocial_influence-2b3b9830d6d1628f.rmeta: examples/social_influence.rs

examples/social_influence.rs:
