//! Durability benchmark: what the write-ahead log costs per batch, how fast
//! recovery is as a function of snapshot interval, and how much disk the
//! snapshot-path compaction reclaims.
//!
//! ```text
//! durability_bench [--vertices N] [--degree D] [--batches B] [--ops OPS] [--out FILE]
//! ```
//!
//! Emits `BENCH_durability.json` (with `git_commit` and `hardware_threads`
//! recorded). Three sections, each probe-asserted before the file is written:
//!
//! * **wal** — the same SSSP batch sequence applied by a plain and a durable
//!   server; values must stay bit-identical, so the wall-clock delta is the
//!   pure WAL + fsync + snapshot overhead per batch.
//! * **recovery** — for each snapshot interval, a durable server is built,
//!   fed, dropped, and re-opened; the recovered values must be bit-identical
//!   to the pre-drop ones. Records recovery wall clock and replayed entries.
//! * **compaction** — an out-of-core durable server whose snapshots compact
//!   past a dead-byte bound; values must stay bit-identical to an in-memory
//!   witness while compaction reclaims bytes.

use slfe_apps::sssp::SsspProgram;
use slfe_bench::json;
use slfe_core::EngineConfig;
use slfe_delta::{DeltaServer, DurabilityConfig, ServerConfig, UpdateBatch};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

struct Options {
    vertices: usize,
    degree: usize,
    batches: u64,
    ops: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 2_000,
            degree: 8,
            batches: 24,
            ops: 25,
            out: PathBuf::from("BENCH_durability.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--batches" => {
                options.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("invalid --batches: {e}"))?
            }
            "--ops" => {
                options.ops = value("--ops")?
                    .parse()
                    .map_err(|e| format!("invalid --ops: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: durability_bench [--vertices N] [--degree D] [--batches B] [--ops OPS] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

fn mixed_batch(graph: &Graph, seed: u64, ops: usize) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let src = rng.range_u32(0, n);
        if rng.next_f64() < 0.7 {
            batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
        } else {
            let outs = graph.out_neighbors(src);
            if !outs.is_empty() {
                batch.delete(src, outs[rng.range_usize(0, outs.len())]);
            }
        }
    }
    batch
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "slfe-durability-bench-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();
    let graph = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        6_2026,
    );
    let root = slfe_graph::stats::highest_out_degree_vertex(&graph).unwrap_or(0);
    let make = move |_: &Graph| SsspProgram { root };
    let config = ServerConfig {
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };

    // ---- Section 1: WAL overhead per batch -------------------------------
    eprintln!(
        "wal overhead: {} batches x {} ops on {} vertices",
        options.batches,
        options.ops,
        graph.num_vertices()
    );
    let mut plain = DeltaServer::new(graph.clone(), make, config.clone());
    let plain_start = Instant::now();
    let mut current = graph.clone();
    for i in 0..options.batches {
        let batch = mixed_batch(&current, 300 + i, options.ops);
        plain.apply(&batch);
        current = current.apply_batch(&batch).0;
    }
    let plain_seconds = plain_start.elapsed().as_secs_f64();

    let wal_dir = bench_dir("wal");
    let durable_config = DurabilityConfig::new(&wal_dir).with_snapshot_every(8);
    let mut durable =
        DeltaServer::create_durable(graph.clone(), make, config.clone(), durable_config).unwrap();
    let durable_start = Instant::now();
    let mut current = graph.clone();
    for i in 0..options.batches {
        let batch = mixed_batch(&current, 300 + i, options.ops);
        durable.apply(&batch);
        current = current.apply_batch(&batch).0;
    }
    let durable_seconds = durable_start.elapsed().as_secs_f64();
    let wal_counters = *durable.durability_counters().unwrap();
    assert_eq!(
        bits(plain.values()),
        bits(durable.values()),
        "durable serving diverged from plain serving"
    );
    let overhead_per_batch = (durable_seconds - plain_seconds).max(0.0) / options.batches as f64;
    eprintln!(
        "  plain {plain_seconds:.4}s vs durable {durable_seconds:.4}s -> {:.6}s/batch overhead ({} fsyncs, {} WAL KiB, {} snapshots)",
        overhead_per_batch,
        wal_counters.wal_fsyncs,
        wal_counters.wal_bytes_appended >> 10,
        wal_counters.snapshots_written
    );
    drop(durable);
    let _ = std::fs::remove_dir_all(&wal_dir);

    // ---- Section 2: recovery time vs snapshot interval -------------------
    struct RecoveryPoint {
        interval: u64,
        recovery_seconds: f64,
        entries_replayed: u64,
        snapshot_bytes: u64,
    }
    let mut recovery = Vec::new();
    for interval in [1u64, 4, 16] {
        let dir = bench_dir(&format!("recover-{interval}"));
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(interval);
        let mut server =
            DeltaServer::create_durable(graph.clone(), make, config.clone(), durability.clone())
                .unwrap();
        let mut current = graph.clone();
        for i in 0..options.batches {
            let batch = mixed_batch(&current, 900 + i, options.ops);
            server.apply(&batch);
            current = current.apply_batch(&batch).0;
        }
        let expected = bits(server.values());
        let snapshot_bytes = std::fs::metadata(durability.snapshot_path()).unwrap().len();
        drop(server);
        let start = Instant::now();
        let reopened = DeltaServer::open(make, config.clone(), durability).unwrap();
        let recovery_seconds = start.elapsed().as_secs_f64();
        assert_eq!(
            bits(reopened.values()),
            expected,
            "interval {interval}: recovered values diverge"
        );
        let entries_replayed = reopened.durability_counters().unwrap().wal_entries_replayed;
        eprintln!(
            "  snapshot every {interval}: reopen {recovery_seconds:.4}s, {entries_replayed} entries replayed, snapshot {} KiB",
            snapshot_bytes >> 10
        );
        recovery.push(RecoveryPoint {
            interval,
            recovery_seconds,
            entries_replayed,
            snapshot_bytes,
        });
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- Section 3: compaction on the snapshot path ----------------------
    let dir = bench_dir("compact");
    let oocore = ServerConfig {
        engine: EngineConfig::default()
            .with_trace(false)
            .with_storage_budget(48 << 10)
            .with_storage_segment_bytes(4 << 10),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir)
        .with_snapshot_every(4)
        .with_max_dead_fraction(0.2);
    let mut server = DeltaServer::create_durable(graph.clone(), make, oocore, durability).unwrap();
    let mut witness = DeltaServer::new(graph.clone(), make, config.clone());
    let mut current = graph.clone();
    let mut peak_dead_fraction: f64 = 0.0;
    for i in 0..options.batches {
        let batch = mixed_batch(&current, 1500 + i, options.ops);
        let outcome = server.apply(&batch);
        witness.apply(&batch);
        current = current.apply_batch(&batch).0;
        let total = outcome.storage_live_bytes + outcome.storage_dead_bytes;
        if total > 0 {
            peak_dead_fraction =
                peak_dead_fraction.max(outcome.storage_dead_bytes as f64 / total as f64);
        }
    }
    assert_eq!(
        bits(server.values()),
        bits(witness.values()),
        "compacting out-of-core serving diverged from in-memory"
    );
    let compaction = *server.durability_counters().unwrap();
    assert!(
        compaction.compactions >= 1,
        "no snapshot compacted despite a {} dead-fraction peak",
        peak_dead_fraction
    );
    assert!(compaction.compaction_bytes_reclaimed > 0);
    let final_dead_fraction = server.storage().unwrap().dead_fraction();
    eprintln!(
        "  compaction: {} runs reclaimed {} KiB (peak dead fraction {:.3}, final {:.3})",
        compaction.compactions,
        compaction.compaction_bytes_reclaimed >> 10,
        peak_dead_fraction,
        final_dead_fraction
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Emit ------------------------------------------------------------
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("SSSP serving on an rmat graph. wal: identical batch sequences on a plain vs durable server (values asserted bit-identical), the delta is WAL fsync + snapshot overhead. recovery: reopen wall clock and WAL entries replayed per snapshot interval (recovered values asserted bit-identical). compaction: out-of-core durable serving with snapshot-path compaction (values asserted bit-identical to in-memory). Wall clock depends on hardware_threads and disk; counters are machine-independent")
    );
    let _ = writeln!(
        out,
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}}},\n  \"batches\": {},\n  \"ops_per_batch\": {},",
        graph.num_vertices(),
        graph.num_edges(),
        options.batches,
        options.ops
    );
    let _ = writeln!(
        out,
        "  \"wal\": {{\"plain_wall_seconds\": {}, \"durable_wall_seconds\": {}, \"overhead_seconds_per_batch\": {}, \"wal_fsyncs\": {}, \"wal_bytes_appended\": {}, \"snapshots_written\": {}, \"snapshot_bytes_written\": {}}},",
        json::float_fixed(plain_seconds, 6),
        json::float_fixed(durable_seconds, 6),
        json::float_fixed(overhead_per_batch, 6),
        wal_counters.wal_fsyncs,
        wal_counters.wal_bytes_appended,
        wal_counters.snapshots_written,
        wal_counters.snapshot_bytes_written
    );
    out.push_str("  \"recovery\": [");
    for (i, p) in recovery.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"snapshot_interval\": {}, \"recovery_seconds\": {}, \"wal_entries_replayed\": {}, \"snapshot_bytes\": {}}}",
            p.interval,
            json::float_fixed(p.recovery_seconds, 6),
            p.entries_replayed,
            p.snapshot_bytes
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"compaction\": {{\"compactions\": {}, \"bytes_reclaimed\": {}, \"peak_dead_fraction\": {}, \"final_dead_fraction\": {}, \"max_dead_fraction\": 0.2}}",
        compaction.compactions,
        compaction.compaction_bytes_reclaimed,
        json::float_fixed(peak_dead_fraction, 4),
        json::float_fixed(final_dead_fraction, 4)
    );
    out.push_str("}\n");

    if let Err(e) = std::fs::write(&options.out, &out) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{out}");
    eprintln!("wrote {}", options.out.display());
}
