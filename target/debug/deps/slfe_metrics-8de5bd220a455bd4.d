/root/repo/target/debug/deps/slfe_metrics-8de5bd220a455bd4.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_metrics-8de5bd220a455bd4.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/imbalance.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
