//! Partition quality metrics: balance and edge cut.
//!
//! §4.5 of the paper reports inter-node imbalance as the relative time difference
//! between the earliest- and latest-finishing node; before execution that imbalance
//! is bounded by how evenly the partitioner spread vertices and edges, which is what
//! these metrics quantify.

use crate::partitioning::Partitioning;
use slfe_graph::Graph;

/// Quality summary of a partitioning.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionQuality {
    /// max / mean of per-node vertex counts (1.0 = perfect balance).
    pub vertex_imbalance: f64,
    /// max / mean of per-node outgoing-edge counts (1.0 = perfect balance).
    pub edge_imbalance: f64,
    /// Fraction of edges whose endpoints live on different nodes, in `[0, 1]`.
    pub edge_cut_fraction: f64,
    /// Relative spread `(max - min) / max` of per-node edge counts; the static
    /// analogue of the paper's inter-node time difference (Figure 10b).
    pub edge_spread: f64,
}

impl PartitionQuality {
    /// Measure the quality of `partitioning` over `graph`.
    pub fn measure(graph: &Graph, partitioning: &Partitioning) -> Self {
        let vertex_counts = partitioning.vertex_counts();
        let edge_counts = partitioning.edge_counts(graph);
        let cut = partitioning.cut_edges(graph);
        let total_edges = graph.num_edges();

        Self {
            vertex_imbalance: imbalance(&vertex_counts),
            edge_imbalance: imbalance(&edge_counts),
            edge_cut_fraction: if total_edges == 0 {
                0.0
            } else {
                cut as f64 / total_edges as f64
            },
            edge_spread: spread(&edge_counts),
        }
    }
}

/// max / mean over the non-empty distribution; 1.0 when all values equal or empty.
fn imbalance(counts: &[usize]) -> f64 {
    if counts.is_empty() {
        return 1.0;
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / counts.len() as f64;
    let max = *counts.iter().max().expect("non-empty") as f64;
    max / mean
}

/// `(max - min) / max`; 0.0 when all equal or all zero.
fn spread(counts: &[usize]) -> f64 {
    let max = counts.iter().copied().max().unwrap_or(0);
    let min = counts.iter().copied().min().unwrap_or(0);
    if max == 0 {
        0.0
    } else {
        (max - min) as f64 / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChunkingPartitioner, HashPartitioner, Partitioner};
    use slfe_graph::generators;

    #[test]
    fn perfectly_balanced_partition_scores_one() {
        let g = generators::cycle(8);
        let p = HashPartitioner::modulo().partition(&g, 4);
        let q = PartitionQuality::measure(&g, &p);
        assert!((q.vertex_imbalance - 1.0).abs() < 1e-9);
        assert!((q.edge_imbalance - 1.0).abs() < 1e-9);
        assert_eq!(q.edge_spread, 0.0);
    }

    #[test]
    fn cut_fraction_of_a_path_split_in_two() {
        let g = generators::path(10); // 9 edges
        let p = ChunkingPartitioner::with_alpha(0.0).partition(&g, 2);
        let q = PartitionQuality::measure(&g, &p);
        // Exactly one edge crosses the boundary.
        assert!((q.edge_cut_fraction - 1.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn star_concentrates_edges_on_hub_owner() {
        let g = generators::star(100);
        let p = HashPartitioner::modulo().partition(&g, 4);
        let q = PartitionQuality::measure(&g, &p);
        // All edges leave vertex 0, so one node owns every edge: imbalance = parts.
        assert!((q.edge_imbalance - 4.0).abs() < 1e-9);
        assert_eq!(q.edge_spread, 1.0);
    }

    #[test]
    fn empty_graph_quality_is_neutral() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let p = ChunkingPartitioner::default().partition(&g, 3);
        let q = PartitionQuality::measure(&g, &p);
        assert_eq!(q.edge_cut_fraction, 0.0);
        assert_eq!(q.vertex_imbalance, 1.0);
    }

    #[test]
    fn imbalance_helper_handles_degenerate_inputs() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[0, 0]), 1.0);
        assert!((imbalance(&[3, 1]) - 1.5).abs() < 1e-9);
        assert_eq!(spread(&[]), 0.0);
        assert_eq!(spread(&[5, 5]), 0.0);
        assert!((spread(&[4, 1]) - 0.75).abs() < 1e-9);
    }
}
