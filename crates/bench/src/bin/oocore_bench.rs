//! Out-of-core execution benchmark: a graph whose CSR/CSC segment footprint
//! exceeds the buffer-pool byte budget must run every registered min/max
//! application **bit-identically** to the in-memory store, while the pool
//! provably stays within its budget and streams more bytes than it may hold.
//!
//! ```text
//! oocore_bench [--vertices N] [--degree D] [--budget BYTES] [--segment BYTES] [--runs K] [--out FILE]
//! ```
//!
//! Emits `BENCH_outofcore.json` (with `git_commit` and `hardware_threads`
//! recorded) from SSSP/BFS/CC/WidestPath runs at 1 and 4 workers per node.
//! Per point it records wall clock for both stores, counted work, segments
//! faulted, bytes streamed from disk, and the pool's peak residency; before
//! the file is written it asserts that (a) the segment footprint exceeds the
//! budget, (b) every app's values are bit-identical across stores and worker
//! counts, (c) `segment_bytes_read > budget` (the pool really cycled), and
//! (d) peak resident bytes never exceeded the budget.

use slfe_apps::{bfs::BfsProgram, cc, sssp::SsspProgram, widestpath::WidestPathProgram};
use slfe_bench::json;
use slfe_bench::timing::time_best_of;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe_graph::{generators, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    degree: usize,
    budget: u64,
    segment: usize,
    runs: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 40_000,
            degree: 8,
            budget: 192 << 10,
            segment: 8 << 10,
            runs: 2,
            out: PathBuf::from("BENCH_outofcore.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--budget" => {
                options.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("invalid --budget: {e}"))?
            }
            "--segment" => {
                options.segment = value("--segment")?
                    .parse()
                    .map_err(|e| format!("invalid --segment: {e}"))?
            }
            "--runs" => {
                options.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("invalid --runs: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: oocore_bench [--vertices N] [--degree D] [--budget BYTES] [--segment BYTES] [--runs K] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// One measured (app, workers) point: in-memory vs out-of-core.
struct Point {
    app: &'static str,
    workers: usize,
    memory_wall_seconds: f64,
    oocore_wall_seconds: f64,
    work: u64,
    iterations: u32,
    segments_faulted: u64,
    segment_bytes_read: u64,
    pool_peak_resident_bytes: u64,
    values_bit_identical: bool,
}

#[allow(clippy::too_many_arguments)]
fn measure<P, F>(
    app: &'static str,
    graph: &Graph,
    options: &Options,
    workers: usize,
    make_program: F,
) -> Point
where
    P: GraphProgram<Value = f32>,
    F: Fn() -> P,
{
    let cluster = ClusterConfig::new(2, workers);
    let base = EngineConfig::default().with_trace(false);
    let memory_engine = SlfeEngine::build(graph, cluster.clone(), base.clone());
    let oocore_engine = SlfeEngine::build(
        graph,
        cluster,
        base.with_storage_budget(options.budget)
            .with_storage_segment_bytes(options.segment),
    );
    let program = make_program();
    let mut memory_result = None;
    let memory_sample = time_best_of(options.runs, || {
        memory_result = Some(memory_engine.run(&program))
    });
    let mut oocore_result = None;
    let oocore_sample = time_best_of(options.runs, || {
        oocore_result = Some(oocore_engine.run(&program))
    });
    let memory_result = memory_result.expect("at least one measured run");
    let oocore_result = oocore_result.expect("at least one measured run");
    let storage = oocore_engine.storage().expect("out-of-core engine");
    let identical = memory_result
        .values
        .iter()
        .map(|v| v.to_bits())
        .eq(oocore_result.values.iter().map(|v| v.to_bits()));
    let point = Point {
        app,
        workers,
        memory_wall_seconds: memory_sample.best_seconds,
        oocore_wall_seconds: oocore_sample.best_seconds,
        work: oocore_result.stats.totals.work(),
        iterations: oocore_result.stats.iterations,
        segments_faulted: oocore_result.stats.totals.segments_faulted,
        segment_bytes_read: oocore_result.stats.totals.segment_bytes_read,
        pool_peak_resident_bytes: storage.pool().peak_resident_bytes(),
        values_bit_identical: identical,
    };
    eprintln!(
        "  {app} @{workers}w: mem {:.4}s vs oocore {:.4}s; {} faults / {} KiB streamed (budget {} KiB), peak resident {} KiB, identical: {}",
        point.memory_wall_seconds,
        point.oocore_wall_seconds,
        point.segments_faulted,
        point.segment_bytes_read >> 10,
        options.budget >> 10,
        point.pool_peak_resident_bytes >> 10,
        point.values_bit_identical
    );
    point
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();

    let rmat = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        5_2026,
    );
    let sym = cc::symmetrize(&generators::rmat(
        options.vertices / 2,
        options.vertices * options.degree / 2,
        0.57,
        0.19,
        0.19,
        5_2027,
    ));
    let root = slfe_graph::stats::highest_out_degree_vertex(&rmat).unwrap_or(0);

    // Probe engines exist only to read the segment footprints up front —
    // every measured graph (the CC points run on `sym`, not `rmat`) must
    // exceed the pool budget, or the per-point `segment_bytes_read > budget`
    // assertion would fail mid-run with a misleading message.
    let footprint_of = |graph: &Graph, name: &str| -> u64 {
        let probe = SlfeEngine::build(
            graph,
            ClusterConfig::new(2, 1),
            EngineConfig::default()
                .with_trace(false)
                .with_storage_budget(options.budget)
                .with_storage_segment_bytes(options.segment),
        );
        let footprint = probe.storage().expect("probe engine").footprint_bytes();
        assert!(
            footprint > options.budget,
            "{name} segment footprint {footprint} B must exceed the pool budget {} B for this benchmark to mean anything — lower --budget or raise --vertices",
            options.budget
        );
        footprint
    };
    let footprint = footprint_of(&rmat, "rmat");
    footprint_of(&sym, "symmetric");
    eprintln!(
        "rmat: {} vertices, {} edges, segment footprint {} KiB vs pool budget {} KiB",
        rmat.num_vertices(),
        rmat.num_edges(),
        footprint >> 10,
        options.budget >> 10
    );

    let mut points = Vec::new();
    for workers in [1usize, 4] {
        points.push(measure("sssp", &rmat, &options, workers, || SsspProgram {
            root,
        }));
        points.push(measure("bfs", &rmat, &options, workers, || BfsProgram {
            root,
        }));
        points.push(measure("cc", &sym, &options, workers, || {
            cc::CcProgram::default()
        }));
        points.push(measure("widestpath", &rmat, &options, workers, || {
            WidestPathProgram { root }
        }));
    }

    for p in &points {
        assert!(
            p.values_bit_identical,
            "{} at {} workers: out-of-core values diverge from in-memory",
            p.app, p.workers
        );
        assert!(
            p.segment_bytes_read > options.budget,
            "{} at {} workers: streamed only {} B against a {} B budget — the pool never cycled",
            p.app,
            p.workers,
            p.segment_bytes_read,
            options.budget
        );
        assert!(
            p.pool_peak_resident_bytes <= options.budget,
            "{} at {} workers: pool resident {} B exceeded the {} B budget",
            p.app,
            p.workers,
            p.pool_peak_resident_bytes,
            options.budget
        );
    }

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("every point runs the same app on the in-memory adjacency and on the disk-segment store behind a clock buffer pool; values are asserted bit-identical, segment_bytes_read > budget (the pool cycled) and pool peak residency <= budget before this file is written. Wall clock depends on hardware_threads and disk cache; counters are machine-independent")
    );
    let _ = writeln!(
        json,
        "  \"graphs\": {{\"rmat\": {{\"vertices\": {}, \"edges\": {}}}, \"symmetric\": {{\"vertices\": {}, \"edges\": {}}}}},",
        rmat.num_vertices(),
        rmat.num_edges(),
        sym.num_vertices(),
        sym.num_edges()
    );
    let _ = writeln!(
        json,
        "  \"storage\": {{\"pool_budget_bytes\": {}, \"segment_bytes\": {}, \"rmat_segment_footprint_bytes\": {footprint}}},",
        options.budget, options.segment
    );
    json.push_str("  \"apps\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        let _ = write!(
            json,
            "\n    {{\"app\": {}, \"workers_per_node\": {}, \"memory_wall_seconds\": {}, \"oocore_wall_seconds\": {}, \"work\": {}, \"iterations\": {}, \"segments_faulted\": {}, \"segment_bytes_read\": {}, \"pool_peak_resident_bytes\": {}, \"values_bit_identical\": {}}}",
            json::string(p.app),
            p.workers,
            json::float_fixed(p.memory_wall_seconds, 6),
            json::float_fixed(p.oocore_wall_seconds, 6),
            p.work,
            p.iterations,
            p.segments_faulted,
            p.segment_bytes_read,
            p.pool_peak_resident_bytes,
            p.values_bit_identical
        );
    }
    json.push_str("\n  ]\n}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {}", options.out.display());
}
