//! # slfe-metrics
//!
//! Instrumentation shared by every engine in the workspace.
//!
//! The paper's evaluation is largely expressed in *counted* units — updates per
//! vertex (Table 2), early-converged vertices (Figure 2), computations per iteration
//! (Figure 9), pull/push time share (Figure 4), node imbalance (Figure 10) — so this
//! crate provides:
//!
//! * [`counters`] — cheap computation/communication counters, with an atomic variant
//!   for concurrent workers.
//! * [`durability`] — WAL/snapshot/compaction counters for the serving layer's
//!   durability subsystem.
//! * [`faults`] — injected-fault and fault-recovery counters (retries,
//!   quarantines, poisoned runs) for the deterministic fault-injection layer.
//! * [`stats`] — the [`ExecutionStats`] summary every engine run returns.
//! * [`trace`] — per-iteration traces used to regenerate the figure 9 curves.
//! * [`imbalance`] — intra-/inter-node imbalance measures (figure 10).
//! * [`report`] — plain-text table and series rendering used by the experiments
//!   harness to print paper-style tables.
//! * [`telemetry`] — span tracing and latency histograms, `TelemetryConfig`-gated
//!   with a strict no-op fast path.
//! * [`histogram`] — log2-bucketed, mergeable latency histograms.
//! * [`export`] — Chrome trace JSON, flame tables, and a Prometheus-text
//!   metrics registry.
//! * [`json`] — hand-rolled JSON emission helpers plus a real parser for
//!   validating every emitted document.

pub mod counters;
pub mod durability;
pub mod export;
pub mod faults;
pub mod histogram;
pub mod imbalance;
pub mod json;
pub mod report;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use counters::{AtomicCounters, Counters};
pub use durability::DurabilityCounters;
pub use export::{chrome_trace_json, flame_table, Metric, MetricKind, MetricsRegistry};
pub use faults::FaultCounters;
pub use histogram::LatencyHistogram;
pub use imbalance::{inter_node_spread, intra_node_speedup, BusyTimes};
pub use report::{Series, Table};
pub use stats::{ExecutionStats, PhaseBreakdown};
pub use telemetry::{
    RunRecorder, SpanEvent, SpanHandle, SpanWindow, Telemetry, TelemetryClock, TelemetryConfig,
    TelemetrySnapshot, HIST_BATCH_APPLY, HIST_ITERATION_WALL, HIST_QUERY_LATENCY,
    HIST_SEGMENT_FAULT, HIST_WAL_FSYNC,
};
pub use trace::{IterationRecord, IterationTrace, Mode};
