//! The application-facing programming model (paper Table 3).
//!
//! An application describes *what* happens along an edge and at a vertex; the
//! engine decides *when* it happens (push or pull, which iteration, which vertices
//! to skip under redundancy reduction). The split mirrors the paper's API:
//!
//! | paper                          | this trait                                   |
//! |--------------------------------|----------------------------------------------|
//! | `pushFunc(vsrc, outgoing)`     | [`GraphProgram::edge_contribution`] applied  |
//! |                                | along outgoing edges + [`GraphProgram::apply`] |
//! | `pullFunc(vdst, incoming)`     | the same two hooks applied along incoming edges, folded with [`GraphProgram::combine`] |
//! | `vertexUpdate(vertexFunc)`     | [`GraphProgram::vertex_update`]              |
//! | `edgeProc(..., Ruler)`         | handled by the engine from the RRG           |

use slfe_graph::{Degrees, EdgeWeight, VertexId};

/// The two aggregation families of Table 1. The family decides which
/// redundancy-reduction rule applies (start late vs finish early) and whether the
/// engine may use push mode at all (arithmetic applications always pull, §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationKind {
    /// `min()`/`max()` aggregation (SSSP, CC, WidestPath, ...). Optimised by
    /// "start late".
    MinMax,
    /// Arithmetic (`sum`/`product`) aggregation (PageRank, TunkRank, SpMV, ...).
    /// Optimised by "finish early" on early-converged vertices.
    Arithmetic,
}

impl std::fmt::Display for AggregationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregationKind::MinMax => write!(f, "min/max"),
            AggregationKind::Arithmetic => write!(f, "arithmetic"),
        }
    }
}

/// A vertex-centric graph application.
///
/// Implementations must be cheap to call: the engine invokes these hooks once per
/// edge/vertex per iteration, so anything expensive belongs in precomputed state on
/// the program struct itself.
///
/// Per-vertex hooks receive a [`Degrees`] view — compact per-vertex out/in
/// degree counts indexed by **physical** vertex id — instead of the whole
/// in-RAM graph. That is all the structural information the registered
/// applications ever read in a hook (PageRank and TunkRank divide by
/// out-degree), and withholding adjacency keeps hooks compatible with
/// out-of-core execution and physical id remapping: a hook can never observe
/// neighbor-list order.
pub trait GraphProgram: Sync {
    /// The per-vertex property type (distance, component label, rank, ...).
    type Value: Copy + PartialEq + Send + Sync + std::fmt::Debug;

    /// Which aggregation family the program belongs to (Table 1).
    fn aggregation(&self) -> AggregationKind;

    /// Short name used in reports ("sssp", "pagerank", ...).
    fn name(&self) -> &'static str;

    /// Initial property of vertex `v`.
    fn initial_value(&self, v: VertexId, degrees: &Degrees) -> Self::Value;

    /// Whether `v` starts in the active set (e.g. only the SSSP root does).
    fn initial_active(&self, v: VertexId, degrees: &Degrees) -> bool;

    /// Identity element of [`GraphProgram::combine`]: `+inf` for a min fold, `0`
    /// for a sum fold. Pull mode starts each gather from this value.
    fn identity(&self) -> Self::Value;

    /// Contribution of source vertex `src` (currently holding `src_value`) along an
    /// edge with weight `weight`. Returning `None` means the source has nothing to
    /// offer yet (e.g. an unreached SSSP vertex) and the edge is skipped.
    fn edge_contribution(
        &self,
        src: VertexId,
        src_value: Self::Value,
        weight: EdgeWeight,
    ) -> Option<Self::Value>;

    /// Aggregate two contributions (the fold operator: `min`, `max`, `+`, ...).
    fn combine(&self, a: Self::Value, b: Self::Value) -> Self::Value;

    /// Merge the gathered contribution into the destination's current value and
    /// return the new value. For monotone min/max programs this is typically
    /// `min(old, gathered)`; for arithmetic programs it usually ignores `old` and
    /// returns `gathered`.
    fn apply(&self, dst: VertexId, old: Self::Value, gathered: Self::Value) -> Self::Value;

    /// Per-vertex post-processing applied after the edge phase of an iteration
    /// (the paper's `vertexUpdate`, e.g. PageRank's damping). Defaults to identity.
    fn vertex_update(&self, _v: VertexId, value: Self::Value, _degrees: &Degrees) -> Self::Value {
        value
    }

    /// Whether the transition `old -> new` counts as a change (drives activation,
    /// convergence detection and the update counters). `tolerance` comes from the
    /// engine configuration; min/max programs normally ignore it.
    fn changed(&self, old: Self::Value, new: Self::Value, _tolerance: f64) -> bool {
        old != new
    }

    /// Min/max programs only: whether an edge contribution is always *strictly
    /// worse* than the source value it was derived from (SSSP's `dist + w` with
    /// positive weights, BFS's `hops + 1`). When `true`, a cycle of vertices
    /// cannot mutually support each other's values — every genuine support
    /// chain strictly improves backwards and must terminate — so the warm-start
    /// invalidation pass ([`crate::SlfeEngine::run_from`]) may keep a vertex
    /// whose stored value is still *derivable* from its surviving in-edges.
    /// Programs whose contributions can preserve the value (Connected
    /// Components' label copy, WidestPath's `min(value, capacity)`) must leave
    /// this `false`: two stale vertices can each "derive" their dead value from
    /// the other, and the invalidation pass therefore cascades through every
    /// supported successor instead of pruning at derivable vertices.
    ///
    /// Only return `true` when the property holds for **every** edge the
    /// program will see (a zero-weight edge breaks it for SSSP).
    fn strictly_monotonic(&self) -> bool {
        false
    }

    /// The value a vertex re-enters the computation with when the engine
    /// warm-starts from a previous fixpoint ([`crate::SlfeEngine::run_from`]).
    ///
    /// `previous` is the vertex's value in the prior result, or `None` when the
    /// vertex was appended to the graph after that result was computed. The
    /// default keeps the previous value and initialises fresh vertices on the
    /// *mutated* graph, which is correct for every monotone min/max program and
    /// for arithmetic programs whose per-vertex state self-corrects under
    /// re-iteration (PageRank's stored share is re-divided by the current
    /// out-degree on the first `vertex_update`). Override when the stored value
    /// encodes stale topology that re-iteration cannot repair.
    fn warm_start_value(
        &self,
        v: VertexId,
        previous: Option<Self::Value>,
        degrees: &Degrees,
    ) -> Self::Value {
        previous.unwrap_or_else(|| self.initial_value(v, degrees))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy min-propagation program used to exercise the trait's default methods.
    struct MinLabel;

    impl GraphProgram for MinLabel {
        type Value = u32;

        fn aggregation(&self) -> AggregationKind {
            AggregationKind::MinMax
        }
        fn name(&self) -> &'static str {
            "min-label"
        }
        fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> u32 {
            v
        }
        fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
            true
        }
        fn identity(&self) -> u32 {
            u32::MAX
        }
        fn edge_contribution(&self, _src: VertexId, src_value: u32, _w: EdgeWeight) -> Option<u32> {
            Some(src_value)
        }
        fn combine(&self, a: u32, b: u32) -> u32 {
            a.min(b)
        }
        fn apply(&self, _dst: VertexId, old: u32, gathered: u32) -> u32 {
            old.min(gathered)
        }
    }

    #[test]
    fn default_vertex_update_is_identity() {
        let d = Degrees::of(&slfe_graph::generators::path(3));
        let p = MinLabel;
        assert_eq!(p.vertex_update(1, 42, &d), 42);
    }

    #[test]
    fn default_changed_is_inequality() {
        let p = MinLabel;
        assert!(p.changed(3, 2, 0.0));
        assert!(!p.changed(2, 2, 1.0));
    }

    #[test]
    fn aggregation_kinds_display() {
        assert_eq!(AggregationKind::MinMax.to_string(), "min/max");
        assert_eq!(AggregationKind::Arithmetic.to_string(), "arithmetic");
    }

    #[test]
    fn toy_program_hooks_behave_like_a_min_fold() {
        let p = MinLabel;
        let folded = [5u32, 3, 9]
            .into_iter()
            .fold(p.identity(), |acc, x| p.combine(acc, x));
        assert_eq!(folded, 3);
        assert_eq!(p.apply(0, 2, folded), 2);
        assert_eq!(p.apply(0, 7, folded), 3);
    }
}
