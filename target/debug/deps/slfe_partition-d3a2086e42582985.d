/root/repo/target/debug/deps/slfe_partition-d3a2086e42582985.d: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

/root/repo/target/debug/deps/slfe_partition-d3a2086e42582985: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

crates/partition/src/lib.rs:
crates/partition/src/chunking.rs:
crates/partition/src/hash.rs:
crates/partition/src/partitioning.rs:
crates/partition/src/quality.rs:
