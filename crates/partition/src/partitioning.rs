//! The result of partitioning: a vertex → node assignment with lookup helpers.

use slfe_graph::{Graph, VertexId};

/// Identifier of a logical cluster node (partition owner).
pub type NodeId = usize;

/// An assignment of every vertex to one of `num_parts` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    owner: Vec<NodeId>,
    parts: Vec<Vec<VertexId>>,
}

impl Partitioning {
    /// Build a partitioning from an explicit owner array.
    ///
    /// Panics if any owner id is `>= num_parts`.
    pub fn from_owners(owner: Vec<NodeId>, num_parts: usize) -> Self {
        assert!(num_parts >= 1, "need at least one partition");
        let mut parts = vec![Vec::new(); num_parts];
        for (v, &o) in owner.iter().enumerate() {
            assert!(
                o < num_parts,
                "owner {o} of vertex {v} out of range ({num_parts} parts)"
            );
            parts[o].push(v as VertexId);
        }
        Self { owner, parts }
    }

    /// Number of partitions (some may be empty).
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Number of vertices assigned.
    pub fn num_vertices(&self) -> usize {
        self.owner.len()
    }

    /// The node that owns vertex `v`.
    pub fn owner_of(&self, v: VertexId) -> NodeId {
        self.owner[v as usize]
    }

    /// The vertices owned by `node`, in ascending id order.
    pub fn vertices_of(&self, node: NodeId) -> &[VertexId] {
        &self.parts[node]
    }

    /// Whole owner array (indexed by vertex id).
    pub fn owners(&self) -> &[NodeId] {
        &self.owner
    }

    /// Number of vertices owned by each node.
    pub fn vertex_counts(&self) -> Vec<usize> {
        self.parts.iter().map(|p| p.len()).collect()
    }

    /// Grow the id space to `new_num_vertices`, assigning each appended vertex
    /// to the **least-loaded** node (fewest owned vertices, ties to the lowest
    /// node id) at the moment it is appended. The vertex-id space only ever
    /// grows across [`slfe_graph::Graph::apply_batch`], so a serving loop can
    /// keep one partitioning stable across graph versions — the prerequisite
    /// for patching the chunk layout instead of re-deriving it — by extending
    /// it per batch instead of re-partitioning. Appended ids exceed all
    /// existing ones, so each node's vertex list stays ascending regardless of
    /// which node receives it.
    ///
    /// Earlier revisions appended every grown vertex to one fixed node, so a
    /// sustained-growth workload skewed that node's load without bound; the
    /// least-loaded rule keeps the vertex-count imbalance within one vertex of
    /// where it started, batch after batch (pinned by test).
    ///
    /// Returns the distinct nodes that received at least one appended vertex,
    /// ascending — the set a serving loop must mark dirty when patching its
    /// chunk layout.
    pub fn extend_to(&mut self, new_num_vertices: usize) -> Vec<NodeId> {
        assert!(
            new_num_vertices >= self.owner.len(),
            "the id space only grows"
        );
        let mut counts: Vec<usize> = self.parts.iter().map(|p| p.len()).collect();
        let mut receivers = Vec::new();
        for v in self.owner.len()..new_num_vertices {
            let node = counts
                .iter()
                .enumerate()
                .min_by_key(|&(i, &c)| (c, i))
                .map(|(i, _)| i)
                .expect("at least one partition");
            counts[node] += 1;
            self.owner.push(node);
            self.parts[node].push(v as VertexId);
            if !receivers.contains(&node) {
                receivers.push(node);
            }
        }
        receivers.sort_unstable();
        receivers
    }

    /// Number of *outgoing* edges whose source is owned by each node — the measure
    /// Gemini-style chunking balances on.
    pub fn edge_counts(&self, graph: &Graph) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_parts()];
        for v in graph.vertices() {
            counts[self.owner_of(v)] += graph.out_degree(v);
        }
        counts
    }

    /// Number of edges crossing partition boundaries (src and dst owned by different
    /// nodes). Every such edge becomes an inter-node message in the push model.
    pub fn cut_edges(&self, graph: &Graph) -> usize {
        let mut cut = 0usize;
        for v in graph.vertices() {
            let o = self.owner_of(v);
            for &u in graph.out_neighbors(v) {
                if self.owner_of(u) != o {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Vertex-count imbalance: `max / mean` over the per-node vertex counts.
    /// `1.0` is perfectly balanced; `0.0` for an empty partitioning. This is
    /// the figure [`Partitioning::migrated_owners`] bounds and the serving
    /// layer surfaces as the `slfe_partition_imbalance` gauge.
    pub fn imbalance(&self) -> f64 {
        let n = self.owner.len();
        if n == 0 {
            return 0.0;
        }
        let max = self.parts.iter().map(|p| p.len()).max().unwrap_or(0);
        let mean = n as f64 / self.parts.len() as f64;
        max as f64 / mean
    }

    /// Plan a migration that brings [`Partitioning::imbalance`] down to
    /// `threshold` (max/mean), by repeatedly moving the **highest-id** vertex
    /// of the most-loaded node to the least-loaded node (ties to the lowest
    /// node id). Returns the migrated owner array, or `None` when the
    /// partitioning is already within the threshold (or a move can no longer
    /// help: max−min spread ≤ 1 is as balanced as integer counts get).
    ///
    /// The highest-id-first rule keeps migration deterministic and biases
    /// moves toward recently appended vertices — the ones `extend_to`'s
    /// least-loaded rule would have spread out had they arrived after the
    /// skew, and the ones with the least locality investment to lose.
    pub fn migrated_owners(&self, threshold: f64) -> Option<Vec<NodeId>> {
        assert!(threshold >= 1.0, "imbalance threshold is a max/mean ratio");
        if self.parts.len() < 2 || self.imbalance() <= threshold {
            return None;
        }
        let mut owner = self.owner.clone();
        let mut parts = self.parts.clone();
        let mean = owner.len() as f64 / parts.len() as f64;
        let mut moved = false;
        loop {
            let (src, max) = parts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.len()))
                .max_by_key(|&(i, c)| (c, usize::MAX - i))
                .expect("at least two partitions");
            let (dst, min) = parts
                .iter()
                .enumerate()
                .map(|(i, p)| (i, p.len()))
                .min_by_key(|&(i, c)| (c, i))
                .expect("at least two partitions");
            if max as f64 / mean <= threshold || max - min <= 1 {
                break;
            }
            let v = parts[src].pop().expect("most-loaded node is non-empty");
            owner[v as usize] = dst;
            // Insert keeping the destination list ascending (migrated ids are
            // not necessarily larger than the destination's existing ids).
            let at = parts[dst].partition_point(|&u| u < v);
            parts[dst].insert(at, v);
            moved = true;
        }
        moved.then_some(owner)
    }

    /// Check that every vertex of `graph` is assigned to exactly one existing part.
    pub fn validate(&self, graph: &Graph) -> Result<(), String> {
        if self.owner.len() != graph.num_vertices() {
            return Err(format!(
                "owner array covers {} vertices but graph has {}",
                self.owner.len(),
                graph.num_vertices()
            ));
        }
        let total: usize = self.parts.iter().map(|p| p.len()).sum();
        if total != graph.num_vertices() {
            return Err(format!(
                "parts hold {total} vertices but graph has {}",
                graph.num_vertices()
            ));
        }
        for (node, part) in self.parts.iter().enumerate() {
            for &v in part {
                if self.owner[v as usize] != node {
                    return Err(format!(
                        "vertex {v} listed under node {node} but owned by {}",
                        self.owner[v as usize]
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;

    #[test]
    fn from_owners_builds_consistent_parts() {
        let p = Partitioning::from_owners(vec![0, 1, 0, 1, 2], 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.num_vertices(), 5);
        assert_eq!(p.vertices_of(0), &[0, 2]);
        assert_eq!(p.vertices_of(1), &[1, 3]);
        assert_eq!(p.vertices_of(2), &[4]);
        assert_eq!(p.owner_of(3), 1);
        assert_eq!(p.vertex_counts(), vec![2, 2, 1]);
    }

    #[test]
    fn extend_to_fills_the_least_loaded_node_and_stays_valid() {
        // Node 0 owns 3 vertices, node 1 owns 1: the first two appends level
        // node 1 up, the third (a tie) goes to the lowest node id.
        let mut p = Partitioning::from_owners(vec![0, 1, 0, 0], 2);
        let receivers = p.extend_to(7);
        assert_eq!(p.num_vertices(), 7);
        assert_eq!(receivers, vec![0, 1]);
        assert_eq!(p.vertices_of(1), &[1, 4, 5]);
        assert_eq!(p.vertices_of(0), &[0, 2, 3, 6]);
        assert!(p.vertices_of(1).windows(2).all(|w| w[0] < w[1]));
        let g = generators::path(7);
        p.validate(&g).unwrap();
        // Growth keeps alternating toward balance (ties to the lowest id).
        let receivers = p.extend_to(9);
        assert_eq!(receivers, vec![0, 1]);
        assert_eq!(p.vertex_counts(), vec![5, 4]);
        // Extending to the current size is a no-op.
        assert_eq!(p.extend_to(9), Vec::<NodeId>::new());
        assert_eq!(p.num_vertices(), 9);
    }

    /// The growth-skew regression the serving loop exposed: many consecutive
    /// append batches must keep node loads balanced instead of piling every
    /// grown vertex onto one node.
    #[test]
    fn sustained_growth_keeps_node_loads_balanced() {
        let nodes = 4;
        let mut p = Partitioning::from_owners(vec![0, 1, 2, 3, 0, 1], nodes);
        let initial_spread = {
            let c = p.vertex_counts();
            c.iter().max().unwrap() - c.iter().min().unwrap()
        };
        let mut n = p.num_vertices();
        for batch in 0..50 {
            n += 1 + (batch % 5); // varied batch sizes
            p.extend_to(n);
            let counts = p.vertex_counts();
            let spread = counts.iter().max().unwrap() - counts.iter().min().unwrap();
            assert!(
                spread <= initial_spread.max(1),
                "batch {batch}: node loads diverged to {counts:?}"
            );
        }
        assert_eq!(p.num_vertices(), n);
        for node in 0..nodes {
            assert!(p.vertices_of(node).windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    #[should_panic(expected = "only grows")]
    fn extend_to_rejects_shrinking() {
        let mut p = Partitioning::from_owners(vec![0, 0], 1);
        p.extend_to(1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_owner_panics() {
        Partitioning::from_owners(vec![0, 5], 2);
    }

    #[test]
    fn edge_counts_and_cut_edges() {
        // path 0->1->2->3 split in half: one cut edge (1->2).
        let g = generators::path(4);
        let p = Partitioning::from_owners(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_counts(&g), vec![2, 1]);
        assert_eq!(p.cut_edges(&g), 1);
        p.validate(&g).unwrap();
    }

    #[test]
    fn validate_detects_size_mismatch() {
        let g = generators::path(4);
        let p = Partitioning::from_owners(vec![0, 0, 1], 2);
        assert!(p.validate(&g).is_err());
    }

    #[test]
    fn single_part_owns_everything_with_no_cut() {
        let g = generators::rmat(64, 256, 0.57, 0.19, 0.19, 1);
        let p = Partitioning::from_owners(vec![0; 64], 1);
        assert_eq!(p.cut_edges(&g), 0);
        assert_eq!(p.edge_counts(&g)[0], g.num_edges());
    }

    #[test]
    fn empty_parts_are_allowed() {
        let p = Partitioning::from_owners(vec![0, 0], 4);
        assert_eq!(p.vertex_counts(), vec![2, 0, 0, 0]);
        assert!(p.vertices_of(3).is_empty());
    }
}
