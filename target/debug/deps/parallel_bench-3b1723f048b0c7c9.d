/root/repo/target/debug/deps/parallel_bench-3b1723f048b0c7c9.d: crates/bench/src/bin/parallel_bench.rs

/root/repo/target/debug/deps/parallel_bench-3b1723f048b0c7c9: crates/bench/src/bin/parallel_bench.rs

crates/bench/src/bin/parallel_bench.rs:
