/root/repo/target/debug/deps/slfe-53831aed2b4338d1.d: src/lib.rs

/root/repo/target/debug/deps/libslfe-53831aed2b4338d1.rmeta: src/lib.rs

src/lib.rs:
