/root/repo/target/debug/deps/slfe_apps-23371f4f0cbab274.d: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_apps-23371f4f0cbab274.rmeta: crates/apps/src/lib.rs crates/apps/src/bfs.rs crates/apps/src/cc.rs crates/apps/src/heat.rs crates/apps/src/numpaths.rs crates/apps/src/pagerank.rs crates/apps/src/registry.rs crates/apps/src/spmv.rs crates/apps/src/sssp.rs crates/apps/src/tunkrank.rs crates/apps/src/widestpath.rs Cargo.toml

crates/apps/src/lib.rs:
crates/apps/src/bfs.rs:
crates/apps/src/cc.rs:
crates/apps/src/heat.rs:
crates/apps/src/numpaths.rs:
crates/apps/src/pagerank.rs:
crates/apps/src/registry.rs:
crates/apps/src/spmv.rs:
crates/apps/src/sssp.rs:
crates/apps/src/tunkrank.rs:
crates/apps/src/widestpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
