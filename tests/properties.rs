//! Property-based tests over the core data structures and the Theorem-1 invariant
//! (redundancy reduction never changes an application's fixpoint).
//!
//! The properties are checked over many deterministic pseudo-random cases drawn
//! from the workspace's own SplitMix64 stream (no external property-testing
//! dependency is available offline), so failures reproduce exactly.

use slfe::graph::rng::SplitMix64;
use slfe::graph::Bitset;
use slfe::prelude::*;

const CASES: usize = 24;

/// A random weighted edge list over up to `max_v` vertices.
fn edge_list(rng: &mut SplitMix64, max_v: u32, max_e: usize) -> Vec<(u32, u32, f32)> {
    let count = rng.range_usize(0, max_e);
    (0..count)
        .map(|_| {
            (
                rng.range_u32(0, max_v),
                rng.range_u32(0, max_v),
                rng.range_f32(1.0, 10.0),
            )
        })
        .collect()
}

fn build(edges: &[(u32, u32, f32)], min_vertices: usize) -> slfe::graph::Graph {
    let mut b = GraphBuilder::new()
        .with_vertices(min_vertices)
        .drop_self_loops(true)
        .deduplicate(true);
    for &(s, d, w) in edges {
        b.add_edge(s, d, w);
    }
    b.build()
}

/// CSR/CSC consistency: the two adjacency views always describe the same edges.
#[test]
fn graph_csr_and_csc_stay_consistent() {
    let mut rng = SplitMix64::seed_from_u64(0xC5);
    for case in 0..CASES {
        let g = build(&edge_list(&mut rng, 64, 300), 1);
        assert!(g.validate().is_ok(), "case {case}");
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_sum, g.num_edges(), "case {case}");
        assert_eq!(in_sum, g.num_edges(), "case {case}");
    }
}

/// Every partitioner assigns every vertex exactly once, for any part count.
#[test]
fn partitioners_always_cover_the_graph() {
    let mut rng = SplitMix64::seed_from_u64(0xFA);
    for case in 0..CASES {
        let g = build(&edge_list(&mut rng, 96, 400), 4);
        let parts = rng.range_usize(1, 12);
        for partitioning in [
            ChunkingPartitioner::default().partition(&g, parts),
            slfe::partition::HashPartitioner::new().partition(&g, parts),
        ] {
            assert!(
                partitioning.validate(&g).is_ok(),
                "case {case} ({parts} parts)"
            );
            let total: usize = partitioning.vertex_counts().iter().sum();
            assert_eq!(total, g.num_vertices(), "case {case}");
        }
    }
}

/// The bitset frontier behaves exactly like the `Vec<bool>` it replaced, under a
/// random operation sequence (set / insert / remove / fill / clear / union) driven
/// by random graph degrees.
#[test]
fn bitset_matches_vec_bool_reference() {
    let mut rng = SplitMix64::seed_from_u64(0xB17);
    for case in 0..CASES {
        let len = rng.range_usize(1, 300);
        let mut bits = Bitset::new(len);
        let mut reference = vec![false; len];
        let mut other = Bitset::new(len);
        let mut other_reference = vec![false; len];
        for _ in 0..400 {
            let i = rng.range_usize(0, len);
            match rng.range_usize(0, 100) {
                0..=39 => {
                    let fresh = bits.insert(i);
                    assert_eq!(fresh, !reference[i], "case {case}: insert({i}) freshness");
                    reference[i] = true;
                }
                40..=59 => {
                    bits.set(i);
                    reference[i] = true;
                }
                60..=74 => {
                    bits.remove(i);
                    reference[i] = false;
                }
                75..=84 => {
                    other.set(i);
                    other_reference[i] = true;
                }
                85..=92 => {
                    bits.union_with(&other);
                    for (r, o) in reference.iter_mut().zip(&other_reference) {
                        *r |= o;
                    }
                }
                93..=96 => {
                    bits.fill();
                    reference.iter_mut().for_each(|r| *r = true);
                }
                _ => {
                    bits.clear();
                    reference.iter_mut().for_each(|r| *r = false);
                }
            }
            let i = rng.range_usize(0, len);
            assert_eq!(bits.get(i), reference[i], "case {case}: get({i})");
        }
        // Full-state agreement: membership, popcount, iteration order, emptiness.
        for (i, &expected) in reference.iter().enumerate() {
            assert_eq!(bits.get(i), expected, "case {case}: final get({i})");
        }
        let expected_count = reference.iter().filter(|&&b| b).count();
        assert_eq!(bits.count_ones(), expected_count, "case {case}: count_ones");
        assert_eq!(bits.any(), expected_count > 0, "case {case}: any");
        let expected_ones: Vec<usize> = (0..len).filter(|&i| reference[i]).collect();
        assert_eq!(
            bits.iter_ones().collect::<Vec<_>>(),
            expected_ones,
            "case {case}: iter_ones"
        );
    }
}

/// The RR guidance never exceeds the vertex count in level, never blocks
/// unreached vertices (their level stays 0), and its parallel generation is
/// indistinguishable from the sequential pass.
#[test]
fn rr_guidance_levels_are_bounded_and_parallel_matches() {
    let mut rng = SplitMix64::seed_from_u64(0x5E9);
    for case in 0..CASES {
        let g = build(&edge_list(&mut rng, 64, 250), 2);
        let rrg = slfe::core::RrGuidance::generate(&g);
        assert_eq!(rrg.num_vertices(), g.num_vertices());
        assert!(rrg.max_level() as usize <= g.num_vertices(), "case {case}");
        for v in g.vertices() {
            assert!(rrg.last_iter(v) <= rrg.max_level(), "case {case}");
        }
        assert!(rrg.generation_work() <= g.num_edges() as u64, "case {case}");
        let parallel = slfe::core::RrGuidance::generate_parallel(&g, 4);
        assert_eq!(
            rrg, parallel,
            "case {case}: parallel RRG must match sequential"
        );
    }
}

/// Theorem 1 (empirical): SSSP with redundancy reduction converges to the same
/// distances as the unoptimised engine and as Dijkstra.
#[test]
fn sssp_rr_matches_dijkstra_on_random_graphs() {
    let mut rng = SplitMix64::seed_from_u64(0xD1);
    for case in 0..CASES {
        let g = build(&edge_list(&mut rng, 48, 220), 48);
        let root = rng.range_u32(0, 48);
        let oracle = slfe::apps::sssp::reference(&g, root);
        for config in [EngineConfig::default(), EngineConfig::without_rr()] {
            let engine = SlfeEngine::build(&g, ClusterConfig::new(3, 2), config);
            let result = slfe::apps::sssp::run(&engine, root);
            for (v, (&a, &b)) in result.values.iter().zip(&oracle).enumerate() {
                assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3,
                    "case {case}, vertex {v} with rr={:?}: {a} vs {b}",
                    engine.config().redundancy
                );
            }
        }
    }
}

/// Connected components with RR equals union-find on arbitrary symmetrised graphs.
#[test]
fn cc_rr_matches_union_find_on_random_graphs() {
    let mut rng = SplitMix64::seed_from_u64(0xCC);
    for case in 0..CASES {
        let g = slfe::apps::cc::symmetrize(&build(&edge_list(&mut rng, 40, 150), 40));
        let oracle = slfe::apps::cc::reference(&g);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = slfe::apps::cc::run(&engine);
        assert_eq!(result.values, oracle, "case {case}");
    }
}

/// The mini-chunk scheduler conserves work, and the stealing (greedy) schedule
/// obeys the classic list-scheduling bound: makespan <= mean load + max chunk.
#[test]
fn work_stealing_conserves_work_and_bounds_the_makespan() {
    let mut rng = SplitMix64::seed_from_u64(0x57EA1);
    for case in 0..CASES {
        let len = rng.range_usize(1, 200);
        let costs: Vec<u64> = (0..len).map(|_| rng.range_usize(0, 1000) as u64).collect();
        let workers = rng.range_usize(1, 9);
        let scheduler = slfe::cluster::ChunkScheduler::new(workers, 1);
        let static_outcome = scheduler.simulate(
            costs.len(),
            slfe::cluster::SchedulingPolicy::StaticBlocks,
            |c| costs[c],
        );
        let stealing_outcome = scheduler.simulate(
            costs.len(),
            slfe::cluster::SchedulingPolicy::WorkStealing,
            |c| costs[c],
        );
        assert_eq!(
            static_outcome.total_work, stealing_outcome.total_work,
            "case {case}"
        );
        let total = stealing_outcome.total_work;
        let max_chunk = costs.iter().copied().max().unwrap_or(0);
        let bound = total / workers as u64 + max_chunk;
        assert!(
            stealing_outcome.makespan() <= bound,
            "case {case}: makespan {} exceeds list-scheduling bound {bound}",
            stealing_outcome.makespan()
        );
    }
}

/// The degree-aware chunk layout (PR 3) is pure bookkeeping: over arbitrary
/// random graphs and partitionings, the reordered/split chunks cover exactly
/// the same vertex set as the owned-vertex lists — every vertex exactly once,
/// every chunk non-empty and node-consistent, claim order descending by
/// estimated work.
#[test]
fn degree_aware_layout_covers_exactly_the_owned_vertex_set() {
    let mut rng = SplitMix64::seed_from_u64(0x1A40);
    for case in 0..CASES {
        let g = build(&edge_list(&mut rng, 128, 600), 8);
        let nodes = rng.range_usize(1, 7);
        let chunk_size = rng.range_usize(4, 64);
        let cluster_config = ClusterConfig::new(nodes, 2).with_chunk_size(chunk_size);
        let cluster = slfe::cluster::Cluster::build(&g, cluster_config);
        let layout = cluster.build_layout(&g);
        let mut covered = vec![0u32; g.num_vertices()];
        for chunk in layout.chunks() {
            assert!(!chunk.is_empty(), "case {case}: empty chunk");
            assert!(chunk.len() <= chunk_size, "case {case}: oversized chunk");
            let owned = cluster.vertices_of(chunk.node);
            for &v in &owned[chunk.start..chunk.end] {
                assert_eq!(cluster.owner_of(v), chunk.node, "case {case}");
                covered[v as usize] += 1;
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "case {case}: layout must cover every vertex exactly once"
        );
        for pair in layout.chunks().windows(2) {
            assert!(
                pair[0].estimate >= pair[1].estimate,
                "case {case}: chunks must be ordered descending by estimate"
            );
        }
    }
}

/// On a skewed R-MAT, the degree-aware layout's schedule (split hub chunks,
/// heavy chunks claimed first) has a makespan no worse than the unsorted
/// fixed-size mini-chunk schedule on the same work — the stealing tail is
/// drained first instead of started last.
#[test]
fn degree_aware_layout_makespan_beats_the_unsorted_schedule() {
    let g = slfe::graph::generators::rmat(20_000, 240_000, 0.65, 0.15, 0.15, 0xDE6);
    let estimate = |v: u32| 1 + g.in_degree(v) as u64 + g.out_degree(v) as u64;
    for (nodes, workers) in [(1usize, 4usize), (2, 4), (4, 2)] {
        let cluster = slfe::cluster::Cluster::build(&g, ClusterConfig::new(nodes, workers));
        let layout = cluster.build_layout(&g);
        let mut sorted_makespan = 0u64;
        let mut unsorted_makespan = 0u64;
        let mut sorted_total = 0u64;
        let mut unsorted_total = 0u64;
        for node in cluster.nodes() {
            // Degree-aware schedule: greedy least-loaded over the layout order.
            let sim = layout.simulate_node(
                node,
                workers,
                slfe::cluster::SchedulingPolicy::WorkStealing,
                |c| layout.chunks()[c].estimate,
            );
            sorted_makespan = sorted_makespan.max(sim.makespan());
            sorted_total += sim.total_work;
            // Unsorted baseline: fixed 256-vertex chunks in ascending vertex
            // order, same greedy assignment (PR 1's schedule).
            let owned = cluster.vertices_of(node);
            let scheduler = cluster.node_scheduler();
            let outcome = scheduler.simulate(
                owned.len(),
                slfe::cluster::SchedulingPolicy::WorkStealing,
                |chunk| {
                    scheduler
                        .chunk_range(chunk, owned.len())
                        .map(|i| estimate(owned[i]))
                        .sum()
                },
            );
            unsorted_makespan = unsorted_makespan.max(outcome.makespan());
            unsorted_total += outcome.total_work;
        }
        // Same work, tighter (or equal) makespan.
        assert_eq!(
            sorted_total, unsorted_total,
            "{nodes} nodes: work conserved"
        );
        assert!(
            sorted_makespan <= unsorted_makespan,
            "{nodes} nodes × {workers} workers: layout makespan {sorted_makespan} \
             must not exceed unsorted {unsorted_makespan}"
        );
    }
}

/// PageRank rank mass stays bounded and non-negative on arbitrary graphs.
#[test]
fn pagerank_ranks_are_non_negative_and_bounded() {
    let mut rng = SplitMix64::seed_from_u64(0x93);
    for case in 0..CASES {
        let g = build(&edge_list(&mut rng, 40, 200), 8);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = slfe::apps::pagerank::run(&engine);
        let ranks = slfe::apps::pagerank::ranks(&g, &result.values);
        let total: f32 = ranks.iter().sum();
        assert!(
            ranks.iter().all(|r| *r >= 0.0 && r.is_finite()),
            "case {case}"
        );
        // Sinks leak rank mass, so the total is at most ~1 (plus float slack).
        assert!(total <= 1.05, "case {case}: total rank {total}");
    }
}
