/root/repo/target/debug/examples/road_network-a0a56c9581b58633.d: examples/road_network.rs

/root/repo/target/debug/examples/road_network-a0a56c9581b58633: examples/road_network.rs

examples/road_network.rs:
