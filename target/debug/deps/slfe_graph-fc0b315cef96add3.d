/root/repo/target/debug/deps/slfe_graph-fc0b315cef96add3.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_graph-fc0b315cef96add3.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/types.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/rng.rs:
crates/graph/src/stats.rs:
crates/graph/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
