//! # slfe-partition
//!
//! Graph partitioning for the simulated distributed cluster.
//!
//! The paper (§3.1) partitions with "the fastest chunking partitioning technique
//! available", i.e. Gemini's contiguous chunking: each node owns a contiguous range
//! of vertex ids, with range boundaries chosen so that the per-node *edge* counts
//! are balanced (vertex counts alone would leave the node owning the hubs with most
//! of the work). A hash partitioner is provided as the comparison point used by the
//! PowerGraph/PowerLyra-style baselines, and [`quality`] exposes the imbalance and
//! edge-cut metrics reported in §4.5 / Figure 10(b).

pub mod chunking;
pub mod hash;
pub mod partitioning;
pub mod quality;
pub mod reorder;

pub use chunking::ChunkingPartitioner;
pub use hash::HashPartitioner;
pub use partitioning::Partitioning;
pub use quality::PartitionQuality;
pub use reorder::contiguous_degree_layout;

use slfe_graph::Graph;

/// A strategy that assigns every vertex of a graph to one of `num_parts` nodes.
pub trait Partitioner {
    /// Produce a [`Partitioning`] of `graph` into `num_parts` parts.
    ///
    /// Implementations must assign every vertex exactly once and must work for any
    /// `num_parts >= 1`, including `num_parts > graph.num_vertices()` (some parts
    /// are then empty).
    fn partition(&self, graph: &Graph, num_parts: usize) -> Partitioning;

    /// Human-readable strategy name used in reports.
    fn name(&self) -> &'static str;
}
