//! Incremental SSSP serving: keep shortest-path answers live while the road
//! network changes, without recomputing from scratch.
//!
//! The example drives the full `slfe-delta` loop — stage an [`UpdateBatch`],
//! apply it through the [`DeltaServer`] (graph patch → RR-guidance repair →
//! warm re-convergence), answer point/top-k queries — and cross-checks every
//! served answer against a from-scratch run, so it doubles as a smoke test.
//!
//! Run with: `cargo run --release --example incremental_sssp`

use slfe::apps::sssp::SsspProgram;
use slfe::delta::{DeltaServer, ServerConfig};
use slfe::prelude::*;

fn main() {
    // A mid-sized R-MAT proxy of a road/social network.
    let graph = slfe::graph::generators::rmat(30_000, 240_000, 0.57, 0.19, 0.19, 4242);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).expect("non-empty graph");
    println!(
        "graph: {} vertices, {} edges; serving SSSP from hub {root}",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Build the server: one cold run, then every batch is served warm.
    let config = ServerConfig {
        cluster: ClusterConfig::new(2, 2),
        engine: EngineConfig::default(),
        ..ServerConfig::default()
    };
    let mut server = DeltaServer::new(graph.clone(), move |_| SsspProgram { root }, config);
    let cold_work = server.result().stats.totals.work();
    println!("initial cold fixpoint: {} counted work units\n", cold_work);

    // Three serving rounds: a small mixed batch each (new roads, closures).
    let mut rng = slfe::graph::rng::SplitMix64::seed_from_u64(7);
    let mut current = graph;
    for round in 1..=3 {
        let mut batch = UpdateBatch::new();
        let n = current.num_vertices() as u32;
        for _ in 0..200 {
            let src = rng.range_u32(0, n);
            if rng.next_f64() < 0.8 {
                batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
            } else if let Some(&dst) = current.out_neighbors(src).first() {
                batch.delete(src, dst);
            }
        }

        let outcome = server.apply(&batch);
        println!(
            "round {round}: +{} -{} edges ({} dirty vertices) -> {} work in {} iterations, \
             guidance {} ({} vertices), {} batch messages, {:.1}ms",
            outcome.effect.edges_inserted,
            outcome.effect.edges_deleted,
            outcome.effect.dirty.len(),
            outcome.work,
            outcome.iterations,
            if outcome.guidance.regenerated {
                "regenerated"
            } else {
                "repaired"
            },
            outcome.guidance.affected_vertices,
            outcome.distribution_messages,
            outcome.wall_seconds * 1e3,
        );
        assert!(outcome.converged, "serving loop must re-converge");

        // Cross-check: the served fixpoint equals a from-scratch run.
        current = current.apply_batch(&batch).0;
        let oracle = SlfeEngine::build(&current, ClusterConfig::new(2, 2), EngineConfig::default())
            .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "served values diverge from a from-scratch run"
        );
        let full_work = oracle.stats.totals.work();
        println!(
            "         full recompute would cost {} work -> {:.1}x saved, answers identical",
            full_work,
            full_work as f64 / outcome.work.max(1) as f64
        );
    }

    // Queries between batches: a point lookup and the five nearest vertices.
    let probe = (server.graph().num_vertices() / 2) as VertexId;
    println!(
        "\npoint query: dist({root} -> {probe}) = {:?}",
        server.value(probe)
    );
    let nearest = server.top_k_by(5, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    println!("five nearest vertices:");
    for (v, d) in nearest {
        println!("  vertex {v:>6}  distance {d:.3}");
    }

    let stats = server.stats();
    println!(
        "\nserved {} batches: {} total work, {} batch messages, {} full recomputes, {} guidance regenerations",
        stats.batches_applied,
        stats.total_work,
        stats.total_distribution_messages,
        stats.full_recomputes,
        stats.guidance_regenerations
    );
    println!("OK: every served answer matched the from-scratch oracle");
}
