/root/repo/target/release/deps/experiments-d756c0e64103aa46.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-d756c0e64103aa46: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
