/root/repo/target/debug/deps/preprocessing-74b7685f256584d4.d: crates/bench/benches/preprocessing.rs Cargo.toml

/root/repo/target/debug/deps/libpreprocessing-74b7685f256584d4.rmeta: crates/bench/benches/preprocessing.rs Cargo.toml

crates/bench/benches/preprocessing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
