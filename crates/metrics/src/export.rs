//! Exporters: Chrome trace JSON, flame tables, and a Prometheus-style
//! metrics registry.

use std::fmt::Write as _;

use crate::json;
use crate::report::Table;
use crate::telemetry::SpanEvent;

/// Render spans as a Chrome `chrome://tracing` / Perfetto-loadable document:
/// one `ph: "X"` (complete) event per span, timestamps in microseconds,
/// workers mapped to `tid`s.
pub fn chrome_trace_json(spans: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\": [");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"name\": {}, \"cat\": {}, \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 0, \"tid\": {}}}",
            json::string(span.name),
            json::string(span.cat),
            json::float(span.start_ns as f64 / 1_000.0),
            json::float(span.dur_ns as f64 / 1_000.0),
            span.track
        );
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}");
    out
}

/// Aggregate spans by `(category, name)` into a plain-text flame table:
/// count, total milliseconds, mean microseconds, and share of the total,
/// sorted by total time descending.
pub fn flame_table(spans: &[SpanEvent]) -> Table {
    let mut rows: Vec<(&'static str, &'static str, u64, u64)> = Vec::new();
    for span in spans {
        if let Some(row) = rows
            .iter_mut()
            .find(|(cat, name, _, _)| *cat == span.cat && *name == span.name)
        {
            row.2 += 1;
            row.3 += span.dur_ns;
        } else {
            rows.push((span.cat, span.name, 1, span.dur_ns));
        }
    }
    rows.sort_by(|a, b| b.3.cmp(&a.3).then(a.1.cmp(b.1)).then(a.0.cmp(b.0)));
    let grand_total: u64 = rows.iter().map(|r| r.3).sum();
    let mut table = Table::new(
        "Flame table",
        &["span", "cat", "count", "total_ms", "mean_us", "share_%"],
    );
    for (cat, name, count, total_ns) in rows {
        let share = if grand_total > 0 {
            100.0 * total_ns as f64 / grand_total as f64
        } else {
            0.0
        };
        table.add_row(&[
            name.to_string(),
            cat.to_string(),
            count.to_string(),
            format!("{:.3}", total_ns as f64 / 1e6),
            format!("{:.1}", total_ns as f64 / 1e3 / count as f64),
            format!("{share:.1}"),
        ]);
    }
    table
}

/// Whether a metric is a monotonically increasing counter or a point-in-time
/// gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Point-in-time value.
    Gauge,
}

/// One named metric sample, optionally labelled.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, e.g. `"slfe_pool_busy_fraction"`.
    pub name: String,
    /// Label pairs, e.g. `[("worker", "0")]`.
    pub labels: Vec<(String, String)>,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// One-line help string for the exposition header.
    pub help: String,
    /// The sample value.
    pub value: f64,
}

/// A flat, on-demand snapshot of named counters and gauges, renderable in the
/// Prometheus text exposition format.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: Vec<Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an unlabelled counter.
    pub fn counter(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.push(name, &[], MetricKind::Counter, help, value)
    }

    /// Add an unlabelled gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) -> &mut Self {
        self.push(name, &[], MetricKind::Gauge, help, value)
    }

    /// Add a labelled counter.
    pub fn counter_with(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        value: f64,
    ) -> &mut Self {
        self.push(name, labels, MetricKind::Counter, help, value)
    }

    /// Add a labelled gauge.
    pub fn gauge_with(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        value: f64,
    ) -> &mut Self {
        self.push(name, labels, MetricKind::Gauge, help, value)
    }

    fn push(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        help: &str,
        value: f64,
    ) -> &mut Self {
        self.metrics.push(Metric {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            kind,
            help: help.to_string(),
            value,
        });
        self
    }

    /// All samples, in insertion order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// First sample with `name` (any labels).
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Sample with `name` and exactly the given labels.
    pub fn get_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Metric> {
        self.metrics.iter().find(|m| {
            m.name == name
                && m.labels.len() == labels.len()
                && m.labels
                    .iter()
                    .zip(labels.iter())
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        })
    }

    /// Render the Prometheus text exposition format: `# HELP` / `# TYPE`
    /// emitted once per metric name (first occurrence wins), label values
    /// escaped per the spec, non-finite values as `NaN`/`+Inf`/`-Inf`.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut described: Vec<&str> = Vec::new();
        for metric in &self.metrics {
            if !described.contains(&metric.name.as_str()) {
                described.push(&metric.name);
                let kind = match metric.kind {
                    MetricKind::Counter => "counter",
                    MetricKind::Gauge => "gauge",
                };
                let _ = writeln!(out, "# HELP {} {}", metric.name, metric.help);
                let _ = writeln!(out, "# TYPE {} {}", metric.name, kind);
            }
            out.push_str(&metric.name);
            if !metric.labels.is_empty() {
                out.push('{');
                for (i, (k, v)) in metric.labels.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let escaped = v.replace('\\', "\\\\").replace('"', "\\\"");
                    let _ = write!(out, "{k}=\"{escaped}\"");
                }
                out.push('}');
            }
            let value = if metric.value.is_nan() {
                "NaN".to_string()
            } else if metric.value == f64::INFINITY {
                "+Inf".to_string()
            } else if metric.value == f64::NEG_INFINITY {
                "-Inf".to_string()
            } else {
                format!("{}", metric.value)
            };
            let _ = writeln!(out, " {value}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};

    fn span(name: &'static str, cat: &'static str, track: u32, start: u64, dur: u64) -> SpanEvent {
        SpanEvent {
            name,
            cat,
            track,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let spans = vec![
            span("iteration", "pull", 0, 1_000, 2_000),
            span("execute", "pull", 1, 1_100, 800),
        ];
        let doc = chrome_trace_json(&spans);
        let v = parse(&doc).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("iteration"));
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(1.0));
        assert_eq!(events[0].get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(events[1].get("tid").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn empty_chrome_trace_still_parses() {
        let v = parse(&chrome_trace_json(&[])).unwrap();
        assert_eq!(v.get("traceEvents"), Some(&Json::Array(vec![])));
    }

    #[test]
    fn flame_table_aggregates_and_sorts_by_total() {
        let spans = vec![
            span("execute", "pull", 1, 0, 500),
            span("execute", "pull", 2, 0, 1_500),
            span("merge", "engine", 0, 0, 100),
        ];
        let text = flame_table(&spans).render();
        let execute_line = text.lines().position(|l| l.starts_with("execute")).unwrap();
        let merge_line = text.lines().position(|l| l.starts_with("merge")).unwrap();
        assert!(
            execute_line < merge_line,
            "larger total must sort first:\n{text}"
        );
        assert!(text.contains("2"), "execute count should be 2:\n{text}");
    }

    #[test]
    fn flame_table_of_no_spans_is_empty_but_renders() {
        let table = flame_table(&[]);
        assert_eq!(table.num_rows(), 0);
        assert!(table.render().contains("Flame table"));
    }

    #[test]
    fn registry_lookup_honours_labels() {
        let mut r = MetricsRegistry::new();
        r.gauge_with("busy", &[("worker", "0")], "busy fraction", 0.25)
            .gauge_with("busy", &[("worker", "1")], "busy fraction", 0.75);
        assert_eq!(r.get("busy").unwrap().value, 0.25);
        assert_eq!(r.get_with("busy", &[("worker", "1")]).unwrap().value, 0.75);
        assert!(r.get_with("busy", &[("worker", "9")]).is_none());
        assert!(r.get("missing").is_none());
    }

    #[test]
    fn prometheus_text_emits_help_and_type_once_per_name() {
        let mut r = MetricsRegistry::new();
        r.counter("slfe_wal_fsyncs_total", "WAL fsync calls", 7.0);
        r.gauge_with("slfe_pool_busy_fraction", &[("worker", "0")], "busy", 0.5);
        r.gauge_with("slfe_pool_busy_fraction", &[("worker", "1")], "busy", 0.25);
        let text = r.prometheus_text();
        assert_eq!(
            text.matches("# TYPE slfe_pool_busy_fraction gauge").count(),
            1
        );
        assert!(text.contains("# HELP slfe_wal_fsyncs_total WAL fsync calls"));
        assert!(text.contains("# TYPE slfe_wal_fsyncs_total counter"));
        assert!(text.contains("slfe_wal_fsyncs_total 7"));
        assert!(text.contains("slfe_pool_busy_fraction{worker=\"0\"} 0.5"));
        assert!(text.contains("slfe_pool_busy_fraction{worker=\"1\"} 0.25"));
    }

    #[test]
    fn prometheus_text_guards_non_finite_and_escapes_labels() {
        let mut r = MetricsRegistry::new();
        r.gauge("g_nan", "a nan", f64::NAN);
        r.gauge("g_inf", "an inf", f64::INFINITY);
        r.gauge_with("g_lab", &[("path", "a\"b\\c")], "odd label", 1.0);
        let text = r.prometheus_text();
        assert!(text.contains("g_nan NaN"));
        assert!(text.contains("g_inf +Inf"));
        assert!(text.contains("g_lab{path=\"a\\\"b\\\\c\"} 1"));
    }
}
