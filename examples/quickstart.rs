//! Quickstart: build a graph, build the SLFE engine, run SSSP and PageRank, and
//! print what redundancy reduction saved.
//!
//! Run with: `cargo run --release --example quickstart`

use slfe::prelude::*;

fn main() {
    // A laptop-scale proxy of the paper's pokec graph (Table 4), generated with the
    // same skew characteristics.
    let graph = slfe::graph::datasets::Dataset::Pokec.load_scaled(8_000);
    println!(
        "graph: {} vertices, {} edges (avg degree {:.1})",
        graph.num_vertices(),
        graph.num_edges(),
        graph.average_degree()
    );

    // An 8-node simulated cluster with 4 workers per node, as in the paper's setup.
    let cluster = ClusterConfig::new(8, 4);

    // Build the engine: this partitions the graph (chunking) and generates the
    // redundancy-reduction guidance (Algorithm 1).
    let engine = SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default());
    println!(
        "RR guidance: max propagation level = {}, generation work = {} edges",
        engine.guidance().max_level(),
        engine.guidance().generation_work()
    );

    // SSSP with redundancy reduction ("start late").
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).expect("non-empty graph");
    let with_rr = sssp::run(&engine, root);

    // The same run without redundancy reduction (the Gemini-style baseline).
    let baseline_engine = SlfeEngine::build(&graph, cluster, EngineConfig::without_rr());
    let without_rr = sssp::run(&baseline_engine, root);

    println!("\n== SSSP from vertex {root} ==");
    println!(
        "  with RR:    {:>10} edge computations, {:>8} updates, {} iterations",
        with_rr.stats.totals.edge_computations,
        with_rr.stats.totals.vertex_updates,
        with_rr.iterations()
    );
    println!(
        "  without RR: {:>10} edge computations, {:>8} updates, {} iterations",
        without_rr.stats.totals.edge_computations,
        without_rr.stats.totals.vertex_updates,
        without_rr.iterations()
    );
    println!(
        "  updates/vertex: {:.2} (RR) vs {:.2} (no RR)  [Table 2 metric]",
        with_rr.stats.updates_per_vertex(),
        without_rr.stats.updates_per_vertex()
    );

    // Correctness: both runs agree with Dijkstra.
    let oracle = sssp::reference(&graph, root);
    let agree = with_rr
        .values
        .iter()
        .zip(&oracle)
        .all(|(a, b)| (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3);
    println!("  matches Dijkstra: {agree}");

    // PageRank with "finish early".
    let pr = pagerank::run(&engine);
    println!("\n== PageRank ==");
    println!(
        "  converged in {} iterations; {:.1}% of vertices were early-converged (Figure 2 metric)",
        pr.iterations(),
        pr.early_converged_fraction(0.9) * 100.0
    );
    println!(
        "  total work: {} counted units, {} inter-node messages",
        pr.stats.totals.work(),
        pr.stats.totals.messages_sent
    );
}
