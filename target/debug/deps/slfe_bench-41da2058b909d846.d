/root/repo/target/debug/deps/slfe_bench-41da2058b909d846.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_bench-41da2058b909d846.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
