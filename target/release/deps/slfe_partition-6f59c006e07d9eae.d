/root/repo/target/release/deps/slfe_partition-6f59c006e07d9eae.d: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

/root/repo/target/release/deps/libslfe_partition-6f59c006e07d9eae.rlib: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

/root/repo/target/release/deps/libslfe_partition-6f59c006e07d9eae.rmeta: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

crates/partition/src/lib.rs:
crates/partition/src/chunking.rs:
crates/partition/src/hash.rs:
crates/partition/src/partitioning.rs:
crates/partition/src/quality.rs:
