//! Gemini-style contiguous chunking partitioner.
//!
//! Each node receives a contiguous range of vertex ids. Range boundaries are chosen
//! greedily so that every node owns approximately the same amount of *work*, where a
//! vertex's work is `alpha + out_degree(v)`: the constant `alpha` accounts for the
//! per-vertex cost (property update, bookkeeping) and the degree term for the
//! per-edge cost, exactly the hybrid metric Gemini's chunking uses. Contiguity keeps
//! the per-node memory footprint a dense slice, which is what lets SLFE's mini-chunk
//! work stealing (paper §3.6) iterate each chunk with a plain `for` loop.

use crate::partitioning::Partitioning;
use crate::Partitioner;
use slfe_graph::Graph;

/// Contiguous, degree-balanced chunking (the paper's / Gemini's default).
#[derive(Debug, Clone)]
pub struct ChunkingPartitioner {
    /// Per-vertex constant work term added to the out-degree when balancing.
    pub alpha: f64,
}

impl Default for ChunkingPartitioner {
    fn default() -> Self {
        // Gemini uses alpha = 8 * (number of sockets); with a simulated single-socket
        // node per partition the constant folds to a small per-vertex weight.
        Self { alpha: 8.0 }
    }
}

impl ChunkingPartitioner {
    /// Create a chunking partitioner with an explicit per-vertex work constant.
    pub fn with_alpha(alpha: f64) -> Self {
        Self { alpha }
    }
}

impl Partitioner for ChunkingPartitioner {
    fn partition(&self, graph: &Graph, num_parts: usize) -> Partitioning {
        assert!(num_parts >= 1, "need at least one partition");
        let n = graph.num_vertices();
        let total_work: f64 = graph
            .vertices()
            .map(|v| self.alpha + graph.out_degree(v) as f64)
            .sum();
        let target = if num_parts == 0 {
            total_work
        } else {
            total_work / num_parts as f64
        };

        let mut owner = vec![0usize; n];
        let mut node = 0usize;
        let mut acc = 0.0f64;
        for v in graph.vertices() {
            let w = self.alpha + graph.out_degree(v) as f64;
            // Close the current chunk when it has reached its share and there are
            // still nodes left to fill.
            if acc >= target && node + 1 < num_parts {
                node += 1;
                acc = 0.0;
            }
            owner[v as usize] = node;
            acc += w;
        }
        Partitioning::from_owners(owner, num_parts)
    }

    fn name(&self) -> &'static str {
        "chunking"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::PartitionQuality;
    use slfe_graph::{datasets::Dataset, generators};

    #[test]
    fn assigns_contiguous_ranges() {
        let g = generators::path(100);
        let p = ChunkingPartitioner::default().partition(&g, 4);
        p.validate(&g).unwrap();
        // Contiguity: owners are non-decreasing in vertex id.
        let owners = p.owners();
        for w in owners.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(p.num_parts(), 4);
    }

    #[test]
    fn single_partition_owns_all() {
        let g = generators::cycle(10);
        let p = ChunkingPartitioner::default().partition(&g, 1);
        assert!(p.owners().iter().all(|&o| o == 0));
    }

    #[test]
    fn more_parts_than_vertices_leaves_empty_parts() {
        let g = generators::path(3);
        let p = ChunkingPartitioner::default().partition(&g, 8);
        p.validate(&g).unwrap();
        assert_eq!(p.vertex_counts().iter().sum::<usize>(), 3);
    }

    #[test]
    fn balances_edges_on_skewed_graphs() {
        let g = Dataset::Pokec.load_scaled(16_000);
        let p = ChunkingPartitioner::default().partition(&g, 8);
        let q = PartitionQuality::measure(&g, &p);
        // Edge imbalance (max/mean) should be modest even though the degree
        // distribution is heavily skewed; pure vertex splitting would be far worse.
        assert!(
            q.edge_imbalance < 1.6,
            "edge imbalance too high: {}",
            q.edge_imbalance
        );
    }

    #[test]
    fn alpha_zero_balances_pure_edge_counts() {
        let g = generators::star(1000);
        // All edges leave vertex 0; with alpha = 0 the first chunk is just the hub.
        let p = ChunkingPartitioner::with_alpha(0.0).partition(&g, 2);
        assert_eq!(p.vertices_of(0), &[0]);
        assert_eq!(p.vertices_of(1).len(), 1000);
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let p = ChunkingPartitioner::default().partition(&g, 4);
        assert_eq!(p.num_vertices(), 0);
        assert_eq!(p.num_parts(), 4);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ChunkingPartitioner::default().name(), "chunking");
    }
}
