//! Physical-layout locality benchmark: does the degree-descending id remap
//! actually buy cache locality in the out-of-core buffer pool, and does
//! migration bound partition imbalance growth alone cannot fix?
//!
//! ```text
//! locality_bench [--vertices N] [--degree D] [--budget BYTES] [--segment BYTES]
//!                [--growth-batches K] [--threshold R] [--out FILE]
//! ```
//!
//! Two measured sections, both asserted before `BENCH_locality.json` is
//! written:
//!
//! * **Locality** — SSSP, BFS and PageRank on a skewed R-MAT graph whose
//!   segment footprint exceeds a tight clock-pool budget, once on the
//!   identity layout and once physically reordered degree-descending
//!   (hubs packed into the hot front segments). Values are asserted
//!   **bit-identical** in external-id order per app, then the degree-ordered
//!   layout must fault strictly fewer segments in total than identity.
//!   Runs at 1 worker so the fault counters are schedule-free and
//!   machine-independent.
//! * **Migration** — a growth run on a 4-node [`DeltaServer`] whose seed
//!   partitioning is vertex-skewed: `extend_to`'s least-loaded appends alone
//!   must leave the reference above the imbalance threshold after every
//!   batch, while the migration policy (`remap_now` each batch) bounds the
//!   policy server at or under it — with every served value bit-identical
//!   to the policy-free reference throughout.

use slfe_apps::{bfs::BfsProgram, pagerank::PageRankProgram, sssp::SsspProgram};
use slfe_bench::json;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe_delta::{DeltaServer, ServerConfig};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, stats, Graph, PoolCounters, ReorderPolicy, UpdateBatch, VertexId};
use slfe_partition::{contiguous_degree_layout, Partitioning};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    degree: usize,
    budget: u64,
    segment: usize,
    growth_batches: usize,
    threshold: f64,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 3_000,
            degree: 8,
            budget: 32 << 10,
            segment: 4 << 10,
            growth_batches: 50,
            threshold: 1.10,
            out: PathBuf::from("BENCH_locality.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--budget" => {
                options.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("invalid --budget: {e}"))?
            }
            "--segment" => {
                options.segment = value("--segment")?
                    .parse()
                    .map_err(|e| format!("invalid --segment: {e}"))?
            }
            "--growth-batches" => {
                options.growth_batches = value("--growth-batches")?
                    .parse()
                    .map_err(|e| format!("invalid --growth-batches: {e}"))?
            }
            "--threshold" => {
                options.threshold = value("--threshold")?
                    .parse()
                    .map_err(|e| format!("invalid --threshold: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: locality_bench [--vertices N] [--degree D] [--budget BYTES] [--segment BYTES] [--growth-batches K] [--threshold R] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// One (app, layout) locality point.
struct Point {
    app: &'static str,
    layout: &'static str,
    counters: PoolCounters,
    pool_peak_resident_bytes: u64,
    iterations: u32,
}

/// Run `program` out-of-core on `graph` at 1 worker and return the pool
/// counters plus the values in **external-id** order.
fn run_oocore<P: GraphProgram<Value = f32>>(
    app: &'static str,
    layout: &'static str,
    graph: &Graph,
    options: &Options,
    program: &P,
) -> (Point, Vec<u32>) {
    let engine = SlfeEngine::build(
        graph,
        ClusterConfig::new(2, 1),
        EngineConfig::default()
            .with_trace(false)
            .with_storage_budget(options.budget)
            .with_storage_segment_bytes(options.segment),
    );
    let result = engine.run(program);
    let storage = engine.storage().expect("out-of-core engine");
    let point = Point {
        app,
        layout,
        counters: storage.pool().counters(),
        pool_peak_resident_bytes: storage.pool().peak_resident_bytes(),
        iterations: result.stats.iterations,
    };
    let external_bits = (0..result.values.len() as VertexId)
        .map(|ext| result.values[graph.to_physical(ext) as usize].to_bits())
        .collect();
    (point, external_bits)
}

/// Measure one app on the identity and degree-ordered layouts, asserting
/// external-order bit-identity between the two.
#[allow(clippy::too_many_arguments)]
fn run_pair<PA, PB>(
    app: &'static str,
    graph: &Graph,
    ordered: &Graph,
    options: &Options,
    identity_program: &PA,
    ordered_program: &PB,
    points: &mut Vec<Point>,
) where
    PA: GraphProgram<Value = f32>,
    PB: GraphProgram<Value = f32>,
{
    let (identity_point, identity_bits) =
        run_oocore(app, "identity", graph, options, identity_program);
    let (ordered_point, ordered_bits) =
        run_oocore(app, "degree_descending", ordered, options, ordered_program);
    assert_eq!(
        identity_bits, ordered_bits,
        "{app}: remapped values diverge from identity — the remap is not value-transparent"
    );
    eprintln!(
        "  {app}: identity {} faults / {} KiB vs degree-ordered {} faults / {} KiB (hit rate {:.3} -> {:.3})",
        identity_point.counters.segments_faulted,
        identity_point.counters.segment_bytes_read >> 10,
        ordered_point.counters.segments_faulted,
        ordered_point.counters.segment_bytes_read >> 10,
        identity_point.counters.hit_rate().unwrap_or(0.0),
        ordered_point.counters.hit_rate().unwrap_or(0.0),
    );
    points.push(identity_point);
    points.push(ordered_point);
}

/// Mixed random batch in external ids (no growth).
fn mixed_batch(n: u32, seed: u64, ops: usize) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let src = rng.range_u32(0, n);
        if rng.next_f64() < 0.75 {
            batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
        } else {
            batch.delete(src, rng.range_u32(0, n));
        }
    }
    batch
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();

    // ---- Section 1: buffer-pool locality, identity vs degree-descending ----
    let graph = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        10_2026,
    );
    let root = stats::highest_out_degree_vertex(&graph).unwrap_or(0);
    // A single global partition: the pure degree sort, no migration in play.
    let whole = Partitioning::from_owners(vec![0; graph.num_vertices()], 1);
    let step = contiguous_degree_layout(&graph, &whole, ReorderPolicy::DegreeDescending);
    assert!(!step.is_identity(), "degree sort must move something");
    let ordered = graph.remapped(&step);

    // The probe asserts the footprint actually exceeds the pool budget.
    let footprint = {
        let probe = SlfeEngine::build(
            &graph,
            ClusterConfig::new(2, 1),
            EngineConfig::default()
                .with_trace(false)
                .with_storage_budget(options.budget)
                .with_storage_segment_bytes(options.segment),
        );
        probe.storage().expect("probe engine").footprint_bytes()
    };
    assert!(
        footprint > options.budget,
        "segment footprint {footprint} B must exceed the pool budget {} B — lower --budget or raise --vertices",
        options.budget
    );
    eprintln!(
        "rmat: {} vertices, {} edges, footprint {} KiB vs budget {} KiB",
        graph.num_vertices(),
        graph.num_edges(),
        footprint >> 10,
        options.budget >> 10
    );

    let mut points: Vec<Point> = Vec::new();
    run_pair(
        "sssp",
        &graph,
        &ordered,
        &options,
        &SsspProgram { root },
        &SsspProgram {
            root: ordered.to_physical(root),
        },
        &mut points,
    );
    run_pair(
        "bfs",
        &graph,
        &ordered,
        &options,
        &BfsProgram { root },
        &BfsProgram {
            root: ordered.to_physical(root),
        },
        &mut points,
    );
    run_pair(
        "pagerank",
        &graph,
        &ordered,
        &options,
        &PageRankProgram::for_graph(&graph),
        &PageRankProgram::for_graph(&ordered),
        &mut points,
    );

    let faults_of = |layout: &str| -> u64 {
        points
            .iter()
            .filter(|p| p.layout == layout)
            .map(|p| p.counters.segments_faulted)
            .sum()
    };
    let identity_faults = faults_of("identity");
    let ordered_faults = faults_of("degree_descending");
    assert!(
        ordered_faults < identity_faults,
        "degree-descending layout must fault fewer segments than identity (got {ordered_faults} vs {identity_faults})"
    );

    // ---- Section 2: migration bounds imbalance growth alone cannot fix ----
    let seed_graph = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        10_2027,
    );
    let mig_root = stats::highest_out_degree_vertex(&seed_graph).unwrap_or(0);
    let make = move |g: &Graph| SsspProgram {
        root: g.to_physical(mig_root),
    };
    let cluster = ClusterConfig::new(4, 1);
    let policy_config = ServerConfig {
        cluster: cluster.clone(),
        engine: EngineConfig::default()
            .with_trace(false)
            .with_migration_imbalance_threshold(options.threshold),
        ..ServerConfig::default()
    };
    let reference_config = ServerConfig {
        cluster,
        engine: EngineConfig::default().with_trace(false),
        ..ServerConfig::default()
    };
    let mut migrated = DeltaServer::new(seed_graph.clone(), make, policy_config);
    let mut reference = DeltaServer::new(seed_graph, make, reference_config);
    let seed_imbalance = reference.partitioning().imbalance();
    assert!(
        seed_imbalance > options.threshold,
        "seed partitioning must start vertex-skewed above the threshold (got {seed_imbalance:.4} vs {}) — raise --vertices or lower --threshold",
        options.threshold
    );
    let mut n = migrated.graph().num_vertices() as u32;
    let mut reference_min_imbalance = f64::INFINITY;
    let mut migrated_max_imbalance: f64 = 0.0;
    for round in 0..options.growth_batches as u64 {
        // Growth-heavy: two appended vertices per batch plus a few edits.
        let mut batch = mixed_batch(n, round + 20_000, 4);
        batch.insert(mig_root, n, 2.0).insert(n, n + 1, 3.0);
        migrated.apply(&batch);
        let expected = reference.apply(&batch);
        migrated
            .remap_now()
            .expect("in-memory remap cannot fail on I/O");
        assert_eq!(
            migrated
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            reference
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            "round {round}: migration/remap perturbed served values"
        );
        n = migrated.graph().num_vertices() as u32;
        reference_min_imbalance = reference_min_imbalance.min(expected.partition_imbalance);
        migrated_max_imbalance = migrated_max_imbalance.max(migrated.partitioning().imbalance());
    }
    let reference_final = reference.partitioning().imbalance();
    let migrated_final = migrated.partitioning().imbalance();
    assert!(
        reference_min_imbalance > options.threshold,
        "least-loaded appends alone rebalanced the reference (min {reference_min_imbalance:.4}) — the run no longer exercises migration"
    );
    assert!(
        migrated_final <= options.threshold,
        "migration left final imbalance at {migrated_final:.4} > threshold {}",
        options.threshold
    );
    eprintln!(
        "migration: seed imbalance {seed_imbalance:.4}, after {} growth batches reference {reference_final:.4} vs migrated {migrated_final:.4} (threshold {})",
        options.growth_batches, options.threshold
    );

    // ---- Emit ----
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("locality points run at 1 worker so pool counters are schedule-free and machine-independent; external-id values are asserted bit-identical across layouts, total degree-ordered faults < identity faults, the migration reference stays above the threshold every batch while the migrated server ends at or under it, and every migrated value is bit-identical to the reference, before this file is written")
    );
    let _ = writeln!(
        out,
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}}},",
        graph.num_vertices(),
        graph.num_edges()
    );
    let _ = writeln!(
        out,
        "  \"storage\": {{\"pool_budget_bytes\": {}, \"segment_bytes\": {}, \"segment_footprint_bytes\": {footprint}}},",
        options.budget, options.segment
    );
    out.push_str("  \"locality\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"app\": {}, \"layout\": {}, \"segments_faulted\": {}, \"segment_bytes_read\": {}, \"segment_hits\": {}, \"hit_rate\": {}, \"pool_peak_resident_bytes\": {}, \"iterations\": {}, \"values_bit_identical\": true}}",
            json::string(p.app),
            json::string(p.layout),
            p.counters.segments_faulted,
            p.counters.segment_bytes_read,
            p.counters.segment_hits,
            json::float_fixed(p.counters.hit_rate().unwrap_or(0.0), 4),
            p.pool_peak_resident_bytes,
            p.iterations
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"locality_totals\": {{\"identity_segments_faulted\": {identity_faults}, \"degree_ordered_segments_faulted\": {ordered_faults}, \"fault_reduction\": {}}},",
        json::float_fixed(1.0 - ordered_faults as f64 / identity_faults as f64, 4)
    );
    let _ = writeln!(
        out,
        "  \"migration\": {{\"nodes\": 4, \"threshold\": {}, \"growth_batches\": {}, \"seed_imbalance\": {}, \"reference_min_imbalance\": {}, \"reference_final_imbalance\": {}, \"migrated_max_imbalance\": {}, \"migrated_final_imbalance\": {}, \"values_bit_identical\": true}}",
        json::float_fixed(options.threshold, 4),
        options.growth_batches,
        json::float_fixed(seed_imbalance, 4),
        json::float_fixed(reference_min_imbalance, 4),
        json::float_fixed(reference_final, 4),
        json::float_fixed(migrated_max_imbalance, 4),
        json::float_fixed(migrated_final, 4)
    );
    out.push_str("}\n");

    if let Err(e) = std::fs::write(&options.out, &out) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{out}");
    eprintln!("wrote {}", options.out.display());
}
