//! Criterion micro-benchmarks backing Table 5 / Figure 5: wall-clock cost of one
//! full application run per engine on the pokec proxy.
//!
//! The `experiments` binary reproduces the actual tables (it reports the simulated,
//! machine-independent metrics); these benches measure the real wall-clock cost of
//! the engines in this repository so regressions in the implementations themselves
//! are caught.

use criterion::{criterion_group, criterion_main, Criterion};
use slfe_bench::{runner, EngineKind};
use slfe_apps::AppKind;
use slfe_cluster::ClusterConfig;
use slfe_graph::datasets::Dataset;

fn bench_engines(c: &mut Criterion) {
    let graph = Dataset::Pokec.load_scaled(16_000);
    let cc_graph = runner::prepare_graph(AppKind::ConnectedComponents, &graph);
    let cluster = ClusterConfig::new(8, 4);

    let mut group = c.benchmark_group("table5_sssp_pokec");
    group.sample_size(10);
    for engine in [EngineKind::Slfe, EngineKind::Gemini, EngineKind::PowerLyra, EngineKind::PowerGraph] {
        group.bench_function(engine.name(), |b| {
            b.iter(|| runner::run_app(engine, AppKind::Sssp, &graph, cluster.clone()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig5_pagerank_pokec");
    group.sample_size(10);
    for engine in [EngineKind::Slfe, EngineKind::SlfeNoRr, EngineKind::Gemini] {
        group.bench_function(engine.name(), |b| {
            b.iter(|| runner::run_app(engine, AppKind::PageRank, &graph, cluster.clone()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("table5_cc_pokec");
    group.sample_size(10);
    for engine in [EngineKind::Slfe, EngineKind::Gemini, EngineKind::PowerLyra] {
        group.bench_function(engine.name(), |b| {
            b.iter(|| runner::run_app(engine, AppKind::ConnectedComponents, &cc_graph, cluster.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
