//! Telemetry overhead and latency benchmark: the observability layer must be
//! free when off and near-free when on.
//!
//! ```text
//! telemetry_bench [--vertices N] [--degree D] [--batches K] [--runs K] [--out FILE]
//! ```
//!
//! Emits `BENCH_observability.json` (with `git_commit` and `hardware_threads`
//! recorded) from three sweeps:
//!
//! 1. **Overhead**: every registered application at 1 and 4 workers per node,
//!    telemetry off vs on. Values are asserted bit-identical and the work
//!    counters equal, so the counted-work overhead ratio is exactly 1.0 —
//!    asserted `< 1.05` before the file is written. Wall-clock ratios are
//!    reported informationally (they depend on `hardware_threads` and load).
//! 2. **Serving latency**: a durable, out-of-core, telemetry-on
//!    [`DeltaServer`] applies seeded batches; the WAL-fsync, segment-fault,
//!    batch-apply and iteration-wall histograms are dumped as percentile
//!    tables and asserted non-empty.
//! 3. **Pool activity**: per-worker busy/idle fractions, the coordinator's
//!    barrier-wait fraction and average concurrency at 1 and 4 pool workers.
//!
//! Every emitted JSON document — the Chrome trace, the Prometheus text's
//! shape, and this file itself — is validated before anything is written.

use slfe_apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath};
use slfe_bench::json;
use slfe_bench::timing::time_best_of;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe_delta::{DeltaServer, DurabilityConfig, ServerConfig};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, Graph, UpdateBatch};
use slfe_metrics::{
    Counters, LatencyHistogram, HIST_BATCH_APPLY, HIST_ITERATION_WALL, HIST_SEGMENT_FAULT,
    HIST_WAL_FSYNC,
};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    degree: usize,
    batches: usize,
    runs: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 4_000,
            degree: 6,
            batches: 8,
            runs: 2,
            out: PathBuf::from("BENCH_observability.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--batches" => {
                options.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("invalid --batches: {e}"))?
            }
            "--runs" => {
                options.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("invalid --runs: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: telemetry_bench [--vertices N] [--degree D] [--batches K] [--runs K] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// One measured (app, workers) point: telemetry off vs on.
struct OverheadPoint {
    app: &'static str,
    workers: usize,
    work: u64,
    iterations: u32,
    counted_overhead_ratio: f64,
    wall_off_seconds: f64,
    wall_on_seconds: f64,
    wall_ratio: f64,
    spans_collected: usize,
    values_bit_identical: bool,
    counters_equal: bool,
}

fn measure_overhead<P, V, F, B>(
    app: &'static str,
    graph: &Graph,
    options: &Options,
    workers: usize,
    make_program: F,
    bits: B,
) -> OverheadPoint
where
    P: GraphProgram<Value = V>,
    V: Copy + Send + Sync,
    F: Fn(&Graph) -> P,
    B: Fn(&[V]) -> Vec<u64>,
{
    let cluster = ClusterConfig::new(2, workers);
    let base = EngineConfig::default().with_trace(false);
    let off_engine = SlfeEngine::build(graph, cluster.clone(), base.clone());
    let on_engine = SlfeEngine::build(graph, cluster, base.with_telemetry(true));
    let program = make_program(graph);
    let mut off_result = None;
    let off_sample = time_best_of(options.runs, || {
        off_result = Some(off_engine.run(&program));
    });
    let mut on_result = None;
    let on_sample = time_best_of(options.runs, || {
        on_result = Some(on_engine.run(&program));
    });
    let off = off_result.expect("at least one measured run");
    let on = on_result.expect("at least one measured run");
    let work_off = off.stats.totals.work().max(1);
    let work_on = on.stats.totals.work();
    let snap = on_engine.telemetry().snapshot();
    // Exercise the exporters on every point and insist the trace parses.
    json::parse(&snap.chrome_trace()).expect("chrome trace must be valid JSON");
    let point = OverheadPoint {
        app,
        workers,
        work: work_on,
        iterations: on.stats.iterations,
        counted_overhead_ratio: work_on as f64 / work_off as f64,
        wall_off_seconds: off_sample.best_seconds,
        wall_on_seconds: on_sample.best_seconds,
        wall_ratio: on_sample.best_seconds / off_sample.best_seconds.max(1e-12),
        spans_collected: snap.spans.len(),
        values_bit_identical: bits(&off.values) == bits(&on.values),
        // `scratch_bytes_peak` sums per-worker high-water marks and so
        // depends on chunk-stealing races at >1 workers; every other counter
        // must match exactly (tests/telemetry.rs pins the same).
        counters_equal: {
            let strip_peak = |c: Counters| Counters {
                scratch_bytes_peak: 0,
                ..c
            };
            strip_peak(off.stats.totals) == strip_peak(on.stats.totals)
        },
    };
    eprintln!(
        "  {app} @{workers}w: counted ratio {:.4}, wall {:.4}s -> {:.4}s (x{:.3}), {} spans, identical: {}",
        point.counted_overhead_ratio,
        point.wall_off_seconds,
        point.wall_on_seconds,
        point.wall_ratio,
        point.spans_collected,
        point.values_bit_identical
    );
    point
}

fn f32_bits(values: &[f32]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits() as u64).collect()
}

/// A percentile table of one latency histogram, nanoseconds.
struct HistTable {
    name: &'static str,
    count: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    max: u64,
    mean: f64,
}

fn hist_table(name: &'static str, h: &LatencyHistogram) -> HistTable {
    HistTable {
        name,
        count: h.count(),
        p50: h.percentile(0.50).unwrap_or(0),
        p90: h.percentile(0.90).unwrap_or(0),
        p99: h.percentile(0.99).unwrap_or(0),
        max: h.max().unwrap_or(0),
        mean: h.mean().unwrap_or(0.0),
    }
}

/// The durable-serving sweep at one pool size: latency histograms plus pool
/// activity fractions.
struct ServingPoint {
    workers: usize,
    batches: usize,
    tables: Vec<HistTable>,
    busy_fractions: Vec<f64>,
    idle_fractions: Vec<f64>,
    barrier_wait_fraction: f64,
    average_concurrency: f64,
    phases: u64,
}

fn mixed_batch(graph: &Graph, seed: u64, ops: usize) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..ops {
        let src = rng.range_u32(0, n);
        if rng.next_f64() < 0.7 {
            batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
        } else if let Some(&dst) = graph.out_neighbors(src).first() {
            batch.delete(src, dst);
        }
    }
    batch
}

fn measure_serving(graph: &Graph, options: &Options, workers: usize) -> ServingPoint {
    let dir = std::env::temp_dir().join(format!(
        "slfe-telemetry-bench-{}-{workers}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let root = slfe_graph::stats::highest_out_degree_vertex(graph).unwrap_or(0);
    let config = ServerConfig {
        cluster: ClusterConfig::new(1, workers),
        engine: EngineConfig::default()
            .with_trace(false)
            .with_telemetry(true)
            .with_storage_budget(32 << 10)
            .with_storage_segment_bytes(2 << 10),
        ..ServerConfig::default()
    };
    let durability = DurabilityConfig::new(&dir).with_snapshot_every(3);
    let mut server = DeltaServer::create_durable(
        graph.clone(),
        move |_: &Graph| sssp::SsspProgram { root },
        config,
        durability,
    )
    .expect("durable server");
    let mut current = graph.clone();
    for round in 0..options.batches as u64 {
        let batch = mixed_batch(&current, round + 7_000, 20);
        let outcome = server.apply(&batch);
        assert!(outcome.converged, "batch {round} failed to converge");
        assert!(
            outcome.wal_fsync_seconds > 0.0,
            "batch {round}: durable apply must time its fsync"
        );
        current = current.apply_batch(&batch).0;
    }

    let snap = server.telemetry();
    let tables: Vec<HistTable> = [
        HIST_WAL_FSYNC,
        HIST_SEGMENT_FAULT,
        HIST_BATCH_APPLY,
        HIST_ITERATION_WALL,
    ]
    .into_iter()
    .map(|name| {
        let h = snap
            .histogram(name)
            .unwrap_or_else(|| panic!("{name} histogram missing at {workers} workers"));
        hist_table(name, h)
    })
    .collect();
    // The trace and the registry exposition must both be well-formed.
    json::parse(&snap.chrome_trace()).expect("chrome trace must be valid JSON");
    let prometheus = server.metrics_registry().prometheus_text();
    assert!(prometheus.contains("# TYPE slfe_wal_fsyncs_total counter"));

    let activity = server.pool().activity();
    let point = ServingPoint {
        workers,
        batches: options.batches,
        tables,
        busy_fractions: activity.busy_fractions(),
        idle_fractions: activity.idle_fractions(),
        barrier_wait_fraction: activity.barrier_wait_fraction(),
        average_concurrency: activity.average_concurrency(),
        phases: activity.phases,
    };
    for t in &point.tables {
        eprintln!(
            "  {} @{workers}w: n={} p50={}ns p90={}ns p99={}ns max={}ns",
            t.name, t.count, t.p50, t.p90, t.p99, t.max
        );
    }
    eprintln!(
        "  pool @{workers}w: busy {:?}, barrier wait {:.4}, avg concurrency {:.3} over {} phases",
        point.busy_fractions, point.barrier_wait_fraction, point.average_concurrency, point.phases
    );
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();

    let rmat = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        7_2026,
    );
    let sym = cc::symmetrize(&generators::rmat(
        options.vertices / 2,
        options.vertices * options.degree / 2,
        0.57,
        0.19,
        0.19,
        7_2027,
    ));
    let dag = generators::layered(10, (options.vertices / 10).max(20), 4, 7_2028);
    let root = slfe_graph::stats::highest_out_degree_vertex(&rmat).unwrap_or(0);
    eprintln!(
        "rmat: {} vertices, {} edges; overhead sweep over 9 apps x {{1, 4}} workers",
        rmat.num_vertices(),
        rmat.num_edges()
    );

    let mut overhead = Vec::new();
    for workers in [1usize, 4] {
        overhead.push(measure_overhead(
            "sssp",
            &rmat,
            &options,
            workers,
            |_| sssp::SsspProgram { root },
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "bfs",
            &rmat,
            &options,
            workers,
            |_| bfs::BfsProgram { root },
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "cc",
            &sym,
            &options,
            workers,
            cc::CcProgram::for_graph,
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "widestpath",
            &rmat,
            &options,
            workers,
            |_| widestpath::WidestPathProgram { root },
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "pagerank",
            &rmat,
            &options,
            workers,
            pagerank::PageRankProgram::for_graph,
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "tunkrank",
            &rmat,
            &options,
            workers,
            |_| tunkrank::TunkRankProgram::default(),
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "spmv",
            &rmat,
            &options,
            workers,
            |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
            |values: &[(f32, f32)]| {
                values
                    .iter()
                    .map(|(x, y)| ((x.to_bits() as u64) << 32) | y.to_bits() as u64)
                    .collect()
            },
        ));
        overhead.push(measure_overhead(
            "heat",
            &rmat,
            &options,
            workers,
            |g: &Graph| heat::HeatProgram::point_source(g, root),
            f32_bits,
        ));
        overhead.push(measure_overhead(
            "numpaths",
            &dag,
            &options,
            workers,
            |_| numpaths::NumPathsProgram { root: 0 },
            f32_bits,
        ));
    }

    // Serving sweep: a smaller graph keeps the per-batch restarts quick while
    // the 32 KiB pool budget still forces real segment faults.
    let serving_graph = generators::rmat(
        (options.vertices / 2).max(500),
        (options.vertices / 2).max(500) * options.degree,
        0.57,
        0.19,
        0.19,
        7_2029,
    );
    eprintln!(
        "serving: {} vertices, {} edges, {} durable batches per pool size",
        serving_graph.num_vertices(),
        serving_graph.num_edges(),
        options.batches
    );
    let serving: Vec<ServingPoint> = [1usize, 4]
        .into_iter()
        .map(|workers| measure_serving(&serving_graph, &options, workers))
        .collect();

    // ---- Assertions gate the file write. ----
    for p in &overhead {
        assert!(
            p.values_bit_identical,
            "{} at {} workers: telemetry changed the computed values",
            p.app, p.workers
        );
        assert!(
            p.counters_equal,
            "{} at {} workers: telemetry changed the work counters",
            p.app, p.workers
        );
        assert!(
            p.counted_overhead_ratio < 1.05,
            "{} at {} workers: counted-work overhead ratio {} >= 1.05",
            p.app,
            p.workers,
            p.counted_overhead_ratio
        );
        assert!(p.spans_collected > 0);
    }
    for s in &serving {
        assert_eq!(s.busy_fractions.len(), s.workers);
        for f in s.busy_fractions.iter().chain(&s.idle_fractions) {
            assert!((0.0..=1.0).contains(f), "fraction {f} out of range");
        }
        for t in &s.tables {
            assert!(
                t.count > 0,
                "{} at {} workers: latency table is empty",
                t.name,
                s.workers
            );
            assert!(t.p50 <= t.p99 && t.p99 <= t.max);
        }
        assert_eq!(
            s.tables[0].count, s.batches as u64,
            "one WAL fsync per applied batch"
        );
    }

    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("telemetry off vs on for every registered app at 1 and 4 workers: values are asserted bit-identical and counters equal, so counted_overhead_ratio is the machine-independent overhead measure (asserted < 1.05); wall ratios depend on hardware_threads and load. Latency tables come from a durable out-of-core SSSP server applying seeded batches with telemetry on; pool fractions are measured over the server pool's lifetime. A 1-worker pool reports zero phases because single-worker schedules run inline on the coordinator (the sequential-oracle path never enters the pool)")
    );
    let _ = writeln!(
        out,
        "  \"graphs\": {{\"rmat\": {{\"vertices\": {}, \"edges\": {}}}, \"serving\": {{\"vertices\": {}, \"edges\": {}}}}},",
        rmat.num_vertices(),
        rmat.num_edges(),
        serving_graph.num_vertices(),
        serving_graph.num_edges()
    );
    out.push_str("  \"overhead\": [");
    for (i, p) in overhead.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"app\": {}, \"workers_per_node\": {}, \"work\": {}, \"iterations\": {}, \"counted_overhead_ratio\": {}, \"wall_off_seconds\": {}, \"wall_on_seconds\": {}, \"wall_ratio\": {}, \"spans_collected\": {}, \"values_bit_identical\": {}, \"counters_equal\": {}}}",
            json::string(p.app),
            p.workers,
            p.work,
            p.iterations,
            json::float_fixed(p.counted_overhead_ratio, 6),
            json::float_fixed(p.wall_off_seconds, 6),
            json::float_fixed(p.wall_on_seconds, 6),
            json::float_fixed(p.wall_ratio, 4),
            p.spans_collected,
            p.values_bit_identical,
            p.counters_equal
        );
    }
    out.push_str("\n  ],\n  \"serving\": [");
    for (i, s) in serving.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"pool_workers\": {}, \"batches\": {}, \"latency_ns\": {{",
            s.workers, s.batches
        );
        for (j, t) in s.tables.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "\"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}, \"mean\": {}}}",
                t.name,
                t.count,
                t.p50,
                t.p90,
                t.p99,
                t.max,
                json::float_fixed(t.mean, 1)
            );
        }
        out.push_str("}, \"pool\": {\"busy_fractions\": [");
        for (j, f) in s.busy_fractions.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", json::float_fixed(*f, 6));
        }
        out.push_str("], \"idle_fractions\": [");
        for (j, f) in s.idle_fractions.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", json::float_fixed(*f, 6));
        }
        let _ = write!(
            out,
            "], \"barrier_wait_fraction\": {}, \"average_concurrency\": {}, \"phases\": {}}}}}",
            json::float_fixed(s.barrier_wait_fraction, 6),
            json::float_fixed(s.average_concurrency, 4),
            s.phases
        );
    }
    out.push_str("\n  ]\n}\n");

    // The bench must never publish a document its own parser rejects.
    json::parse(&out).expect("emitted benchmark JSON must be valid");

    if let Err(e) = std::fs::write(&options.out, &out) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{out}");
    eprintln!("wrote {}", options.out.display());
}
