/root/repo/target/debug/deps/slfe_baselines-7d3c2ff8c39a688b.d: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

/root/repo/target/debug/deps/slfe_baselines-7d3c2ff8c39a688b: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gas.rs:
crates/baselines/src/gemini.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/powergraph.rs:
crates/baselines/src/powerlyra.rs:
