/root/repo/target/debug/deps/slfe_partition-6c71ba0c8ebf5024.d: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_partition-6c71ba0c8ebf5024.rmeta: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs Cargo.toml

crates/partition/src/lib.rs:
crates/partition/src/chunking.rs:
crates/partition/src/hash.rs:
crates/partition/src/partitioning.rs:
crates/partition/src/quality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
