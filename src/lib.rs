//! # SLFE — Start Late or Finish Early
//!
//! A from-scratch Rust reproduction of *"Start Late or Finish Early: A Distributed
//! Graph Processing System with Redundancy Reduction"* (Song et al., 2018).
//!
//! This facade crate re-exports the public API of every workspace crate so that
//! downstream users (and the examples under `examples/`) can depend on a single
//! crate:
//!
//! * [`graph`] — in-memory graph storage (CSR/CSC), generators and loaders.
//! * [`partition`] — chunking-based and hash partitioners.
//! * [`cluster`] — the simulated distributed runtime (nodes, workers, messages,
//!   mini-chunk work stealing).
//! * [`metrics`] — computation/communication counters and report rendering.
//! * [`core`] — the SLFE engine: RR guidance preprocessing, ruler-scheduled
//!   pull/push computation and the `edge_proc`/`vertex_update` API.
//! * [`apps`] — the graph applications of Table 1 implemented on the SLFE API.
//! * [`baselines`] — Gemini/PowerGraph/PowerLyra/Ligra/GraphChi-style engines.
//! * [`delta`] — incremental recomputation and update serving: stage an
//!   [`prelude::UpdateBatch`], apply it with `Graph::apply_batch`, re-converge
//!   warm with `SlfeEngine::run_from`, let a [`prelude::DeltaServer`] drive
//!   the whole loop and answer queries, or wrap it in a
//!   [`prelude::ServingFrontend`] for concurrent snapshot-consistent reads
//!   under update traffic with typed load shedding.
//!
//! ## Quickstart
//!
//! ```
//! use slfe::prelude::*;
//!
//! // Build a small graph, run SSSP with redundancy reduction enabled.
//! let graph = slfe::graph::generators::rmat(1_000, 8_000, 0.57, 0.19, 0.19, 42);
//! let cluster = ClusterConfig::new(2, 2); // 2 simulated nodes, 2 workers each
//! let engine = SlfeEngine::build(&graph, cluster, EngineConfig::default());
//! let result = slfe::apps::sssp::run(&engine, 0);
//! assert_eq!(result.values[0], 0.0); // distance of the root to itself
//! ```

pub use slfe_apps as apps;
pub use slfe_baselines as baselines;
pub use slfe_cluster as cluster;
pub use slfe_core as core;
pub use slfe_delta as delta;
pub use slfe_graph as graph;
pub use slfe_metrics as metrics;
pub use slfe_partition as partition;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use slfe_apps::{cc, pagerank, sssp, tunkrank, widestpath, AggregationKind, AppKind};
    pub use slfe_baselines::{BaselineEngine, BaselineKind};
    pub use slfe_cluster::ClusterConfig;
    pub use slfe_core::{EngineConfig, RedundancyMode, SlfeEngine};
    pub use slfe_delta::{
        AdmitError, Answer, ApplyError, BatchOutcome, DeadLetter, DeltaServer, EdgeUpdate,
        FrontendConfig, FrontendCounterSnapshot, FrontendHandle, Health, PublishedVersion,
        QueryError, ServerConfig, ServingFrontend, ServingMode,
    };
    pub use slfe_graph::{
        FaultInjector, FaultKind, FaultPlan, FaultSite, Graph, GraphBuilder, RetryPolicy,
        UpdateBatch, VertexId,
    };
    pub use slfe_metrics::{ExecutionStats, TelemetryConfig};
    pub use slfe_partition::{ChunkingPartitioner, Partitioner};
}
