//! Heat simulation: mass-conserving diffusion over the graph.
//!
//! Each vertex holds a heat value; every iteration a fraction `alpha` of a vertex's
//! heat is replaced by the average heat flowing in from its in-neighbors, where
//! every source spreads its heat evenly over its out-edges:
//!
//! ```text
//! h'(v) = (1 - alpha) · h(v) + alpha · Σ_{u -> v} h(u) / out_degree(u)
//! ```
//!
//! The per-source normalisation makes the iteration a (sub)stochastic linear map,
//! so the simulation is stable and converges on most graphs; like PageRank it is an
//! arithmetic-aggregation application optimised by "finish early".

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};

/// Default diffusion coefficient.
pub const DEFAULT_ALPHA: f32 = 0.3;

/// Heat simulation as a [`GraphProgram`].
///
/// The stored vertex property is the pair `(heat, share)` flattened into the heat
/// value itself plus a precomputed per-source normalisation held in the program, so
/// edge contributions stay cheap.
///
/// The normalisation encodes the out-degrees of the graph the program was built
/// for: **re-instantiate the program for every graph version** (as the
/// `slfe-delta` server's program factory does) — running a stale instance on a
/// mutated graph silently uses the old degrees.
#[derive(Debug, Clone)]
pub struct HeatProgram {
    /// Diffusion coefficient in `(0, 1]`.
    pub alpha: f32,
    /// Initial heat per vertex.
    pub initial_heat: Vec<f32>,
    /// Precomputed `1 / out_degree` per vertex (0 for sinks).
    inv_out_degree: Vec<f32>,
}

impl HeatProgram {
    /// Build a heat program over `graph` with explicit initial heat.
    pub fn new(graph: &Graph, alpha: f32, initial_heat: Vec<f32>) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert_eq!(
            initial_heat.len(),
            graph.num_vertices(),
            "initial heat length mismatch"
        );
        let inv_out_degree = graph
            .vertices()
            .map(|v| {
                let d = graph.out_degree(v);
                if d > 0 {
                    1.0 / d as f32
                } else {
                    0.0
                }
            })
            .collect();
        Self {
            alpha,
            initial_heat,
            inv_out_degree,
        }
    }

    /// A single hot vertex (`source`) with heat 1.0, everything else cold.
    pub fn point_source(graph: &Graph, source: VertexId) -> Self {
        let mut heat = vec![0.0; graph.num_vertices()];
        if (source as usize) < heat.len() {
            heat[source as usize] = 1.0;
        }
        Self::new(graph, DEFAULT_ALPHA, heat)
    }
}

impl GraphProgram for HeatProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::Arithmetic
    }

    fn name(&self) -> &'static str {
        "heat"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
        // Vertices appended after the program's heat vector was fixed start cold.
        self.initial_heat.get(v as usize).copied().unwrap_or(0.0)
    }

    fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
        true
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn edge_contribution(&self, src: VertexId, src_value: f32, _weight: EdgeWeight) -> Option<f32> {
        // Appended vertices start cold (heat 0), so a zero share is exact.
        Some(
            src_value
                * self
                    .inv_out_degree
                    .get(src as usize)
                    .copied()
                    .unwrap_or(0.0),
        )
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, _dst: VertexId, old: f32, gathered: f32) -> f32 {
        (1.0 - self.alpha) * old + self.alpha * gathered
    }

    fn changed(&self, old: f32, new: f32, tolerance: f64) -> bool {
        (old - new).abs() as f64 > tolerance
    }

    fn warm_start_value(&self, v: VertexId, _previous: Option<f32>, degrees: &Degrees) -> f32 {
        // Heat's limit depends on the *initial condition*, not just the topology:
        // the diffusion map `h' = (1 - alpha) h + alpha Pᵀh` has one fixpoint per
        // initial mass distribution (any h with h = Pᵀh is stationary), so warm
        // starting from the old limit on a mutated graph would converge to a
        // different answer than re-running the simulation. Restart from the
        // initial heat instead — the warm-init hook exists precisely for programs
        // whose stored state cannot be reused across topology changes.
        self.initial_value(v, degrees)
    }
}

/// Run the heat simulation with a point source at `source`.
pub fn run(engine: &SlfeEngine<'_>, source: VertexId) -> ProgramResult<f32> {
    let program = HeatProgram::point_source(engine.graph(), source);
    engine.run(&program)
}

/// Sequential reference: `iterations` synchronous diffusion steps.
pub fn reference(graph: &Graph, alpha: f32, initial_heat: &[f32], iterations: u32) -> Vec<f32> {
    let n = graph.num_vertices();
    let mut heat = initial_heat.to_vec();
    for _ in 0..iterations {
        let mut next = vec![0.0f32; n];
        for v in graph.vertices() {
            let incoming: f32 = graph
                .in_neighbors(v)
                .iter()
                .map(|&u| {
                    let d = graph.out_degree(u);
                    if d > 0 {
                        heat[u as usize] / d as f32
                    } else {
                        0.0
                    }
                })
                .sum();
            next[v as usize] = (1.0 - alpha) * heat[v as usize] + alpha * incoming;
        }
        heat = next;
    }
    heat
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators};

    #[test]
    fn heat_spreads_downstream_from_the_source() {
        let g = generators::path(5);
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, 0);
        // After convergence-ish, downstream vertices received some heat.
        assert!(result.values[1] > 0.0);
        assert!(result.values[2] > 0.0);
        // Heat can only flow forward on a path.
        assert_eq!(result.values.len(), 5);
    }

    #[test]
    fn matches_reference_after_the_same_number_of_iterations() {
        // Redundancy reduction is disabled here so every vertex is recomputed each
        // iteration, exactly like the synchronous reference.
        let g = Dataset::LiveJournal.load_scaled(96_000);
        let program = HeatProgram::point_source(&g, 0);
        let engine = SlfeEngine::build(
            &g,
            ClusterConfig::new(4, 2),
            EngineConfig::without_rr()
                .with_tolerance(0.0)
                .with_max_iterations(15),
        );
        let result = engine.run(&program);
        let expected = reference(
            &g,
            DEFAULT_ALPHA,
            &program.initial_heat,
            result.stats.iterations,
        );
        for (a, b) in result.values.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn uniform_heat_on_a_cycle_is_a_fixed_point() {
        let g = generators::cycle(8);
        let program = HeatProgram::new(&g, 0.5, vec![2.0; 8]);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = engine.run(&program);
        assert!(result.converged);
        assert!(result.values.iter().all(|&h| (h - 2.0).abs() < 1e-6));
        assert!(
            result.stats.iterations <= 2,
            "fixed point should be detected immediately"
        );
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn invalid_alpha_panics() {
        let g = generators::path(3);
        let _ = HeatProgram::new(&g, 0.0, vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "initial heat length mismatch")]
    fn mismatched_heat_vector_panics() {
        let g = generators::path(3);
        let _ = HeatProgram::new(&g, 0.5, vec![0.0; 2]);
    }

    #[test]
    fn warm_start_restarts_from_the_initial_condition() {
        let g = generators::path(4);
        let program = HeatProgram::point_source(&g, 0);
        let d = Degrees::of(&g);
        // The previous fixpoint is discarded: heat's answer is defined by its
        // initial condition, which a topology change invalidates.
        assert_eq!(program.warm_start_value(0, Some(0.25), &d), 1.0);
        assert_eq!(program.warm_start_value(2, Some(0.25), &d), 0.0);
        // Vertices beyond the heat vector (appended by a batch) start cold.
        assert_eq!(program.initial_value(9, &d), 0.0);
    }
}
