//! The result of running a [`crate::GraphProgram`] on the engine.

use slfe_metrics::ExecutionStats;

/// Values, statistics and convergence information produced by one run.
#[derive(Debug, Clone)]
pub struct ProgramResult<V> {
    /// Final per-vertex property values.
    pub values: Vec<V>,
    /// Run statistics: counters, trace, phase breakdown, per-node work.
    pub stats: ExecutionStats,
    /// For every vertex, the iteration of its *last* value change (0 if it never
    /// changed). Drives the early-convergence analysis of Figure 2.
    pub last_changed_iter: Vec<u32>,
    /// Per node, per worker accumulated busy work in counted units
    /// (`per_node_worker_work[node][worker]`). Drives Figure 10(a).
    pub per_node_worker_work: Vec<Vec<u64>>,
    /// `true` if the run reached a fixed point before hitting the iteration cap.
    pub converged: bool,
}

impl<V> ProgramResult<V> {
    /// Number of iterations the run executed.
    pub fn iterations(&self) -> u32 {
        self.stats.iterations
    }

    /// Fraction of vertices that were *early converged*: their last change happened
    /// at or before `fraction` of the run's iterations. The paper's Figure 2 uses
    /// `fraction = 0.9` ("when the program reaches 90% of the execution time").
    ///
    /// Only vertices that changed at least once are counted in the denominator, so
    /// isolated vertices do not inflate the ratio.
    pub fn early_converged_fraction(&self, fraction: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let total_iters = self.iterations();
        if total_iters == 0 {
            return 0.0;
        }
        let cutoff = (total_iters as f64 * fraction).floor() as u32;
        let mut touched = 0usize;
        let mut early = 0usize;
        for &last in &self.last_changed_iter {
            if last == 0 {
                continue;
            }
            touched += 1;
            if last <= cutoff {
                early += 1;
            }
        }
        if touched == 0 {
            0.0
        } else {
            early as f64 / touched as f64
        }
    }

    /// Per-worker busy work flattened across all nodes; convenience for the
    /// intra-node balance analysis.
    pub fn all_worker_work(&self) -> Vec<u64> {
        self.per_node_worker_work
            .iter()
            .flatten()
            .copied()
            .collect()
    }
}

/// Convenience alias for results over `f32` vertex properties (every application in
/// `slfe-apps` uses single-precision properties, as the paper's pseudo-code does).
pub type FloatResult = ProgramResult<f32>;

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with(last_changed: Vec<u32>, iterations: u32) -> ProgramResult<f32> {
        let mut stats = ExecutionStats::new("slfe", "test");
        stats.iterations = iterations;
        ProgramResult {
            values: vec![0.0; last_changed.len()],
            stats,
            last_changed_iter: last_changed,
            per_node_worker_work: vec![vec![3, 5], vec![4, 4]],
            converged: true,
        }
    }

    #[test]
    fn ec_fraction_counts_only_touched_vertices() {
        // 10 iterations; cutoff at 0.9 -> iteration 9.
        let r = result_with(vec![0, 1, 5, 9, 10, 10], 10);
        // touched = 5 (vertex with last=0 excluded); early = 3 (1, 5, 9).
        assert!((r.early_converged_fraction(0.9) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn ec_fraction_is_one_when_everything_settles_early() {
        let r = result_with(vec![1, 1, 2, 2], 100);
        assert!((r.early_converged_fraction(0.9) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ec_fraction_handles_degenerate_runs() {
        let r = result_with(vec![0, 0, 0], 5);
        assert_eq!(r.early_converged_fraction(0.9), 0.0);
        let r0 = result_with(vec![1, 2], 0);
        assert_eq!(r0.early_converged_fraction(0.9), 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0, 1]")]
    fn ec_fraction_rejects_bad_fraction() {
        let r = result_with(vec![1], 10);
        r.early_converged_fraction(1.5);
    }

    #[test]
    fn worker_work_flattens_across_nodes() {
        let r = result_with(vec![1], 1);
        assert_eq!(r.all_worker_work(), vec![3, 5, 4, 4]);
        assert_eq!(r.iterations(), 1);
    }
}
