/root/repo/target/debug/deps/experiments-d077295aeef820b3.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-d077295aeef820b3.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
