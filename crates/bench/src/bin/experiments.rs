//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [EXPERIMENT] [--scale N] [--nodes N] [--workers N] [--out DIR]
//!
//! EXPERIMENT: all (default) | table1 | table2 | table5 | fig2 | fig4 | fig5 |
//!             fig6 | fig7 | fig8 | fig9 | fig10 | ablation
//! ```
//!
//! Each report is printed to stdout and written to `<out>/<experiment>.txt`
//! (default `reports/`). Run in release mode: the full suite executes several
//! hundred engine runs.

use slfe_bench::experiments;
use slfe_bench::ExperimentContext;
use std::path::PathBuf;

struct Options {
    experiment: String,
    ctx: ExperimentContext,
    out_dir: PathBuf,
}

fn parse_args() -> Result<Options, String> {
    let mut experiment = "all".to_string();
    let mut ctx = ExperimentContext::default();
    let mut out_dir = PathBuf::from("reports");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let value_for = |name: &str, args: &mut dyn Iterator<Item = String>| {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--scale" => {
                ctx.scale = value_for("--scale", &mut args)?
                    .parse()
                    .map_err(|e| format!("invalid --scale: {e}"))?;
            }
            "--nodes" => {
                ctx.nodes = value_for("--nodes", &mut args)?
                    .parse()
                    .map_err(|e| format!("invalid --nodes: {e}"))?;
            }
            "--workers" => {
                ctx.workers = value_for("--workers", &mut args)?
                    .parse()
                    .map_err(|e| format!("invalid --workers: {e}"))?;
            }
            "--out" => {
                out_dir = PathBuf::from(value_for("--out", &mut args)?);
            }
            "--help" | "-h" => {
                return Err("usage: experiments [EXPERIMENT] [--scale N] [--nodes N] [--workers N] [--out DIR]".into());
            }
            name if !name.starts_with("--") => experiment = name.to_string(),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(Options {
        experiment,
        ctx,
        out_dir,
    })
}

type ExperimentFn = fn(&ExperimentContext) -> String;

fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table1", experiments::table1 as ExperimentFn),
        ("table2", experiments::table2),
        ("fig2", experiments::fig2),
        ("fig4", experiments::fig4),
        ("table5", experiments::table5),
        ("fig5", experiments::fig5),
        ("fig6", experiments::fig6),
        ("fig7", experiments::fig7),
        ("fig8", experiments::fig8),
        ("fig9", experiments::fig9),
        ("fig10", experiments::fig10),
        ("ablation", experiments::ablation),
    ]
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let selected: Vec<_> = all_experiments()
        .into_iter()
        .filter(|(name, _)| options.experiment == "all" || options.experiment == *name)
        .collect();
    if selected.is_empty() {
        eprintln!("unknown experiment '{}'", options.experiment);
        std::process::exit(2);
    }
    if let Err(e) = std::fs::create_dir_all(&options.out_dir) {
        eprintln!("cannot create {}: {e}", options.out_dir.display());
        std::process::exit(1);
    }
    println!(
        "# SLFE experiment harness: scale 1/{}, {} nodes x {} workers\n",
        options.ctx.scale, options.ctx.nodes, options.ctx.workers
    );
    for (name, f) in selected {
        let start = std::time::Instant::now();
        let report = f(&options.ctx);
        println!("{report}");
        println!(
            "[{name} completed in {:.1}s]\n",
            start.elapsed().as_secs_f64()
        );
        let path = options.out_dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("cannot write {}: {e}", path.display());
        }
    }
}
