//! Compact per-vertex degree arrays ([`Degrees`]) for program callbacks.
//!
//! Vertex programs that need structural information in their per-vertex hooks
//! (PageRank and TunkRank divide by out-degree) used to receive the whole
//! in-RAM [`crate::Graph`]. That coupling blocks two things: out-of-core
//! execution cannot bound resident memory while callbacks may touch arbitrary
//! adjacency, and a physical id remap would hand programs a graph whose
//! neighbor lists are in remapped order. [`Degrees`] is the narrow view that
//! remains: two `u32` per vertex, indexed by **physical** id — exactly what
//! the degree-reading hooks need, nothing they could misuse.

use crate::graph::Graph;
use crate::types::VertexId;

/// Per-vertex out/in degree counts, indexed by physical vertex id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degrees {
    out: Vec<u32>,
    incoming: Vec<u32>,
}

impl Degrees {
    /// Extract the degree arrays of `graph` (`O(V)` time and `8·V` bytes).
    pub fn of(graph: &Graph) -> Self {
        Self {
            out: graph
                .vertices()
                .map(|v| graph.out_degree(v) as u32)
                .collect(),
            incoming: graph
                .vertices()
                .map(|v| graph.in_degree(v) as u32)
                .collect(),
        }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Out-degree of `v` (0 when out of range, mirroring an absent vertex).
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.out.get(v as usize).copied().unwrap_or(0) as usize
    }

    /// In-degree of `v` (0 when out of range).
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.incoming.get(v as usize).copied().unwrap_or(0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degrees_match_the_graph() {
        let g = generators::rmat(200, 1400, 0.57, 0.19, 0.19, 9);
        let d = Degrees::of(&g);
        assert_eq!(d.num_vertices(), g.num_vertices());
        for v in g.vertices() {
            assert_eq!(d.out_degree(v), g.out_degree(v));
            assert_eq!(d.in_degree(v), g.in_degree(v));
        }
        assert_eq!(d.out_degree(g.num_vertices() as VertexId + 5), 0);
    }
}
