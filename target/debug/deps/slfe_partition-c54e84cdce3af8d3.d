/root/repo/target/debug/deps/slfe_partition-c54e84cdce3af8d3.d: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

/root/repo/target/debug/deps/libslfe_partition-c54e84cdce3af8d3.rmeta: crates/partition/src/lib.rs crates/partition/src/chunking.rs crates/partition/src/hash.rs crates/partition/src/partitioning.rs crates/partition/src/quality.rs

crates/partition/src/lib.rs:
crates/partition/src/chunking.rs:
crates/partition/src/hash.rs:
crates/partition/src/partitioning.rs:
crates/partition/src/quality.rs:
