//! Wall-clock benchmarks backing Table 2 / Figure 2 / Figure 9: the cost of running
//! the redundancy-heavy applications with and without redundancy reduction.

use slfe_apps::AppKind;
use slfe_bench::timing::{report, time_best_of};
use slfe_bench::{runner, EngineKind};
use slfe_cluster::ClusterConfig;
use slfe_graph::{datasets::Dataset, generators};

fn main() {
    let cluster = ClusterConfig::new(8, 4);
    let runs = 5;

    // Table 2 / Figure 9 workload: SSSP with and without RR on a deep layered graph
    // (the regime where "start late" has redundancy to remove) and on the ST proxy.
    let layered = generators::layered(24, 400, 8, 11);
    let st = Dataset::STwitter.load_scaled(16_000);
    println!("== fig9_sssp_redundancy ==");
    report(
        "layered_with_rr",
        time_best_of(runs, || {
            runner::run_app(EngineKind::Slfe, AppKind::Sssp, &layered, cluster.clone())
        }),
    );
    report(
        "layered_without_rr",
        time_best_of(runs, || {
            runner::run_app(
                EngineKind::SlfeNoRr,
                AppKind::Sssp,
                &layered,
                cluster.clone(),
            )
        }),
    );
    report(
        "st_with_rr",
        time_best_of(runs, || {
            runner::run_app(EngineKind::Slfe, AppKind::Sssp, &st, cluster.clone())
        }),
    );

    // Figure 2 workload: PageRank early convergence on the DI proxy.
    let di = Dataset::Delicious.load_scaled(32_000);
    println!("== fig2_pagerank_finish_early ==");
    report(
        "with_rr",
        time_best_of(runs, || {
            runner::run_app(EngineKind::Slfe, AppKind::PageRank, &di, cluster.clone())
        }),
    );
    report(
        "without_rr",
        time_best_of(runs, || {
            runner::run_app(
                EngineKind::SlfeNoRr,
                AppKind::PageRank,
                &di,
                cluster.clone(),
            )
        }),
    );
}
