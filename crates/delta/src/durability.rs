//! Durability for the delta server: write-ahead logging, atomic fixpoint
//! snapshots, and the compaction trigger riding the snapshot path.
//!
//! The contract mirrors what ledger-grade serving stores provide:
//!
//! * Every [`slfe_graph::UpdateBatch`] is appended to a checksummed,
//!   length-prefixed **write-ahead log** and fsync'd *before* the in-memory
//!   graph or the out-of-core segment files see it. A `kill -9` at any point
//!   therefore loses at most the batch whose WAL append had not yet returned
//!   — never one the caller was told about.
//! * Every N batches (or M WAL bytes) the server writes a **snapshot** of its
//!   exact served state — graph (raw adjacency arrays, physically exact),
//!   fixpoint values, RR guidance, stable partitioning, cumulative stats —
//!   via temp file + rename, then trims the WAL. Recovery loads the snapshot
//!   and replays only the WAL suffix past its sequence number through the
//!   identical warm apply path, which is what makes recovered values
//!   **bit-identical** to an uninterrupted run for every registered app.
//! * Corruption is handled structurally, never with a panic: a torn or
//!   bit-flipped WAL tail truncates to the last valid frame; a corrupt
//!   snapshot is a typed [`DurabilityError`].

use slfe_core::RrGuidance;
use slfe_graph::io::binary::{self, Reader};
use slfe_graph::{
    with_retries, FaultAction, FaultInjector, FaultSite, Graph, RetryPolicy, UpdateBatch,
};
use slfe_metrics::DurabilityCounters;
use std::fs::{File, OpenOptions};
use std::io::{self, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::server::ServerStats;

/// Frame magic of one WAL entry ("SLFW").
const WAL_MAGIC: u32 = 0x534C_4657;
/// Snapshot file magic ("SLFS").
const SNAPSHOT_MAGIC: u32 = 0x534C_4653;
/// Snapshot format version. Version 2 appends an id-remap section (the
/// external→physical bijection of a physically reordered graph) after the
/// partitioning; version-1 snapshots are still readable and load with the
/// identity layout.
const SNAPSHOT_VERSION: u32 = 2;
/// Oldest snapshot version this build still reads.
const SNAPSHOT_MIN_VERSION: u32 = 1;
/// Bytes of a WAL frame header: magic, sequence, payload length, checksum.
const WAL_HEADER_BYTES: usize = 4 + 8 + 4 + 4;

/// Durability knobs of a [`crate::DeltaServer`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL and snapshot files. Created if absent.
    pub dir: PathBuf,
    /// Snapshot after this many applied batches since the last snapshot.
    pub snapshot_every_batches: u64,
    /// ... or once the WAL holds at least this many bytes, whichever first.
    pub snapshot_wal_bytes: u64,
    /// Out-of-core serving: compact the segment files (rewriting live
    /// segments into a fresh generation) whenever a snapshot finds their
    /// dead-byte fraction above this threshold, bounding on-disk size.
    pub max_dead_fraction: f64,
    /// Retry/backoff budget applied to every durability I/O (WAL append and
    /// fsync, WAL trim, snapshot write/rename/read). Transient failures
    /// within the budget are absorbed with no observable effect; disk-full
    /// errors are never retried.
    pub retry: RetryPolicy,
    /// Run the configured id-remap policy ([`slfe_core::EngineConfig`]'s
    /// `reorder` / `migration_imbalance_threshold`) on the snapshot path.
    /// Riding the snapshot keeps recovery trivially correct: the WAL is
    /// truncated right after the (post-remap) snapshot lands, so replay never
    /// crosses a layout change. `true` by default; the policies themselves
    /// default off, so nothing remaps unless explicitly configured.
    pub remap_on_snapshot: bool,
}

impl DurabilityConfig {
    /// Defaults: snapshot every 8 batches or 1 MiB of WAL, compact past 50%
    /// dead bytes.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every_batches: 8,
            snapshot_wal_bytes: 1 << 20,
            max_dead_fraction: 0.5,
            retry: RetryPolicy::default(),
            remap_on_snapshot: true,
        }
    }

    /// Set the batch-count snapshot cadence.
    pub fn with_snapshot_every(mut self, batches: u64) -> Self {
        self.snapshot_every_batches = batches.max(1);
        self
    }

    /// Set the WAL-bytes snapshot trigger.
    pub fn with_snapshot_wal_bytes(mut self, bytes: u64) -> Self {
        self.snapshot_wal_bytes = bytes;
        self
    }

    /// Set the compaction dead-byte threshold.
    pub fn with_max_dead_fraction(mut self, fraction: f64) -> Self {
        self.max_dead_fraction = fraction;
        self
    }

    /// Set the I/O retry/backoff budget.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable or disable running the id-remap policy on the snapshot path.
    pub fn with_remap_on_snapshot(mut self, enabled: bool) -> Self {
        self.remap_on_snapshot = enabled;
        self
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Path of the current snapshot.
    pub fn snapshot_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin")
    }

    fn snapshot_tmp_path(&self) -> PathBuf {
        self.dir.join("snapshot.bin.tmp")
    }
}

/// Structured failures of the durability layer. Corruption is a value, not a
/// panic: recovery always either succeeds or reports *why* it cannot.
#[derive(Debug)]
pub enum DurabilityError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// No snapshot exists at the given path (nothing to recover from —
    /// create the server instead).
    MissingSnapshot(PathBuf),
    /// The snapshot file exists but failed checksum or structural
    /// validation; `reason` names the first check that failed.
    CorruptSnapshot {
        /// The first validation step that failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Io(e) => write!(f, "i/o error: {e}"),
            DurabilityError::MissingSnapshot(p) => {
                write!(f, "no snapshot at {}", p.display())
            }
            DurabilityError::CorruptSnapshot { reason } => {
                write!(f, "corrupt snapshot: {reason}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<io::Error> for DurabilityError {
    fn from(e: io::Error) -> Self {
        DurabilityError::Io(e)
    }
}

/// What scanning a WAL file found: the decodable prefix and how much torn or
/// corrupt tail was discarded.
#[derive(Debug)]
pub struct WalReplay {
    /// Valid entries in append order, each `(sequence, batch)`.
    pub entries: Vec<(u64, UpdateBatch)>,
    /// Bytes of the valid prefix.
    pub valid_bytes: u64,
    /// Bytes past the last valid frame (torn write or bit flip) that were
    /// discarded.
    pub bytes_truncated: u64,
}

/// Result of one [`Wal::append`]: the frame's on-disk size and the measured
/// latency of the fsync that made it durable.
#[derive(Debug, Clone, Copy)]
pub struct WalAppend {
    /// Bytes written for the frame (header + payload).
    pub frame_bytes: u64,
    /// Wall-clock nanoseconds spent in `sync_data` for this frame.
    pub fsync_nanos: u64,
}

/// Append handle over the write-ahead log. Opening scans the existing file,
/// truncates any invalid tail to the last valid frame, and returns what must
/// be replayed.
#[derive(Debug)]
pub struct Wal {
    file: File,
    bytes: u64,
    faults: Option<Arc<FaultInjector>>,
    retry: RetryPolicy,
}

impl Wal {
    /// Open (creating if absent) the WAL at `path`. Any torn or corrupt tail
    /// is truncated away so subsequent appends extend a valid log.
    pub fn open(path: &Path) -> io::Result<(Self, WalReplay)> {
        Self::open_with(path, None, RetryPolicy::default())
    }

    /// [`Wal::open`] with a fault injector and retry budget attached. The
    /// opening scan itself runs under the retry budget so transient read
    /// failures are absorbed before any truncation decision is made.
    pub fn open_with(
        path: &Path,
        faults: Option<Arc<FaultInjector>>,
        retry: RetryPolicy,
    ) -> io::Result<(Self, WalReplay)> {
        let replay = with_retries(&retry, faults.as_deref(), || {
            Self::scan(path, faults.as_deref())
        })?;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        file.set_len(replay.valid_bytes)?;
        let mut wal = Self {
            file,
            bytes: replay.valid_bytes,
            faults,
            retry,
        };
        if replay.bytes_truncated > 0 {
            wal.file.sync_data()?;
        }
        wal.file.seek(io::SeekFrom::Start(replay.valid_bytes))?;
        Ok((wal, replay))
    }

    /// Decode the valid frame prefix of the WAL at `path`; a missing file is
    /// an empty log. Never panics on corrupt bytes.
    ///
    /// An injected short read fails the scan instead of delivering a
    /// truncated buffer: acting on a partial read here would truncate
    /// durable frames that are in fact intact on disk, so the only safe
    /// reaction is to report the read as failed and let the retry budget
    /// (or the caller) try again.
    fn scan(path: &Path, faults: Option<&FaultInjector>) -> io::Result<WalReplay> {
        match faults.and_then(|i| i.on_io(FaultSite::WalOpen)) {
            Some(FaultAction::Error(e)) => return Err(e),
            Some(FaultAction::ShortIo) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "injected short WAL read at open",
                ));
            }
            None => {}
        }
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        let mut pos = 0usize;
        while let Some((seq, batch, len)) = decode_frame(&bytes[pos..]) {
            entries.push((seq, batch));
            pos += len;
        }
        Ok(WalReplay {
            entries,
            valid_bytes: pos as u64,
            bytes_truncated: (bytes.len() - pos) as u64,
        })
    }

    /// Append one batch under sequence number `seq` and fsync. This is *the*
    /// durability point: it must complete before the batch touches the graph
    /// or the segment files. The returned record carries the frame's byte
    /// length and the measured fsync latency for the telemetry layer.
    ///
    /// Failed attempts (including injected short writes that leave a partial
    /// frame on disk) are repaired by truncating back to the last durable
    /// frame before each retry, so a retried append never duplicates or
    /// interleaves frame bytes.
    pub fn append(&mut self, seq: u64, batch: &UpdateBatch) -> io::Result<WalAppend> {
        let payload = batch.to_bytes();
        let mut frame = Vec::with_capacity(WAL_HEADER_BYTES + payload.len());
        binary::put_u32(&mut frame, WAL_MAGIC);
        binary::put_u64(&mut frame, seq);
        binary::put_u32(&mut frame, payload.len() as u32);
        binary::put_u32(&mut frame, frame_crc(seq, &payload));
        frame.extend_from_slice(&payload);
        let appended = with_retries(&self.retry, self.faults.as_deref(), || {
            Self::try_append_once(&self.file, self.bytes, &frame, self.faults.as_deref())
        })?;
        self.bytes += frame.len() as u64;
        Ok(appended)
    }

    /// One append attempt: repair any partial bytes a previous attempt left,
    /// write the frame, fsync.
    fn try_append_once(
        file: &File,
        valid_bytes: u64,
        frame: &[u8],
        faults: Option<&FaultInjector>,
    ) -> io::Result<WalAppend> {
        if file.metadata()?.len() != valid_bytes {
            file.set_len(valid_bytes)?;
        }
        (&*file).seek(io::SeekFrom::Start(valid_bytes))?;
        match faults.and_then(|i| i.on_io(FaultSite::WalAppend)) {
            Some(FaultAction::Error(e)) => return Err(e),
            Some(FaultAction::ShortIo) => {
                (&*file).write_all(&frame[..frame.len() / 2])?;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short WAL append",
                ));
            }
            None => {}
        }
        (&*file).write_all(frame)?;
        match faults.and_then(|i| i.on_io(FaultSite::WalFsync)) {
            Some(FaultAction::Error(e)) => return Err(e),
            Some(FaultAction::ShortIo) => {
                return Err(io::Error::other("injected WAL fsync failure"));
            }
            None => {}
        }
        let fsync_began = std::time::Instant::now();
        file.sync_data()?;
        let fsync_nanos = fsync_began.elapsed().as_nanos() as u64;
        Ok(WalAppend {
            frame_bytes: frame.len() as u64,
            fsync_nanos,
        })
    }

    /// Current log length in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Drop every entry — called right after a snapshot covering them all
    /// landed. (Safe even if the process dies first: replay skips entries at
    /// or below the snapshot's sequence number.)
    pub fn truncate_all(&mut self) -> io::Result<()> {
        let file = &self.file;
        with_retries(&self.retry, self.faults.as_deref(), || {
            match self
                .faults
                .as_deref()
                .and_then(|i| i.on_io(FaultSite::WalTrim))
            {
                Some(FaultAction::Error(e)) => return Err(e),
                Some(FaultAction::ShortIo) => {
                    return Err(io::Error::other("injected WAL trim failure"));
                }
                None => {}
            }
            file.set_len(0)?;
            (&*file).seek(io::SeekFrom::Start(0))?;
            file.sync_data()
        })?;
        self.bytes = 0;
        Ok(())
    }
}

/// Checksum of one frame: sequence number plus payload (the header fields
/// the magic does not already pin).
fn frame_crc(seq: u64, payload: &[u8]) -> u32 {
    let mut bytes = Vec::with_capacity(8 + payload.len());
    binary::put_u64(&mut bytes, seq);
    bytes.extend_from_slice(payload);
    binary::crc32(&bytes)
}

/// Decode one frame from the front of `buf`; `None` on anything invalid
/// (short header, wrong magic, bad checksum, undecodable payload).
fn decode_frame(buf: &[u8]) -> Option<(u64, UpdateBatch, usize)> {
    let mut r = Reader::new(buf);
    if r.u32()? != WAL_MAGIC {
        return None;
    }
    let seq = r.u64()?;
    let len = r.u32()? as usize;
    let crc = r.u32()?;
    let payload = r.bytes(len)?;
    if frame_crc(seq, payload) != crc {
        return None;
    }
    let batch = UpdateBatch::from_bytes(payload)?;
    Some((seq, batch, WAL_HEADER_BYTES + len))
}

/// Fixed-layout binary encoding for snapshot-able program values. The tag is
/// recorded in the snapshot header so a restore under the wrong program type
/// fails structurally instead of reinterpreting bits.
pub trait SnapshotValue: Copy {
    /// Format tag written to (and checked against) the snapshot header.
    const TAG: u8;
    /// Append the exact bit pattern.
    fn write(self, out: &mut Vec<u8>);
    /// Read one value back.
    fn read(r: &mut Reader<'_>) -> Option<Self>;
}

impl SnapshotValue for f32 {
    const TAG: u8 = 1;
    fn write(self, out: &mut Vec<u8>) {
        binary::put_f32(out, self);
    }
    fn read(r: &mut Reader<'_>) -> Option<Self> {
        r.f32()
    }
}

/// The pair layout SpMV serves (`(numerator, count)`-style accumulators).
impl SnapshotValue for (f32, f32) {
    const TAG: u8 = 2;
    fn write(self, out: &mut Vec<u8>) {
        binary::put_f32(out, self.0);
        binary::put_f32(out, self.1);
    }
    fn read(r: &mut Reader<'_>) -> Option<Self> {
        Some((r.f32()?, r.f32()?))
    }
}

/// Everything a snapshot persists, borrowed from the live server.
pub(crate) struct SnapshotState<'a, V> {
    pub seq: u64,
    pub stats: ServerStats,
    pub graph: &'a Graph,
    pub values: &'a [V],
    pub guidance: &'a RrGuidance,
    pub owners: &'a [usize],
    pub num_parts: usize,
}

/// A decoded snapshot, owned.
pub(crate) struct LoadedSnapshot<V> {
    pub seq: u64,
    pub stats: ServerStats,
    pub graph: Graph,
    pub values: Vec<V>,
    pub guidance: RrGuidance,
    pub owners: Vec<usize>,
    pub num_parts: usize,
}

/// Write `state` atomically (temp file, fsync, rename, directory fsync) as
/// the current snapshot. Returns the file's byte length.
///
/// Both phases — materialising the temp file and renaming it into place —
/// run under the config's retry budget. A failed attempt leaves at worst a
/// stale temp file; the current snapshot is replaced only by the atomic
/// rename, so a failure here never corrupts the recovery point.
pub(crate) fn write_snapshot<V: SnapshotValue>(
    config: &DurabilityConfig,
    state: &SnapshotState<'_, V>,
    faults: Option<&FaultInjector>,
) -> io::Result<u64> {
    let mut out = Vec::new();
    binary::put_u32(&mut out, SNAPSHOT_MAGIC);
    binary::put_u32(&mut out, SNAPSHOT_VERSION);
    binary::put_u8(&mut out, V::TAG);
    binary::put_u64(&mut out, state.seq);
    binary::put_u64(&mut out, state.stats.batches_applied);
    binary::put_u64(&mut out, state.stats.total_work);
    binary::put_u64(&mut out, state.stats.total_distribution_messages);
    binary::put_u64(&mut out, state.stats.full_recomputes);
    binary::put_u64(&mut out, state.stats.guidance_regenerations);
    binary::encode_graph(&mut out, state.graph);
    binary::put_u64(&mut out, state.values.len() as u64);
    for &v in state.values {
        v.write(&mut out);
    }
    let g = state.guidance;
    binary::put_u64(&mut out, g.num_vertices() as u64);
    for &li in g.last_iters() {
        binary::put_u32(&mut out, li);
    }
    for &l in g.levels() {
        binary::put_u32(&mut out, l);
    }
    binary::put_u32(&mut out, g.max_level());
    binary::put_u64(&mut out, g.generation_work());
    binary::put_u8(&mut out, g.used_fallback_root() as u8);
    binary::put_u64(&mut out, state.num_parts as u64);
    binary::put_u64(&mut out, state.owners.len() as u64);
    for &o in state.owners {
        binary::put_u32(&mut out, o as u32);
    }
    // Remap section (v2): the graph's adjacency was encoded physically exact
    // above, so only the external→physical bijection travels here.
    match state.graph.id_remap() {
        Some(remap) if !remap.is_identity() => {
            binary::put_u8(&mut out, 1);
            binary::put_u64(&mut out, remap.len() as u64);
            for ext in 0..remap.len() as u32 {
                binary::put_u32(&mut out, remap.to_new(ext));
            }
        }
        _ => binary::put_u8(&mut out, 0),
    }
    let crc = binary::crc32(&out);
    binary::put_u32(&mut out, crc);

    let tmp = config.snapshot_tmp_path();
    with_retries(&config.retry, faults, || {
        match faults.and_then(|i| i.on_io(FaultSite::SnapshotWrite)) {
            Some(FaultAction::Error(e)) => return Err(e),
            Some(FaultAction::ShortIo) => {
                // A short write leaves a torn temp file behind; the retry
                // recreates it from scratch, so nothing durable is harmed.
                let mut file = File::create(&tmp)?;
                file.write_all(&out[..out.len() / 2])?;
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "injected short snapshot write",
                ));
            }
            None => {}
        }
        let mut file = File::create(&tmp)?;
        file.write_all(&out)?;
        file.sync_all()
    })?;
    with_retries(&config.retry, faults, || {
        match faults.and_then(|i| i.on_io(FaultSite::SnapshotRename)) {
            Some(FaultAction::Error(e)) => return Err(e),
            Some(FaultAction::ShortIo) => {
                return Err(io::Error::other("injected snapshot rename failure"));
            }
            None => {}
        }
        std::fs::rename(&tmp, config.snapshot_path())?;
        sync_dir(&config.dir)
    })?;
    Ok(out.len() as u64)
}

/// Load and validate the current snapshot.
///
/// The read runs under the config's retry budget; an injected short read
/// delivers a truncated buffer, which the trailing checksum then rejects as
/// a typed [`DurabilityError::CorruptSnapshot`] — corruption stays a value,
/// never a panic.
pub(crate) fn read_snapshot<V: SnapshotValue>(
    config: &DurabilityConfig,
    faults: Option<&FaultInjector>,
) -> Result<LoadedSnapshot<V>, DurabilityError> {
    let path = config.snapshot_path();
    let bytes = with_retries(&config.retry, faults, || {
        let short = match faults.and_then(|i| i.on_io(FaultSite::SnapshotRead)) {
            Some(FaultAction::Error(e)) => return Err(e),
            Some(FaultAction::ShortIo) => true,
            None => false,
        };
        let mut b = match std::fs::read(&path) {
            Ok(b) => Some(b),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        if short {
            if let Some(buf) = b.as_mut() {
                buf.truncate(buf.len() / 2);
            }
        }
        Ok(b)
    })?;
    let bytes = match bytes {
        Some(b) => b,
        None => return Err(DurabilityError::MissingSnapshot(path)),
    };
    let corrupt = |reason: &'static str| DurabilityError::CorruptSnapshot { reason };
    if bytes.len() < 4 {
        return Err(corrupt("shorter than its checksum"));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if binary::crc32(body) != stored_crc {
        return Err(corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(body);
    if r.u32() != Some(SNAPSHOT_MAGIC) {
        return Err(corrupt("bad magic"));
    }
    let version = r.u32().ok_or_else(|| corrupt("truncated header"))?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(corrupt("unknown version"));
    }
    if r.u8() != Some(V::TAG) {
        return Err(corrupt("value-type tag mismatch"));
    }
    let seq = r.u64().ok_or_else(|| corrupt("truncated header"))?;
    let stats = ServerStats {
        batches_applied: r.u64().ok_or_else(|| corrupt("truncated stats"))?,
        total_work: r.u64().ok_or_else(|| corrupt("truncated stats"))?,
        total_distribution_messages: r.u64().ok_or_else(|| corrupt("truncated stats"))?,
        full_recomputes: r.u64().ok_or_else(|| corrupt("truncated stats"))?,
        guidance_regenerations: r.u64().ok_or_else(|| corrupt("truncated stats"))?,
    };
    let graph = binary::decode_graph(&mut r).ok_or_else(|| corrupt("invalid graph section"))?;
    let n = graph.num_vertices();
    let value_count = r.u64().ok_or_else(|| corrupt("truncated values"))? as usize;
    if value_count != n {
        return Err(corrupt("value count does not match the graph"));
    }
    let mut values = Vec::with_capacity(value_count);
    for _ in 0..value_count {
        values.push(V::read(&mut r).ok_or_else(|| corrupt("truncated values"))?);
    }
    let gn = r.u64().ok_or_else(|| corrupt("truncated guidance"))? as usize;
    if gn != n {
        return Err(corrupt("guidance size does not match the graph"));
    }
    let mut last_iter = Vec::with_capacity(gn);
    for _ in 0..gn {
        last_iter.push(r.u32().ok_or_else(|| corrupt("truncated guidance"))?);
    }
    let mut level = Vec::with_capacity(gn);
    for _ in 0..gn {
        level.push(r.u32().ok_or_else(|| corrupt("truncated guidance"))?);
    }
    let max_level = r.u32().ok_or_else(|| corrupt("truncated guidance"))?;
    let work = r.u64().ok_or_else(|| corrupt("truncated guidance"))?;
    let fallback = match r.u8() {
        Some(0) => false,
        Some(1) => true,
        _ => return Err(corrupt("invalid fallback-root flag")),
    };
    let guidance = RrGuidance::from_parts(last_iter, level, max_level, work, fallback);
    let num_parts = r.u64().ok_or_else(|| corrupt("truncated partitioning"))? as usize;
    let owner_count = r.u64().ok_or_else(|| corrupt("truncated partitioning"))? as usize;
    if owner_count != n || num_parts == 0 {
        return Err(corrupt("partitioning does not match the graph"));
    }
    let mut owners = Vec::with_capacity(owner_count);
    for _ in 0..owner_count {
        let o = r.u32().ok_or_else(|| corrupt("truncated partitioning"))? as usize;
        if o >= num_parts {
            return Err(corrupt("owner outside the node range"));
        }
        owners.push(o);
    }
    let graph = if version >= 2 {
        match r.u8() {
            Some(0) => graph,
            Some(1) => {
                let len = r.u64().ok_or_else(|| corrupt("truncated remap"))? as usize;
                if len > n {
                    return Err(corrupt("remap larger than the graph"));
                }
                let mut forward = Vec::with_capacity(len);
                for _ in 0..len {
                    let p = r.u32().ok_or_else(|| corrupt("truncated remap"))?;
                    if p as usize >= len {
                        return Err(corrupt("remap entry out of range"));
                    }
                    forward.push(p);
                }
                let mut seen = vec![false; len];
                for &p in &forward {
                    if std::mem::replace(&mut seen[p as usize], true) {
                        return Err(corrupt("remap is not a bijection"));
                    }
                }
                graph.with_remap(slfe_graph::IdRemap::from_forward(forward))
            }
            _ => return Err(corrupt("invalid remap flag")),
        }
    } else {
        graph
    };
    if !r.is_empty() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(LoadedSnapshot {
        seq,
        stats,
        graph,
        values,
        guidance,
        owners,
        num_parts,
    })
}

/// fsync the directory so a just-renamed snapshot survives power loss.
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// The live durability state a durable [`crate::DeltaServer`] carries.
#[derive(Debug)]
pub(crate) struct DurabilityState {
    pub config: DurabilityConfig,
    pub wal: Wal,
    /// Sequence number of the last batch appended to the WAL.
    pub seq: u64,
    /// Sequence number the current snapshot covers.
    pub snapshot_seq: u64,
    pub counters: DurabilityCounters,
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::rng::SplitMix64;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("slfe-durability-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn random_batch(rng: &mut SplitMix64, ops: usize) -> UpdateBatch {
        let mut batch = UpdateBatch::new();
        for _ in 0..ops {
            let src = rng.range_u32(0, 500);
            let dst = rng.range_u32(0, 500);
            if rng.next_f64() < 0.7 {
                batch.insert(src, dst, rng.range_f32(0.1, 9.0));
            } else {
                batch.delete(src, dst);
            }
        }
        batch
    }

    #[test]
    fn wal_round_trips_seeded_random_batches() {
        for seed in 0..6u64 {
            let dir = tmp_dir(&format!("roundtrip-{seed}"));
            let path = dir.join("wal.log");
            let mut rng = SplitMix64::seed_from_u64(seed);
            let mut written = Vec::new();
            {
                let (mut wal, replay) = Wal::open(&path).unwrap();
                assert!(replay.entries.is_empty());
                for seq in 1..=10u64 {
                    let batch = random_batch(&mut rng, (seq as usize % 5) * 7);
                    wal.append(seq, &batch).unwrap();
                    written.push((seq, batch));
                }
            }
            let (_, replay) = Wal::open(&path).unwrap();
            assert_eq!(replay.bytes_truncated, 0);
            assert_eq!(replay.entries.len(), written.len());
            for ((seq, batch), (wseq, wbatch)) in replay.entries.iter().zip(&written) {
                assert_eq!(seq, wseq);
                assert_eq!(
                    batch.stages().collect::<Vec<_>>(),
                    wbatch.stages().collect::<Vec<_>>()
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn torn_tail_truncates_to_the_last_valid_entry() {
        let dir = tmp_dir("torn");
        let path = dir.join("wal.log");
        let mut rng = SplitMix64::seed_from_u64(9);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for seq in 1..=4u64 {
                wal.append(seq, &random_batch(&mut rng, 12)).unwrap();
            }
        }
        let full = std::fs::read(&path).unwrap();
        // Chop the file at every possible byte boundary: recovery must keep
        // exactly the frames that fit, discard the tail, and never panic.
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (_, replay) = Wal::open(&path).unwrap();
            assert_eq!(
                replay.valid_bytes + replay.bytes_truncated,
                cut as u64,
                "cut {cut}"
            );
            assert!(replay.entries.len() <= 4);
            // Opening truncated the file to the valid prefix on disk.
            assert_eq!(std::fs::metadata(&path).unwrap().len(), replay.valid_bytes);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flips_are_detected_and_cut_the_log_there() {
        let dir = tmp_dir("flip");
        let path = dir.join("wal.log");
        let mut rng = SplitMix64::seed_from_u64(11);
        let mut frame_starts = vec![0u64];
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for seq in 1..=3u64 {
                wal.append(seq, &random_batch(&mut rng, 10)).unwrap();
                frame_starts.push(wal.bytes());
            }
        }
        let full = std::fs::read(&path).unwrap();
        for i in (0..full.len()).step_by(7) {
            let mut bad = full.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            let (_, replay) = Wal::open(&path).unwrap();
            // The flip invalidates the frame containing byte i; every entry
            // before that frame survives, nothing after it is trusted.
            let hit_frame = frame_starts.iter().filter(|&&s| s <= i as u64).count() - 1;
            assert_eq!(replay.entries.len(), hit_frame, "flip at byte {i}");
            assert_eq!(replay.valid_bytes, frame_starts[hit_frame]);
            assert!(replay.bytes_truncated > 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_all_empties_the_log_for_new_appends() {
        let dir = tmp_dir("trim");
        let path = dir.join("wal.log");
        let mut rng = SplitMix64::seed_from_u64(13);
        let (mut wal, _) = Wal::open(&path).unwrap();
        for seq in 1..=5u64 {
            wal.append(seq, &random_batch(&mut rng, 8)).unwrap();
        }
        wal.truncate_all().unwrap();
        assert_eq!(wal.bytes(), 0);
        // Appends after the trim land at the file start with later seqs.
        wal.append(6, &random_batch(&mut rng, 8)).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0].0, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
