/root/repo/target/debug/deps/slfe-d9eae6853c5ec2fa.d: src/lib.rs

/root/repo/target/debug/deps/libslfe-d9eae6853c5ec2fa.rmeta: src/lib.rs

src/lib.rs:
