//! # slfe-delta
//!
//! Incremental recomputation and update serving for the SLFE reproduction —
//! the subsystem that keeps a program's answer *live* while the graph changes,
//! instead of recomputing every fixpoint from scratch.
//!
//! The paper defers dynamic graphs to future work; this crate composes the
//! pieces the rest of the workspace provides into a serving loop:
//!
//! 1. **Mutation** — [`slfe_graph::UpdateBatch`] stages edge insertions and
//!    deletions; [`slfe_graph::Graph::apply_batch`] rebuilds only the touched
//!    adjacency ranges and reports the *dirty* endpoints.
//! 2. **Guidance repair** — [`slfe_core::RrGuidance::repair`] patches the
//!    redundancy-reduction levels for the region reachable from the dirty set,
//!    falling back to full regeneration past a dirty-fraction threshold.
//! 3. **Warm re-convergence** — [`slfe_core::SlfeEngine::run_from`] restarts
//!    the program from the previous fixpoint, re-converging only what the batch
//!    disturbed (support-invalidated region + dirty frontier for monotone
//!    min/max programs; delta-restart for arithmetic programs).
//! 4. **Serving** — [`DeltaServer`] owns the current graph version, guidance
//!    and fixpoint, applies batches, accounts the simulated cost of shipping
//!    each batch to its partitions, and answers point and top-k value queries
//!    between batches.
//! 5. **Durability** — [`durability`] adds a checksummed write-ahead log
//!    (fsync'd before any state changes), atomic fixpoint snapshots with
//!    segment-file compaction riding the snapshot path, and kill-9 recovery
//!    ([`DeltaServer::open`]) that replays the WAL suffix to values
//!    bit-identical to an uninterrupted run.
//! 6. **Graceful degradation** — [`health`] types the failure contract for
//!    I/O errors (not just `kill -9`): transient faults are absorbed by
//!    bounded retries, unreadable segments are quarantined and rebuilt,
//!    failed snapshots degrade health while serving continues, and
//!    unrecoverable write failures flip the server into a read-only
//!    [`ServingMode`] that still answers queries — driven deterministically
//!    by [`slfe_graph::FaultPlan`] schedules in the crashpoint sweep.
//! 7. **Concurrent serving** — [`frontend`] wraps the server in a
//!    thread-safe front end: immutable published versions for
//!    snapshot-consistent reads, a bounded admission queue with typed load
//!    shedding, group commit sized by the dirty-fraction economics, query
//!    deadlines, and poison-batch quarantine.
//!
//! Determinism: everything the batch did not disturb keeps its bit pattern, and
//! the re-converged region is computed by the same deterministic engine paths as
//! a cold run — so a [`DeltaServer`] answer for a min/max program is
//! bit-for-bit the answer a from-scratch run on the current graph would give
//! (within convergence tolerance for arithmetic programs).

pub mod durability;
pub mod frontend;
pub mod health;
pub mod server;

pub use durability::{DurabilityConfig, DurabilityError, SnapshotValue, Wal, WalReplay};
pub use frontend::{
    AdmitError, Answer, DeadLetter, EdgeUpdate, FrontendConfig, FrontendCounterSnapshot,
    FrontendHandle, PublishedVersion, QueryError, ServingFrontend,
};
pub use health::{ApplyError, Health, ServingMode};
pub use server::{BatchOutcome, DeltaServer, ServerConfig, ServerStats};
// Re-exported so serving code can stage batches without importing slfe-graph.
pub use slfe_graph::{BatchEffect, UpdateBatch};
