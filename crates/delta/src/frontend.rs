//! Overload-safe concurrent serving on top of [`DeltaServer`].
//!
//! The server itself is `&mut self` end to end: a point query issued while a
//! batch applies would block (or worse, observe a half-built version). This
//! module separates the two sides the way a production service does:
//!
//! * **Publication** — after every applied batch the single writer thread
//!   publishes the new state as an immutable [`PublishedVersion`] behind an
//!   `RwLock<Arc<_>>`. Readers clone the `Arc` (two atomic ops under a
//!   briefly-held read lock) and answer point / multi-point / top-k queries
//!   against that frozen version — *snapshot consistency*: every answer is
//!   bit-identical to some version that was fully published, never a torn
//!   intermediate. The version pins its own storage generation
//!   ([`GraphStorage`] `Arc`), so out-of-core state cannot be compacted out
//!   from under an in-flight reader.
//! * **Admission** — updates enter a **bounded** queue. When it is full, or
//!   the published health is read-only, [`FrontendHandle::submit`] sheds with
//!   a typed [`AdmitError`] carrying the queue depth and a `retry_after`
//!   hint derived from the last apply latency — callers back off instead of
//!   queueing unboundedly.
//! * **Group commit** — the writer drains up to a batch-size limit derived
//!   from the server's dirty-fraction economics (each edge update dirties at
//!   most its two endpoints; the group is capped well below the
//!   full-recompute threshold) and coalesces the drained updates into one
//!   [`UpdateBatch`], amortizing WAL fsync and re-convergence.
//! * **Deadlines** — every query takes an optional time budget and returns
//!   [`QueryError::DeadlineExceeded`] instead of an arbitrarily late answer.
//! * **Quarantine** — a batch whose apply fails with the same
//!   [`crate::ApplyError::kind`] twice in a row is moved to a dead-letter list and
//!   the pipeline continues; one poison batch cannot wedge every batch
//!   behind it. Between attempts the writer probes
//!   [`DeltaServer::try_resume_writes`], so a transiently read-only server
//!   heals instead of dead-lettering everything.
//!
//! Everything observable surfaces in [`FrontendHandle::metrics_registry`]:
//! queue depth / capacity / high-water gauges, shed / deadline / quarantine
//! counters, the published-version sequence number, and read-latency
//! percentiles from a sharded [`LatencyHistogram`].

use crate::server::{DeltaServer, ServerStats};
use crate::ServingMode;
use slfe_core::GraphProgram;
use slfe_graph::{EdgeWeight, Graph, GraphStorage, UpdateBatch, VertexId, INVALID_VERTEX};
use slfe_metrics::{LatencyHistogram, MetricsRegistry, Telemetry, HIST_QUERY_LATENCY};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::durability::SnapshotValue;

/// Read-latency histogram shards; readers stripe across them so the
/// histogram lock never serializes the read path.
const LATENCY_SHARDS: usize = 8;

/// How long the writer sleeps on an empty queue before re-checking for
/// shutdown and probing a read-only server for resumption.
const IDLE_TICK: Duration = Duration::from_millis(100);

/// One client edge update, the unit of admission. The writer coalesces many
/// of these into a single [`UpdateBatch`] (group commit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EdgeUpdate {
    /// Upsert edge `(src, dst)` to `weight`.
    Insert {
        /// Source endpoint.
        src: VertexId,
        /// Destination endpoint.
        dst: VertexId,
        /// New edge weight.
        weight: EdgeWeight,
    },
    /// Remove edge `(src, dst)` if present.
    Delete {
        /// Source endpoint.
        src: VertexId,
        /// Destination endpoint.
        dst: VertexId,
    },
}

impl EdgeUpdate {
    fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeUpdate::Insert { src, dst, .. } | EdgeUpdate::Delete { src, dst } => (src, dst),
        }
    }

    fn stage(&self, batch: &mut UpdateBatch) {
        match *self {
            EdgeUpdate::Insert { src, dst, weight } => {
                batch.insert(src, dst, weight);
            }
            EdgeUpdate::Delete { src, dst } => {
                batch.delete(src, dst);
            }
        }
    }
}

/// Why an update was refused at admission. Shedding is *typed*: the caller
/// always learns whether to retry (and roughly when) or to stop submitting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitError {
    /// The bounded update queue is full (or squeezed by degraded health).
    /// Retry after `retry_after` — a hint scaled from the last batch-apply
    /// latency and the current backlog.
    Overloaded {
        /// Queue depth observed at refusal.
        queue_depth: usize,
        /// Suggested client back-off before retrying.
        retry_after: Duration,
    },
    /// The published health says the update side is disabled; submitting
    /// would only park updates behind a wall. Queries still work.
    ReadOnly {
        /// Why the server went read-only.
        reason: String,
    },
    /// The update references the `INVALID_VERTEX` sentinel and can never be
    /// staged; rejecting it here keeps the writer thread panic-free.
    InvalidUpdate {
        /// Which endpoint was invalid.
        reason: &'static str,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::Overloaded {
                queue_depth,
                retry_after,
            } => write!(
                f,
                "update shed: queue depth {queue_depth}, retry after {retry_after:?}"
            ),
            AdmitError::ReadOnly { reason } => {
                write!(f, "update shed: server is read-only: {reason}")
            }
            AdmitError::InvalidUpdate { reason } => write!(f, "update rejected: {reason}"),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Why a query returned no answer. The only variant today is the deadline;
/// queries never block on the writer, so there is no "busy" refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// The time budget the caller attached ran out before the answer was
    /// assembled.
    DeadlineExceeded {
        /// Time actually spent.
        elapsed: Duration,
        /// The budget that was attached.
        budget: Duration,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::DeadlineExceeded { elapsed, budget } => {
                write!(f, "deadline exceeded: {elapsed:?} spent of {budget:?}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// A query answer stamped with the sequence number of the published version
/// it was computed from, so callers (and the chaos proof) can match every
/// answer to exactly one version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Answer<T> {
    /// Sequence number of the [`PublishedVersion`] this answer came from.
    pub seq: u64,
    /// The answer itself.
    pub value: T,
}

/// A quarantined batch: it failed with the same [`crate::ApplyError::kind`] twice
/// in a row (or exhausted its attempt budget) and was removed from the
/// pipeline so later batches keep flowing.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// The poison batch, kept for offline inspection or replay.
    pub batch: UpdateBatch,
    /// Display form of the last apply error.
    pub error: String,
    /// Stable kind of the last apply error (see [`crate::ApplyError::kind`]).
    pub kind: &'static str,
    /// Apply attempts spent before quarantining.
    pub attempts: u32,
}

/// One immutable published graph version. Readers hold an `Arc` of this and
/// answer every query from it; the writer never mutates a published version.
#[derive(Debug)]
pub struct PublishedVersion<V> {
    seq: u64,
    values: Arc<[V]>,
    stats: ServerStats,
    mode: ServingMode,
    degraded: bool,
    read_only_reason: Option<String>,
    converged: bool,
    /// Pins this version's storage generation: segment files referenced by
    /// these values outlive the version even if the writer compacts.
    storage: Option<Arc<GraphStorage>>,
}

impl<V: Copy> PublishedVersion<V> {
    /// Monotonic version number; 0 is the initial cold-run fixpoint.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The full frozen value vector.
    pub fn values(&self) -> &[V] {
        &self.values
    }

    /// Value of one vertex, `None` when out of range for this version.
    pub fn value(&self, v: VertexId) -> Option<V> {
        self.values.get(v as usize).copied()
    }

    /// Serving statistics frozen at publication.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Serving mode frozen at publication.
    pub fn mode(&self) -> ServingMode {
        self.mode
    }

    /// Whether any health guarantee was weakened at publication.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Why the server was read-only at publication, when it was.
    pub fn read_only_reason(&self) -> Option<&str> {
        self.read_only_reason.as_deref()
    }

    /// Whether the re-convergence producing this version reached a fixpoint.
    pub fn converged(&self) -> bool {
        self.converged
    }

    /// The storage generation this version pins, when serving out-of-core.
    pub fn storage(&self) -> Option<&Arc<GraphStorage>> {
        self.storage.as_ref()
    }

    /// The `k` vertices ranked by `compare` (greatest first), ties broken by
    /// vertex id ascending — the same deterministic order as
    /// [`DeltaServer::top_k_by`], computed against this frozen version.
    pub fn top_k_by(
        &self,
        k: usize,
        mut compare: impl FnMut(&V, &V) -> std::cmp::Ordering,
    ) -> Vec<(VertexId, V)> {
        let mut ranked: Vec<(VertexId, V)> = self
            .values
            .iter()
            .enumerate()
            .map(|(v, &value)| (v as VertexId, value))
            .collect();
        ranked.sort_by(|a, b| compare(&b.1, &a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }
}

impl<V: Copy + PartialOrd> PublishedVersion<V> {
    /// [`PublishedVersion::top_k_by`] with the natural order.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, V)> {
        self.top_k_by(k, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

/// Knobs of the serving front end. The defaults serve small test graphs
/// well; `serving_bench` scales them with the workload.
#[derive(Debug, Clone)]
pub struct FrontendConfig {
    /// Bound of the update queue; admission sheds above it.
    pub queue_capacity: usize,
    /// Hard cap on updates coalesced into one group-commit batch.
    pub group_commit_max_updates: usize,
    /// Fraction of the server's full-recompute dirty budget one group may
    /// spend. Each update dirties at most its two endpoints, so the group
    /// size limit is `full_recompute_dirty_fraction * headroom * n / 2` —
    /// group commit amortizes fsync without tripping the full-recompute
    /// fallback it is meant to avoid.
    pub group_commit_dirty_headroom: f64,
    /// Apply attempts (each preceded by a resume probe when read-only)
    /// before a failing batch is quarantined regardless of error kinds.
    pub max_apply_attempts: u32,
    /// Resume probes after a quarantine before giving up until the next
    /// idle tick.
    pub resume_max_attempts: u32,
    /// Sleep between those resume probes.
    pub resume_backoff: Duration,
    /// Floor of the `retry_after` hint in [`AdmitError::Overloaded`].
    pub min_retry_after: Duration,
    /// Record every applied batch and published version so tests and
    /// benches can replay the exact sequence on a single-threaded oracle.
    /// Off by default: serving keeps O(1) memory.
    pub record_history: bool,
}

impl Default for FrontendConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            group_commit_max_updates: 256,
            group_commit_dirty_headroom: 0.5,
            max_apply_attempts: 3,
            resume_max_attempts: 8,
            resume_backoff: Duration::from_millis(1),
            min_retry_after: Duration::from_millis(1),
            record_history: false,
        }
    }
}

/// Live counters of the front end, all monotone except the gauges.
#[derive(Debug, Default)]
struct FrontendCounters {
    updates_submitted: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_read_only: AtomicU64,
    rejected_invalid: AtomicU64,
    queries: AtomicU64,
    deadline_exceeded: AtomicU64,
    batches_committed: AtomicU64,
    updates_coalesced: AtomicU64,
    batches_quarantined: AtomicU64,
    apply_retries: AtomicU64,
    resume_attempts: AtomicU64,
    queue_high_water: AtomicU64,
    /// Nanoseconds the most recent apply took; feeds the retry_after hint.
    last_apply_nanos: AtomicU64,
}

/// Point-in-time copy of every counter, for tests and the bench.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrontendCounterSnapshot {
    /// Updates accepted into the queue.
    pub updates_submitted: u64,
    /// Updates shed with [`AdmitError::Overloaded`].
    pub shed_overloaded: u64,
    /// Updates shed with [`AdmitError::ReadOnly`].
    pub shed_read_only: u64,
    /// Updates rejected with [`AdmitError::InvalidUpdate`].
    pub rejected_invalid: u64,
    /// Queries answered or refused.
    pub queries: u64,
    /// Queries refused with [`QueryError::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Group-commit batches applied and published.
    pub batches_committed: u64,
    /// Updates drained from the queue into group-commit batches.
    pub updates_coalesced: u64,
    /// Batches moved to the dead-letter list.
    pub batches_quarantined: u64,
    /// Apply attempts beyond the first, across all batches.
    pub apply_retries: u64,
    /// [`DeltaServer::try_resume_writes`] probes issued by the writer.
    pub resume_attempts: u64,
    /// Deepest the queue has ever been.
    pub queue_high_water: u64,
}

struct UpdateQueue {
    pending: VecDeque<EdgeUpdate>,
    shutdown: bool,
}

/// History of one committed batch, kept only under
/// [`FrontendConfig::record_history`].
struct CommitRecord<V> {
    batch: UpdateBatch,
    version: Arc<PublishedVersion<V>>,
}

/// State shared between the writer thread and every [`FrontendHandle`].
struct FrontendShared<V> {
    published: RwLock<Arc<PublishedVersion<V>>>,
    queue: Mutex<UpdateQueue>,
    work_ready: Condvar,
    counters: FrontendCounters,
    read_latency: [Mutex<LatencyHistogram>; LATENCY_SHARDS],
    latency_cursor: AtomicUsize,
    apply_latency: Mutex<LatencyHistogram>,
    dead_letters: Mutex<Vec<DeadLetter>>,
    history: Mutex<Vec<CommitRecord<V>>>,
    telemetry: Arc<Telemetry>,
    config: FrontendConfig,
    /// Updates per group commit, derived once from the graph size and the
    /// server's dirty-fraction threshold.
    group_limit: usize,
}

impl<V: Copy> FrontendShared<V> {
    fn published(&self) -> Arc<PublishedVersion<V>> {
        Arc::clone(&self.published.read().unwrap())
    }

    fn publish(&self, version: PublishedVersion<V>) -> Arc<PublishedVersion<V>> {
        let version = Arc::new(version);
        *self.published.write().unwrap() = Arc::clone(&version);
        version
    }

    fn record_read_latency(&self, nanos: u64) {
        let shard = self.latency_cursor.fetch_add(1, Ordering::Relaxed) % LATENCY_SHARDS;
        self.read_latency[shard].lock().unwrap().record(nanos);
        self.telemetry.record_ns(HIST_QUERY_LATENCY, nanos);
    }

    fn merged_read_latency(&self) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in &self.read_latency {
            merged += shard.lock().unwrap().clone();
        }
        merged
    }
}

/// Cheap, cloneable query/submit endpoint. Handles stay valid after
/// [`ServingFrontend::shutdown`]; they keep answering from the last
/// published version (submissions shed once the queue is gone).
pub struct FrontendHandle<V> {
    shared: Arc<FrontendShared<V>>,
}

impl<V> Clone for FrontendHandle<V> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<V: Copy> FrontendHandle<V> {
    /// The current published version — the snapshot every in-flight query
    /// on this handle would answer from.
    pub fn published(&self) -> Arc<PublishedVersion<V>> {
        self.shared.published()
    }

    /// Admit one update into the bounded queue, or shed typed.
    ///
    /// Sheds [`AdmitError::ReadOnly`] while the published health has the
    /// update side disabled, and [`AdmitError::Overloaded`] when the queue
    /// is full — at half capacity already when the published version is
    /// degraded, so a struggling server sees its backlog squeezed rather
    /// than grown.
    pub fn submit(&self, update: EdgeUpdate) -> Result<(), AdmitError> {
        let shared = &self.shared;
        let (src, dst) = update.endpoints();
        if src == INVALID_VERTEX || dst == INVALID_VERTEX {
            shared
                .counters
                .rejected_invalid
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::InvalidUpdate {
                reason: "edge endpoint is the INVALID_VERTEX sentinel",
            });
        }
        let published = shared.published();
        if published.mode() == ServingMode::ReadOnly {
            shared
                .counters
                .shed_read_only
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::ReadOnly {
                reason: published
                    .read_only_reason()
                    .unwrap_or("unknown")
                    .to_string(),
            });
        }
        let capacity = if published.is_degraded() {
            (shared.config.queue_capacity / 2).max(1)
        } else {
            shared.config.queue_capacity
        };
        let mut queue = shared.queue.lock().unwrap();
        let depth = queue.pending.len();
        if queue.shutdown || depth >= capacity {
            drop(queue);
            shared
                .counters
                .shed_overloaded
                .fetch_add(1, Ordering::Relaxed);
            return Err(AdmitError::Overloaded {
                queue_depth: depth,
                retry_after: self.retry_after_hint(depth),
            });
        }
        queue.pending.push_back(update);
        let depth = queue.pending.len() as u64;
        drop(queue);
        shared
            .counters
            .updates_submitted
            .fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .queue_high_water
            .fetch_max(depth, Ordering::Relaxed);
        shared.work_ready.notify_all();
        Ok(())
    }

    /// Back-off hint: the deeper the backlog, the more apply rounds it
    /// takes to drain, each costing about the last observed apply latency.
    fn retry_after_hint(&self, depth: usize) -> Duration {
        let shared = &self.shared;
        let last_apply = shared.counters.last_apply_nanos.load(Ordering::Relaxed);
        let rounds = (depth / shared.group_limit.max(1)) as u64 + 1;
        let hint = Duration::from_nanos(last_apply.saturating_mul(rounds));
        hint.max(shared.config.min_retry_after)
    }

    /// Value of one vertex in the current published version.
    pub fn point(
        &self,
        v: VertexId,
        deadline: Option<Duration>,
    ) -> Result<Answer<Option<V>>, QueryError> {
        let start = Instant::now();
        let version = self.shared.published();
        let answer = Answer {
            seq: version.seq(),
            value: version.value(v),
        };
        self.finish_query(start, deadline)?;
        Ok(answer)
    }

    /// Values of several vertices, all from one snapshot (multi-source
    /// consistency: no version change between elements).
    pub fn multi_point(
        &self,
        vertices: &[VertexId],
        deadline: Option<Duration>,
    ) -> Result<Answer<Vec<Option<V>>>, QueryError> {
        let start = Instant::now();
        let version = self.shared.published();
        let values = vertices.iter().map(|&v| version.value(v)).collect();
        self.finish_query(start, deadline)?;
        Ok(Answer {
            seq: version.seq(),
            value: values,
        })
    }

    /// Top-k by `compare` against the current published version.
    pub fn top_k_by(
        &self,
        k: usize,
        compare: impl FnMut(&V, &V) -> std::cmp::Ordering,
        deadline: Option<Duration>,
    ) -> Result<Answer<Vec<(VertexId, V)>>, QueryError> {
        let start = Instant::now();
        let version = self.shared.published();
        self.check_deadline(start, deadline)?;
        let ranked = version.top_k_by(k, compare);
        self.finish_query(start, deadline)?;
        Ok(Answer {
            seq: version.seq(),
            value: ranked,
        })
    }

    /// Queue depth right now (racy by nature; for monitoring).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().unwrap().pending.len()
    }

    /// Quarantined batches so far, oldest first.
    pub fn dead_letters(&self) -> Vec<DeadLetter> {
        self.shared.dead_letters.lock().unwrap().clone()
    }

    /// Snapshot of every front-end counter.
    pub fn counters(&self) -> FrontendCounterSnapshot {
        let c = &self.shared.counters;
        FrontendCounterSnapshot {
            updates_submitted: c.updates_submitted.load(Ordering::Relaxed),
            shed_overloaded: c.shed_overloaded.load(Ordering::Relaxed),
            shed_read_only: c.shed_read_only.load(Ordering::Relaxed),
            rejected_invalid: c.rejected_invalid.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            batches_committed: c.batches_committed.load(Ordering::Relaxed),
            updates_coalesced: c.updates_coalesced.load(Ordering::Relaxed),
            batches_quarantined: c.batches_quarantined.load(Ordering::Relaxed),
            apply_retries: c.apply_retries.load(Ordering::Relaxed),
            resume_attempts: c.resume_attempts.load(Ordering::Relaxed),
            queue_high_water: c.queue_high_water.load(Ordering::Relaxed),
        }
    }

    /// Merged read-latency histogram across every reader.
    pub fn read_latency(&self) -> LatencyHistogram {
        self.shared.merged_read_latency()
    }

    /// Batch-apply latency histogram (the update-side latency).
    pub fn apply_latency(&self) -> LatencyHistogram {
        self.shared.apply_latency.lock().unwrap().clone()
    }

    /// Every `(batch, published version)` pair committed so far, in order.
    /// Empty unless [`FrontendConfig::record_history`] is set.
    pub fn commit_history(&self) -> Vec<(UpdateBatch, Arc<PublishedVersion<V>>)> {
        self.shared
            .history
            .lock()
            .unwrap()
            .iter()
            .map(|r| (r.batch.clone(), Arc::clone(&r.version)))
            .collect()
    }

    /// The front end's live metrics, Prometheus-style. Complements (does
    /// not duplicate) [`DeltaServer::metrics_registry`], which the writer
    /// side still owns.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let shared = &self.shared;
        let c = self.counters();
        let mut reg = MetricsRegistry::new();
        reg.gauge(
            "slfe_frontend_queue_depth",
            "Updates waiting in the bounded admission queue",
            self.queue_depth() as f64,
        );
        reg.gauge(
            "slfe_frontend_queue_capacity",
            "Bound of the admission queue (sheds above it)",
            shared.config.queue_capacity as f64,
        );
        reg.gauge(
            "slfe_frontend_queue_high_water",
            "Deepest the admission queue has ever been",
            c.queue_high_water as f64,
        );
        reg.gauge(
            "slfe_frontend_published_seq",
            "Sequence number of the currently published version",
            self.published().seq() as f64,
        );
        reg.gauge(
            "slfe_frontend_group_commit_limit",
            "Updates coalesced per batch (dirty-fraction derived)",
            shared.group_limit as f64,
        );
        reg.counter(
            "slfe_frontend_updates_submitted_total",
            "Updates accepted into the queue",
            c.updates_submitted as f64,
        );
        reg.counter_with(
            "slfe_frontend_sheds_total",
            &[("reason", "overloaded")],
            "Updates refused at admission, by reason",
            c.shed_overloaded as f64,
        );
        reg.counter_with(
            "slfe_frontend_sheds_total",
            &[("reason", "read_only")],
            "Updates refused at admission, by reason",
            c.shed_read_only as f64,
        );
        reg.counter_with(
            "slfe_frontend_sheds_total",
            &[("reason", "invalid")],
            "Updates refused at admission, by reason",
            c.rejected_invalid as f64,
        );
        reg.counter(
            "slfe_frontend_queries_total",
            "Queries answered or refused",
            c.queries as f64,
        );
        reg.counter(
            "slfe_frontend_deadline_exceeded_total",
            "Queries refused because their time budget ran out",
            c.deadline_exceeded as f64,
        );
        reg.counter(
            "slfe_frontend_batches_committed_total",
            "Group-commit batches applied and published",
            c.batches_committed as f64,
        );
        reg.counter(
            "slfe_frontend_updates_coalesced_total",
            "Updates drained from the queue into group-commit batches",
            c.updates_coalesced as f64,
        );
        reg.counter(
            "slfe_frontend_batches_quarantined_total",
            "Poison batches moved to the dead-letter list",
            c.batches_quarantined as f64,
        );
        reg.counter(
            "slfe_frontend_apply_retries_total",
            "Apply attempts beyond the first, across all batches",
            c.apply_retries as f64,
        );
        reg.counter(
            "slfe_frontend_resume_attempts_total",
            "Resume-writes probes issued by the writer",
            c.resume_attempts as f64,
        );
        let read = self.read_latency();
        reg.gauge(
            "slfe_frontend_read_latency_count",
            "Read-path latency samples recorded",
            read.count() as f64,
        );
        if let (Some(p50), Some(p99)) = (read.percentile(0.50), read.percentile(0.99)) {
            reg.gauge(
                "slfe_frontend_read_latency_p50_ns",
                "Read-path latency p50 (nanoseconds)",
                p50 as f64,
            );
            reg.gauge(
                "slfe_frontend_read_latency_p99_ns",
                "Read-path latency p99 (nanoseconds)",
                p99 as f64,
            );
        }
        reg
    }

    fn check_deadline(&self, start: Instant, deadline: Option<Duration>) -> Result<(), QueryError> {
        let Some(budget) = deadline else {
            return Ok(());
        };
        let elapsed = start.elapsed();
        if elapsed >= budget {
            self.shared
                .counters
                .deadline_exceeded
                .fetch_add(1, Ordering::Relaxed);
            self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            return Err(QueryError::DeadlineExceeded { elapsed, budget });
        }
        Ok(())
    }

    /// Final deadline check + latency/counter accounting for one query.
    fn finish_query(&self, start: Instant, deadline: Option<Duration>) -> Result<(), QueryError> {
        let elapsed = start.elapsed();
        self.shared.record_read_latency(elapsed.as_nanos() as u64);
        if let Some(budget) = deadline {
            if elapsed >= budget {
                self.shared
                    .counters
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
                return Err(QueryError::DeadlineExceeded { elapsed, budget });
            }
        }
        self.shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl<V: Copy + PartialOrd> FrontendHandle<V> {
    /// Top-k by natural order against the current published version.
    pub fn top_k(
        &self,
        k: usize,
        deadline: Option<Duration>,
    ) -> Result<Answer<Vec<(VertexId, V)>>, QueryError> {
        self.top_k_by(
            k,
            |a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal),
            deadline,
        )
    }
}

/// The serving front end: owns the writer thread that holds the
/// [`DeltaServer`], and hands out [`FrontendHandle`]s for readers and
/// update producers.
pub struct ServingFrontend<P, F>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    shared: Arc<FrontendShared<P::Value>>,
    writer: Option<JoinHandle<DeltaServer<P, F>>>,
}

impl<P, F> ServingFrontend<P, F>
where
    P: GraphProgram + Send + 'static,
    P::Value: SnapshotValue + 'static,
    F: Fn(&Graph) -> P + Send + 'static,
{
    /// Publish the server's current fixpoint as version 0 and start the
    /// writer thread. The server moves into the writer; get it back with
    /// [`ServingFrontend::shutdown`].
    pub fn spawn(server: DeltaServer<P, F>, config: FrontendConfig) -> Self {
        let group_limit = group_commit_limit(&server, &config);
        let initial = build_version(&server, 0, true);
        let shared = Arc::new(FrontendShared {
            published: RwLock::new(Arc::new(initial)),
            queue: Mutex::new(UpdateQueue {
                pending: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            counters: FrontendCounters::default(),
            read_latency: std::array::from_fn(|_| Mutex::new(LatencyHistogram::new())),
            latency_cursor: AtomicUsize::new(0),
            apply_latency: Mutex::new(LatencyHistogram::new()),
            dead_letters: Mutex::new(Vec::new()),
            history: Mutex::new(Vec::new()),
            telemetry: Arc::clone(server.telemetry_hub()),
            config,
            group_limit,
        });
        let writer_shared = Arc::clone(&shared);
        let writer = std::thread::Builder::new()
            .name("slfe-frontend-writer".into())
            .spawn(move || run_writer(server, writer_shared))
            .expect("spawn frontend writer thread");
        Self {
            shared,
            writer: Some(writer),
        }
    }

    /// A new query/submit handle (cheap; clone freely across threads).
    pub fn handle(&self) -> FrontendHandle<P::Value> {
        FrontendHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Drain the queue, stop the writer, and return the server. Updates
    /// admitted before shutdown are applied and published first, so a
    /// clean shutdown flushes.
    pub fn shutdown(mut self) -> DeltaServer<P, F> {
        self.begin_shutdown();
        self.writer
            .take()
            .expect("writer joined twice")
            .join()
            .expect("frontend writer thread panicked")
    }

    fn begin_shutdown(&self) {
        let mut queue = self.shared.queue.lock().unwrap();
        queue.shutdown = true;
        drop(queue);
        self.shared.work_ready.notify_all();
    }
}

impl<P, F> Drop for ServingFrontend<P, F>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    fn drop(&mut self) {
        if let Some(writer) = self.writer.take() {
            {
                let mut queue = self.shared.queue.lock().unwrap();
                queue.shutdown = true;
            }
            self.shared.work_ready.notify_all();
            let _ = writer.join();
        }
    }
}

/// Updates per group commit: each edge update dirties at most its two
/// endpoints, so keep one group's worst-case dirty fraction a configured
/// headroom below the server's full-recompute threshold.
fn group_commit_limit<P, F>(server: &DeltaServer<P, F>, config: &FrontendConfig) -> usize
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    let n = server.graph().num_vertices() as f64;
    let dirty_budget =
        server.config().full_recompute_dirty_fraction * config.group_commit_dirty_headroom;
    let by_economics = ((dirty_budget * n) / 2.0).floor() as usize;
    by_economics.clamp(1, config.group_commit_max_updates)
}

fn build_version<P, F>(
    server: &DeltaServer<P, F>,
    seq: u64,
    converged: bool,
) -> PublishedVersion<P::Value>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    let health = server.health();
    PublishedVersion {
        seq,
        values: server.values().to_vec().into(),
        stats: *server.stats(),
        mode: health.mode(),
        degraded: health.is_degraded(),
        read_only_reason: health.read_only_reason().map(String::from),
        converged,
        storage: server.storage().cloned(),
    }
}

/// Re-publish the current version's values with fresh health — used after
/// an apply failure or a resume, where the *data* did not change but
/// admission and monitoring must see the new mode.
fn publish_health_only<V: Copy>(
    shared: &FrontendShared<V>,
    update: impl FnOnce(&mut PublishedVersion<V>),
) {
    let current = shared.published();
    let mut next = PublishedVersion {
        seq: current.seq,
        values: Arc::clone(&current.values),
        stats: current.stats,
        mode: current.mode,
        degraded: current.degraded,
        read_only_reason: current.read_only_reason.clone(),
        converged: current.converged,
        storage: current.storage.clone(),
    };
    update(&mut next);
    shared.publish(next);
}

fn health_fields<P, F>(server: &DeltaServer<P, F>) -> (ServingMode, bool, Option<String>)
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    let h = server.health();
    (
        h.mode(),
        h.is_degraded(),
        h.read_only_reason().map(String::from),
    )
}

enum ApplyVerdict {
    Committed { converged: bool },
    Quarantined,
}

/// The writer loop: wait for work, drain a group, coalesce, apply with the
/// quarantine contract, publish. Returns the server at shutdown.
fn run_writer<P, F>(
    mut server: DeltaServer<P, F>,
    shared: Arc<FrontendShared<P::Value>>,
) -> DeltaServer<P, F>
where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P,
{
    loop {
        let drained: Vec<EdgeUpdate> = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.shutdown {
                    return server;
                }
                let (guard, timeout) = shared.work_ready.wait_timeout(queue, IDLE_TICK).unwrap();
                queue = guard;
                if timeout.timed_out()
                    && queue.pending.is_empty()
                    && !queue.shutdown
                    && server.health().is_read_only()
                {
                    // Idle and read-only: probe for resumption so a cleared
                    // obstacle (freed disk, disarmed fault) heals the server
                    // without waiting for the next submission.
                    drop(queue);
                    shared
                        .counters
                        .resume_attempts
                        .fetch_add(1, Ordering::Relaxed);
                    if server.try_resume_writes() {
                        let (mode, degraded, reason) = health_fields(&server);
                        publish_health_only(&shared, |v| {
                            v.mode = mode;
                            v.degraded = degraded;
                            v.read_only_reason = reason;
                        });
                    }
                    queue = shared.queue.lock().unwrap();
                }
            }
            let take = queue.pending.len().min(shared.group_limit);
            queue.pending.drain(..take).collect()
        };

        let mut batch = UpdateBatch::new();
        for update in &drained {
            update.stage(&mut batch);
        }
        shared
            .counters
            .updates_coalesced
            .fetch_add(drained.len() as u64, Ordering::Relaxed);
        if batch.is_empty() {
            continue;
        }

        let started = Instant::now();
        match apply_with_quarantine(&mut server, &shared, &batch) {
            ApplyVerdict::Committed { converged } => {
                let nanos = started.elapsed().as_nanos() as u64;
                shared
                    .counters
                    .last_apply_nanos
                    .store(nanos, Ordering::Relaxed);
                shared.apply_latency.lock().unwrap().record(nanos);
                let seq = shared.published().seq() + 1;
                let version = shared.publish(build_version(&server, seq, converged));
                shared
                    .counters
                    .batches_committed
                    .fetch_add(1, Ordering::Relaxed);
                if shared.config.record_history {
                    shared
                        .history
                        .lock()
                        .unwrap()
                        .push(CommitRecord { batch, version });
                }
            }
            ApplyVerdict::Quarantined => {
                // Data unchanged; publish the (likely read-only) health so
                // admission starts shedding typed instead of queueing into
                // a wall.
                let (mode, degraded, reason) = health_fields(&server);
                publish_health_only(&shared, |v| {
                    v.mode = mode;
                    v.degraded = degraded;
                    v.read_only_reason = reason;
                });
            }
        }
    }
}

/// Apply `batch` under the quarantine contract: a batch failing with the
/// same [`crate::ApplyError::kind`] twice in a row — or exhausting the attempt
/// budget — is dead-lettered so the pipeline keeps moving. Between
/// attempts (and after a quarantine) the writer probes
/// [`DeltaServer::try_resume_writes`] so a transiently read-only server
/// heals instead of poisoning every subsequent batch.
fn apply_with_quarantine<P, F>(
    server: &mut DeltaServer<P, F>,
    shared: &FrontendShared<P::Value>,
    batch: &UpdateBatch,
) -> ApplyVerdict
where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P,
{
    let mut last_kind: Option<&'static str> = None;
    let attempts = shared.config.max_apply_attempts.max(1);
    for attempt in 0..attempts {
        if server.health().is_read_only() {
            shared
                .counters
                .resume_attempts
                .fetch_add(1, Ordering::Relaxed);
            server.try_resume_writes();
        }
        match server.try_apply(batch) {
            Ok(outcome) => {
                return ApplyVerdict::Committed {
                    converged: outcome.converged,
                }
            }
            Err(e) => {
                let kind = e.kind();
                let repeated = last_kind == Some(kind);
                last_kind = Some(kind);
                if repeated || attempt + 1 == attempts {
                    quarantine(server, shared, batch, kind, &e.to_string(), attempt + 1);
                    return ApplyVerdict::Quarantined;
                }
                shared
                    .counters
                    .apply_retries
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    unreachable!("the attempt loop always returns");
}

fn quarantine<P, F>(
    server: &mut DeltaServer<P, F>,
    shared: &FrontendShared<P::Value>,
    batch: &UpdateBatch,
    kind: &'static str,
    error: &str,
    attempts: u32,
) where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    shared.dead_letters.lock().unwrap().push(DeadLetter {
        batch: batch.clone(),
        error: error.to_string(),
        kind,
        attempts,
    });
    shared
        .counters
        .batches_quarantined
        .fetch_add(1, Ordering::Relaxed);
    // Try to bring the write side back for the batches *behind* the poison
    // one: bounded probes with a small backoff.
    for _ in 0..shared.config.resume_max_attempts {
        if !server.health().is_read_only() {
            break;
        }
        shared
            .counters
            .resume_attempts
            .fetch_add(1, Ordering::Relaxed);
        if server.try_resume_writes() {
            break;
        }
        std::thread::sleep(shared.config.resume_backoff);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{DeltaServer, ServerConfig};
    use slfe_apps::sssp::SsspProgram;
    use slfe_cluster::ClusterConfig;
    use slfe_graph::{generators, stats};

    fn frontend(
        config: FrontendConfig,
    ) -> ServingFrontend<SsspProgram, impl Fn(&Graph) -> SsspProgram> {
        let graph = generators::rmat(200, 1400, 0.57, 0.19, 0.19, 5);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let server = DeltaServer::new(
            graph,
            move |_: &Graph| SsspProgram { root },
            ServerConfig {
                cluster: ClusterConfig::new(1, 1),
                ..ServerConfig::default()
            },
        );
        ServingFrontend::spawn(server, config)
    }

    #[test]
    fn spawn_publishes_version_zero_and_shutdown_returns_the_server() {
        let fe = frontend(FrontendConfig::default());
        let handle = fe.handle();
        let v0 = handle.published();
        assert_eq!(v0.seq(), 0);
        assert_eq!(v0.mode(), ServingMode::ReadWrite);
        assert!(v0.converged());
        let answer = handle.point(0, None).unwrap();
        assert_eq!(answer.seq, 0);
        assert_eq!(answer.value, v0.value(0));
        let server = fe.shutdown();
        assert_eq!(server.stats().batches_applied, 0);
        // Handles outlive the frontend and keep answering.
        assert_eq!(handle.point(0, None).unwrap().seq, 0);
    }

    #[test]
    fn submitted_updates_are_group_committed_and_published() {
        let fe = frontend(FrontendConfig {
            record_history: true,
            ..FrontendConfig::default()
        });
        let handle = fe.handle();
        for i in 0..6u32 {
            handle
                .submit(EdgeUpdate::Insert {
                    src: i % 5,
                    dst: (i + 7) % 200,
                    weight: 1.5,
                })
                .unwrap();
        }
        let server = fe.shutdown();
        assert!(server.stats().batches_applied >= 1);
        let c = handle.counters();
        assert_eq!(c.updates_submitted, 6);
        assert_eq!(c.updates_coalesced, 6);
        assert!(c.batches_committed >= 1);
        let published = handle.published();
        assert_eq!(published.seq(), c.batches_committed);
        // The published values are the server's values, bit for bit.
        assert_eq!(
            published
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        // History replays to the same place.
        let history = handle.commit_history();
        assert_eq!(history.len() as u64, c.batches_committed);
        assert_eq!(history.last().unwrap().1.seq(), published.seq());
    }

    #[test]
    fn zero_deadline_sheds_typed_and_counts() {
        let fe = frontend(FrontendConfig::default());
        let handle = fe.handle();
        let err = handle.point(0, Some(Duration::ZERO)).unwrap_err();
        assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
        let err = handle.top_k(3, Some(Duration::ZERO)).unwrap_err();
        assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
        assert!(handle.point(0, Some(Duration::from_secs(60))).is_ok());
        let c = handle.counters();
        assert_eq!(c.deadline_exceeded, 2);
        assert_eq!(c.queries, 3);
        drop(fe);
    }

    #[test]
    fn invalid_updates_are_rejected_typed_not_panicking() {
        let fe = frontend(FrontendConfig::default());
        let handle = fe.handle();
        let err = handle
            .submit(EdgeUpdate::Delete {
                src: INVALID_VERTEX,
                dst: 0,
            })
            .unwrap_err();
        assert!(matches!(err, AdmitError::InvalidUpdate { .. }));
        assert_eq!(handle.counters().rejected_invalid, 1);
        drop(fe);
    }

    #[test]
    fn full_queue_sheds_overloaded_with_depth_and_hint() {
        // A frontend whose writer is effectively parked behind a huge group
        // can still be overloaded by submitting faster than it drains; force
        // determinism by shutting the writer down first.
        let fe = frontend(FrontendConfig {
            queue_capacity: 4,
            ..FrontendConfig::default()
        });
        let handle = fe.handle();
        drop(fe); // writer gone: the queue no longer drains
        let mut shed = None;
        for i in 0..16u32 {
            if let Err(e) = handle.submit(EdgeUpdate::Insert {
                src: i % 5,
                dst: 6,
                weight: 1.0,
            }) {
                shed = Some(e);
                break;
            }
        }
        match shed.expect("a bounded queue must shed") {
            AdmitError::Overloaded {
                queue_depth,
                retry_after,
            } => {
                assert!(queue_depth <= 4);
                assert!(retry_after >= Duration::from_millis(1));
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert!(handle.counters().shed_overloaded >= 1);
    }

    #[test]
    fn group_commit_limit_respects_dirty_economics() {
        let graph = generators::rmat(100, 600, 0.57, 0.19, 0.19, 9);
        let server = DeltaServer::new(
            graph,
            |_: &Graph| SsspProgram { root: 0 },
            ServerConfig {
                cluster: ClusterConfig::new(1, 1),
                full_recompute_dirty_fraction: 0.4,
                ..ServerConfig::default()
            },
        );
        let config = FrontendConfig::default();
        // 0.4 * 0.5 headroom * 100 vertices / 2 endpoints = 10 updates.
        assert_eq!(group_commit_limit(&server, &config), 10);
        // The hard cap wins when the graph is large.
        let capped = FrontendConfig {
            group_commit_max_updates: 4,
            ..FrontendConfig::default()
        };
        assert_eq!(group_commit_limit(&server, &capped), 4);
    }

    #[test]
    fn top_k_matches_the_server_ranking() {
        let fe = frontend(FrontendConfig::default());
        let handle = fe.handle();
        let server = fe.shutdown();
        let ours = handle.top_k_by(
            5,
            |a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal),
            None,
        );
        let nearest = server.top_k_by(5, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        assert_eq!(ours.unwrap().value, nearest);
    }
}
