//! Registry of the paper's evaluation datasets as laptop-scale synthetic proxies.
//!
//! Table 4 of the paper lists seven real graphs (pokec, orkut, livejournal, wiki,
//! delicious, s-twitter, friendster) and one synthetic RMAT graph. The real files
//! are not available offline, so this module generates *proxies*: RMAT graphs whose
//! vertex count is the paper's count scaled down by [`DEFAULT_SCALE`] and whose edge
//! count preserves the paper's average degree. The skew parameters are RMAT's
//! Graph500 defaults, which reproduce the heavy-tailed structure that drives the
//! redundancy behaviour the paper measures. Every proxy is seeded deterministically
//! from the dataset name, so repeated runs (and the benchmark harness) see the same
//! graph.

use crate::generators;
use crate::graph::Graph;

/// Scale divisor applied to the paper's vertex counts (so Friendster's 65.6 M
/// vertices become ~16 K). The harness can request other scales.
pub const DEFAULT_SCALE: usize = 4000;

/// One of the paper's named datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// pokec (PK): 1.6 M vertices, 30.6 M edges, avg degree 18.8 (social).
    Pokec,
    /// orkut (OK): 3.1 M vertices, 117.2 M edges, avg degree 38.1 (social).
    Orkut,
    /// livejournal (LJ): 4.8 M vertices, 69 M edges, avg degree 14.2 (social).
    LiveJournal,
    /// wiki (WK): 12.1 M vertices, 378.1 M edges, avg degree 31.1 (hyperlink).
    Wiki,
    /// delicious (DI): 33.8 M vertices, 301.2 M edges, avg degree 8.9 (folksonomy).
    Delicious,
    /// s-twitter (ST): 11.3 M vertices, 85.3 M edges, avg degree 7.5 (social).
    STwitter,
    /// friendster (FS): 65.6 M vertices, 1.8 B edges, avg degree 27.5 (social).
    Friendster,
    /// Synthetic RMAT scale-out graph: 300 M vertices, 10 B edges, avg degree 33.3.
    Rmat,
}

impl Dataset {
    /// All seven real-graph proxies, in the order the paper's tables list them
    /// (PK, OK, LJ, WK, DI, ST, FS).
    pub const REAL_GRAPHS: [Dataset; 7] = [
        Dataset::Pokec,
        Dataset::Orkut,
        Dataset::LiveJournal,
        Dataset::Wiki,
        Dataset::Delicious,
        Dataset::STwitter,
        Dataset::Friendster,
    ];

    /// The two-letter abbreviation the paper uses in its tables.
    pub fn abbreviation(self) -> &'static str {
        match self {
            Dataset::Pokec => "PK",
            Dataset::Orkut => "OK",
            Dataset::LiveJournal => "LJ",
            Dataset::Wiki => "WK",
            Dataset::Delicious => "DI",
            Dataset::STwitter => "ST",
            Dataset::Friendster => "FS",
            Dataset::Rmat => "RMAT",
        }
    }

    /// Full dataset name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Pokec => "pokec",
            Dataset::Orkut => "orkut",
            Dataset::LiveJournal => "livejournal",
            Dataset::Wiki => "wiki",
            Dataset::Delicious => "delicious",
            Dataset::STwitter => "s-twitter",
            Dataset::Friendster => "friendster",
            Dataset::Rmat => "rmat-synthetic",
        }
    }

    /// The paper's vertex count (Table 4).
    pub fn paper_vertices(self) -> usize {
        match self {
            Dataset::Pokec => 1_600_000,
            Dataset::Orkut => 3_100_000,
            Dataset::LiveJournal => 4_800_000,
            Dataset::Wiki => 12_100_000,
            Dataset::Delicious => 33_800_000,
            Dataset::STwitter => 11_300_000,
            Dataset::Friendster => 65_600_000,
            Dataset::Rmat => 300_000_000,
        }
    }

    /// The paper's edge count (Table 4).
    pub fn paper_edges(self) -> usize {
        match self {
            Dataset::Pokec => 30_600_000,
            Dataset::Orkut => 117_200_000,
            Dataset::LiveJournal => 69_000_000,
            Dataset::Wiki => 378_100_000,
            Dataset::Delicious => 301_200_000,
            Dataset::STwitter => 85_300_000,
            Dataset::Friendster => 1_800_000_000,
            Dataset::Rmat => 10_000_000_000,
        }
    }

    /// Average degree reported in Table 4.
    pub fn paper_average_degree(self) -> f64 {
        self.paper_edges() as f64 / self.paper_vertices() as f64
    }

    /// Deterministic seed derived from the dataset name.
    fn seed(self) -> u64 {
        // FNV-1a over the name; stable across runs and platforms.
        let mut hash: u64 = 0xcbf29ce484222325;
        for b in self.name().bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
        hash
    }

    /// Build the proxy graph at [`DEFAULT_SCALE`].
    pub fn load(self) -> Graph {
        self.load_scaled(DEFAULT_SCALE)
    }

    /// Build the proxy graph with the paper's counts divided by `scale`.
    ///
    /// The proxy keeps the dataset's average degree: `edges = vertices * avg_degree`.
    pub fn load_scaled(self, scale: usize) -> Graph {
        assert!(scale > 0, "scale must be positive");
        let vertices = (self.paper_vertices() / scale).max(64);
        let edges = (vertices as f64 * self.paper_average_degree()).round() as usize;
        generators::rmat(vertices, edges, 0.57, 0.19, 0.19, self.seed())
    }
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.abbreviation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_real_graphs_have_distinct_abbreviations() {
        let mut seen = std::collections::HashSet::new();
        for d in Dataset::REAL_GRAPHS {
            assert!(seen.insert(d.abbreviation()));
        }
    }

    #[test]
    fn proxy_preserves_average_degree_roughly() {
        let d = Dataset::Pokec;
        let g = d.load_scaled(8000);
        let target = d.paper_average_degree();
        // Dedup and self-loop removal shave a few edges off; allow 25% slack.
        assert!(
            g.average_degree() > target * 0.75,
            "avg degree {} too low",
            g.average_degree()
        );
        assert!(g.average_degree() <= target * 1.05);
    }

    #[test]
    fn proxies_are_deterministic() {
        let a = Dataset::LiveJournal.load_scaled(10_000);
        let b = Dataset::LiveJournal.load_scaled(10_000);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn different_datasets_get_different_seeds() {
        assert_ne!(Dataset::Pokec.seed(), Dataset::Orkut.seed());
        assert_ne!(Dataset::Wiki.seed(), Dataset::Friendster.seed());
    }

    #[test]
    fn scaled_vertex_counts_track_paper_ratio() {
        let pk = Dataset::Pokec.load_scaled(4000);
        let fs = Dataset::Friendster.load_scaled(4000);
        // Friendster is ~41x larger than pokec in the paper; the proxies keep order.
        assert!(fs.num_vertices() > 20 * pk.num_vertices());
    }

    #[test]
    fn minimum_size_floor_applies() {
        let g = Dataset::Pokec.load_scaled(usize::MAX / 2);
        assert!(g.num_vertices() >= 64);
    }

    #[test]
    fn display_matches_abbreviation() {
        assert_eq!(Dataset::Friendster.to_string(), "FS");
        assert_eq!(Dataset::Rmat.to_string(), "RMAT");
    }

    #[test]
    fn paper_table4_average_degrees_are_close_to_reported() {
        assert!((Dataset::Pokec.paper_average_degree() - 18.8).abs() < 0.5);
        assert!((Dataset::Orkut.paper_average_degree() - 38.1).abs() < 0.5);
        assert!((Dataset::STwitter.paper_average_degree() - 7.5).abs() < 0.1);
    }
}
