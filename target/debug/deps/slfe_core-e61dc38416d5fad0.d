/root/repo/target/debug/deps/slfe_core-e61dc38416d5fad0.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs Cargo.toml

/root/repo/target/debug/deps/libslfe_core-e61dc38416d5fad0.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/rrg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
