/root/repo/target/debug/deps/slfe_core-83b6ff8d0c01d6be.d: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

/root/repo/target/debug/deps/libslfe_core-83b6ff8d0c01d6be.rmeta: crates/core/src/lib.rs crates/core/src/config.rs crates/core/src/engine.rs crates/core/src/program.rs crates/core/src/result.rs crates/core/src/rrg.rs

crates/core/src/lib.rs:
crates/core/src/config.rs:
crates/core/src/engine.rs:
crates/core/src/program.rs:
crates/core/src/result.rs:
crates/core/src/rrg.rs:
