//! Wall-clock scaling benchmark for the real multi-threaded executor.
//!
//! ```text
//! parallel_bench [--vertices N] [--degree D] [--workers 1,2,4,8] [--runs K] [--out FILE]
//! ```
//!
//! Runs two workloads on one simulated node with a growing worker pool and
//! records real wall-clock seconds into `BENCH_parallel.json`:
//!
//! * **scaling** — PageRank and SSSP on an R-MAT graph (default 120k vertices),
//!   1 worker vs N workers. `speedup_vs_1_worker` is measured wall clock;
//!   `schedule_parallelism` is total counted work divided by the busiest worker's
//!   work (what the schedule would yield on unconstrained hardware). On a machine
//!   with at least as many hardware threads as workers the two agree; the JSON
//!   records `hardware_threads` so a single-core container's numbers are read
//!   correctly.
//! * **redundancy** — SSSP with RR on vs off on a deep layered graph, wall clock,
//!   demonstrating that redundancy reduction wins in real time, not just counted
//!   work.
//!
//! All engine runs disable tracing so the measurement is the hot loop, not the
//! per-iteration bookkeeping.

use slfe_apps::{pagerank::PageRankProgram, sssp::SsspProgram};
use slfe_bench::timing::time_best_of;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, SlfeEngine};
use slfe_graph::{generators, Graph};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    degree: usize,
    workers: Vec<usize>,
    runs: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 120_000,
            degree: 15,
            workers: vec![1, 2, 4, 8],
            runs: 3,
            out: PathBuf::from("BENCH_parallel.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices =
                    value("--vertices")?.parse().map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree =
                    value("--degree")?.parse().map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--workers" => {
                options.workers = value("--workers")?
                    .split(',')
                    .map(|w| w.trim().parse().map_err(|e| format!("invalid --workers: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if options.workers.is_empty() || options.workers[0] != 1 {
                    return Err("--workers must start with 1 (the sequential baseline)".into());
                }
            }
            "--runs" => {
                options.runs = value("--runs")?.parse().map_err(|e| format!("invalid --runs: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: parallel_bench [--vertices N] [--degree D] [--workers 1,2,4] [--runs K] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// One measured configuration of the scaling sweep.
struct ScalingPoint {
    workers: usize,
    wall_seconds: f64,
    speedup_vs_1_worker: f64,
    schedule_parallelism: f64,
    iterations: u32,
    total_work: u64,
}

/// total counted work / busiest worker's counted work: the speedup the schedule
/// itself admits, independent of how many hardware threads executed it.
fn schedule_parallelism(per_worker_work: &[Vec<u64>]) -> f64 {
    let total: u64 = per_worker_work.iter().flatten().sum();
    let makespan: u64 = per_worker_work
        .iter()
        .map(|node| node.iter().copied().max().unwrap_or(0))
        .max()
        .unwrap_or(0);
    if makespan == 0 {
        1.0
    } else {
        total as f64 / makespan as f64
    }
}

fn sweep<P, F>(
    graph: &Graph,
    workers_list: &[usize],
    runs: usize,
    make_program: F,
) -> Vec<ScalingPoint>
where
    P: slfe_core::GraphProgram<Value = f32>,
    F: Fn() -> P,
{
    let mut points = Vec::new();
    let mut baseline = None;
    for &workers in workers_list {
        let config = EngineConfig::default().with_trace(false);
        let engine = SlfeEngine::build(graph, ClusterConfig::new(1, workers), config);
        let program = make_program();
        let mut last_result = None;
        let sample = time_best_of(runs, || last_result = Some(engine.run(&program)));
        let result = last_result.expect("at least one measured run");
        let base = *baseline.get_or_insert(sample.best_seconds);
        points.push(ScalingPoint {
            workers,
            wall_seconds: sample.best_seconds,
            speedup_vs_1_worker: base / sample.best_seconds.max(1e-12),
            schedule_parallelism: schedule_parallelism(&result.per_node_worker_work),
            iterations: result.stats.iterations,
            total_work: result.stats.totals.work(),
        });
        eprintln!(
            "  {workers} workers: {:.4}s wall ({:.2}x vs 1 worker, schedule parallelism {:.2}x)",
            sample.best_seconds,
            points.last().unwrap().speedup_vs_1_worker,
            points.last().unwrap().schedule_parallelism
        );
    }
    points
}

fn scaling_json(app: &str, points: &[ScalingPoint]) -> String {
    let mut out = String::new();
    let _ = write!(out, "    \"{app}\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"workers\": {}, \"wall_seconds\": {:.6}, \"speedup_vs_1_worker\": {:.4}, \"schedule_parallelism\": {:.4}, \"iterations\": {}, \"total_work\": {}}}",
            p.workers, p.wall_seconds, p.speedup_vs_1_worker, p.schedule_parallelism, p.iterations, p.total_work
        );
    }
    out.push_str("\n    ]");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();

    eprintln!(
        "building R-MAT graph: {} vertices, ~{} edges",
        options.vertices,
        options.vertices * options.degree
    );
    let rmat = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        2026,
    );
    let root = slfe_graph::stats::highest_out_degree_vertex(&rmat).unwrap_or(0);

    eprintln!("PageRank scaling sweep (workers: {:?})", options.workers);
    let pr_points = sweep(&rmat, &options.workers, options.runs, || {
        PageRankProgram::new(rmat.num_vertices())
    });
    eprintln!("SSSP scaling sweep (workers: {:?})", options.workers);
    let sssp_points = sweep(&rmat, &options.workers, options.runs, || SsspProgram {
        root,
    });

    // Redundancy-reduction wall-clock comparison on a propagation-deep graph.
    // 16 layers keeps one layer's frontier above the 5% pull threshold, so the
    // engine runs the wide pull iterations where "start late" has redundancy to
    // remove (a deeper graph stays in push mode, which RR does not optimise).
    let layers = 16;
    let width = (options.vertices / layers).max(1);
    let layered = generators::layered(layers, width, 8, 7);
    let rr_workers = options
        .workers
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .min(hardware_threads.max(1));
    eprintln!(
        "SSSP RR on/off on layered graph ({} vertices, {rr_workers} workers)",
        layered.num_vertices()
    );
    let rr_root = 0;
    let config_on = EngineConfig::default().with_trace(false);
    let config_off = EngineConfig::without_rr().with_trace(false);
    let engine_on = SlfeEngine::build(&layered, ClusterConfig::new(1, rr_workers), config_on);
    let engine_off = SlfeEngine::build(&layered, ClusterConfig::new(1, rr_workers), config_off);
    let rr_on = time_best_of(options.runs, || {
        engine_on.run(&SsspProgram { root: rr_root })
    });
    let rr_off = time_best_of(options.runs, || {
        engine_off.run(&SsspProgram { root: rr_root })
    });
    let rr_on_work = engine_on
        .run(&SsspProgram { root: rr_root })
        .stats
        .totals
        .work();
    let rr_off_work = engine_off
        .run(&SsspProgram { root: rr_root })
        .stats
        .totals
        .work();
    eprintln!(
        "  RR on: {:.4}s wall / {} work; RR off: {:.4}s wall / {} work",
        rr_on.best_seconds, rr_on_work, rr_off.best_seconds, rr_off_work
    );

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"git_commit\": \"{}\",\n  \"hardware_threads\": {hardware_threads},\n  \"note\": \"speedup_vs_1_worker is measured wall clock and is bounded by hardware_threads; schedule_parallelism is counted work / busiest worker and shows what the schedule yields on unconstrained hardware\",\n",
        slfe_bench::git_commit()
    );
    let _ = writeln!(
        json,
        "  \"graph\": {{\"kind\": \"rmat\", \"vertices\": {}, \"edges\": {}, \"seed\": 2026}},",
        rmat.num_vertices(),
        rmat.num_edges()
    );
    json.push_str("  \"scaling\": {\n");
    json.push_str(&scaling_json("pagerank", &pr_points));
    json.push_str(",\n");
    json.push_str(&scaling_json("sssp", &sssp_points));
    json.push_str("\n  },\n");
    let _ = writeln!(
        json,
        "  \"redundancy\": {{\"graph\": {{\"kind\": \"layered\", \"vertices\": {}, \"edges\": {}}}, \"workers\": {rr_workers}, \"rr_on_wall_seconds\": {:.6}, \"rr_off_wall_seconds\": {:.6}, \"rr_on_work\": {rr_on_work}, \"rr_off_work\": {rr_off_work}, \"rr_wall_speedup\": {:.4}, \"rr_work_reduction_percent\": {:.2}}}",
        layered.num_vertices(),
        layered.num_edges(),
        rr_on.best_seconds,
        rr_off.best_seconds,
        rr_off.best_seconds / rr_on.best_seconds.max(1e-12),
        100.0 * (1.0 - rr_on_work as f64 / rr_off_work.max(1) as f64)
    );
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {}", options.out.display());
}
