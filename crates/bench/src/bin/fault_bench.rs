//! Fault-injection benchmark: the crashpoint sweep as a recorded artifact.
//!
//! ```text
//! fault_bench [--vertices N] [--batches B] [--out FILE]
//! ```
//!
//! For SSSP (min/max) and PageRank (arithmetic) at 1 and 4 workers, a
//! deterministic [`FaultPlan`] schedules a fault at each apply-path injection
//! site in turn — transient (retry-absorbable) and permanent
//! (retry-exhausting) — plus the open-time sites (WAL scan, snapshot read)
//! and an ENOSPC shot at the WAL. Every run is probe-asserted before the
//! JSON is written:
//!
//! * a **recovered** run (retries, quarantine rebuilds, absorbed
//!   snapshot/trim failures) must finish bit-identical to the fault-free
//!   oracle;
//! * a **rejected** run (WAL append/fsync, un-patchable segment store,
//!   ENOSPC) must return a typed [`ApplyError`], flip read-only, and keep
//!   serving the previous version's exact bits;
//! * a faulted **open** must either recover bit-identically (transient) or
//!   fail with a typed `DurabilityError` (permanent).
//!
//! Emits `BENCH_faults.json`: one record per run (site, kind, outcome,
//! injections, retries, quarantines) plus machine-independent totals.

use slfe_apps::pagerank::PageRankProgram;
use slfe_apps::sssp::SsspProgram;
use slfe_bench::json;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, RedundancyMode};
use slfe_delta::durability::SnapshotValue;
use slfe_delta::{ApplyError, DeltaServer, DurabilityConfig, ServerConfig, UpdateBatch};
use slfe_graph::rng::SplitMix64;
use slfe_graph::{generators, FaultKind, FaultPlan, FaultSite, Graph};
use slfe_metrics::FaultCounters;
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    batches: u64,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 400,
            batches: 3,
            out: PathBuf::from("BENCH_faults.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--batches" => {
                options.batches = value("--batches")?
                    .parse()
                    .map_err(|e| format!("invalid --batches: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err("usage: fault_bench [--vertices N] [--batches B] [--out FILE]".into())
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

const APPLY_SITES: [FaultSite; 7] = [
    FaultSite::SegmentRead,
    FaultSite::SegmentWrite,
    FaultSite::WalAppend,
    FaultSite::WalFsync,
    FaultSite::WalTrim,
    FaultSite::SnapshotWrite,
    FaultSite::SnapshotRename,
];

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("slfe-fault-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn value_bytes<V: SnapshotValue>(values: &[V]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        v.write(&mut bytes);
    }
    bytes
}

fn mixed_batch(graph: &Graph, seed: u64) -> UpdateBatch {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = graph.num_vertices() as u32;
    let mut batch = UpdateBatch::new();
    for _ in 0..12 {
        let src = rng.range_u32(0, n);
        if rng.next_f64() < 0.6 {
            batch.insert(src, rng.range_u32(0, n + 6), rng.range_f32(1.0, 10.0));
        } else {
            let outs = graph.out_neighbors(src);
            if !outs.is_empty() {
                batch.delete(src, outs[rng.range_usize(0, outs.len())]);
            }
        }
    }
    batch
}

struct RunRecord {
    app: &'static str,
    workers: usize,
    site: FaultSite,
    kind: &'static str,
    outcome: &'static str,
    counters: FaultCounters,
}

/// Out-of-core serving config so the segment sites sit on the apply path.
fn server_config(workers: usize, engine: EngineConfig) -> ServerConfig {
    ServerConfig {
        cluster: ClusterConfig::new(2, workers),
        engine: engine
            .with_trace(false)
            .with_storage_budget(24 << 10)
            .with_storage_segment_bytes(2 << 10),
        ..ServerConfig::default()
    }
}

/// One app's sweep at one worker count: oracle, then one server lifetime per
/// (site, kind) with the fault scheduled at the site's next call after the
/// first clean batch.
#[allow(clippy::too_many_arguments)]
fn sweep<P, F>(
    app: &'static str,
    seed: u64,
    graph: &Graph,
    make_program: F,
    engine: EngineConfig,
    workers: usize,
    batches: u64,
    records: &mut Vec<RunRecord>,
) where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P + Clone,
{
    let config = server_config(workers, engine);

    // Fault-free oracle: values after every batch.
    let dir = bench_dir(&format!("{app}-oracle-{workers}"));
    let mut oracle = DeltaServer::create_durable(
        graph.clone(),
        make_program.clone(),
        config.clone(),
        DurabilityConfig::new(&dir).with_snapshot_every(2),
    )
    .expect("oracle server");
    let mut after: Vec<Vec<u8>> = Vec::new();
    for i in 0..batches {
        let batch = mixed_batch(oracle.graph(), seed + i);
        oracle.apply(&batch);
        after.push(value_bytes(oracle.values()));
    }
    assert_eq!(oracle.fault_counters().injected_total(), 0);
    drop(oracle);
    let _ = std::fs::remove_dir_all(&dir);

    for site in APPLY_SITES {
        for (kind_name, kind) in [
            ("transient", FaultKind::Transient { failures: 1 }),
            ("permanent", FaultKind::Permanent),
        ] {
            let dir = bench_dir(&format!("{app}-{}-{kind_name}-{workers}", site.name()));
            let mut server = DeltaServer::create_durable(
                graph.clone(),
                make_program.clone(),
                config.clone(),
                DurabilityConfig::new(&dir).with_snapshot_every(2),
            )
            .expect("faulted server");
            let batch = mixed_batch(server.graph(), seed);
            server.try_apply(&batch).expect("clean batch");
            server
                .fault_injector()
                .arm(FaultPlan::new().fail(site, 0, kind));

            let mut outcome = "identical";
            let mut applied = 1u64;
            for i in 1..batches {
                let batch = mixed_batch(server.graph(), seed + i);
                match server.try_apply(&batch) {
                    Ok(_) => applied += 1,
                    Err(ApplyError::ReadOnly { .. }) => {
                        panic!(
                            "{app}/{}/{kind_name}: read-only before a typed rejection",
                            site.name()
                        )
                    }
                    Err(e) => {
                        // A typed rejection: the server must be read-only,
                        // still serving the previous batch's exact bits.
                        assert!(
                            matches!(
                                e,
                                ApplyError::WalAppend(_)
                                    | ApplyError::StoragePatch(_)
                                    | ApplyError::ExecutionPoisoned { .. }
                            ),
                            "{app}/{}/{kind_name}: unexpected error {e}",
                            site.name()
                        );
                        assert!(server.health().is_read_only());
                        outcome = "rejected_read_only";
                        break;
                    }
                }
            }
            assert_eq!(
                value_bytes(server.values()),
                after[(applied - 1) as usize],
                "{app}/{}/{kind_name}/{workers}w: served values diverge from the oracle",
                site.name()
            );
            if outcome == "identical" && server.health().is_degraded() {
                outcome = "degraded";
            }
            if outcome == "identical" && server.health().wal_trim_failures() > 0 {
                outcome = "degraded";
            }
            let counters = server.fault_counters();
            assert!(
                counters.injected_total() >= 1,
                "{app}/{}/{kind_name}/{workers}w: the site never fired",
                site.name()
            );
            records.push(RunRecord {
                app,
                workers,
                site,
                kind: kind_name,
                outcome,
                counters,
            });
            drop(server);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Open-time sites (WAL scan, snapshot read) and the ENOSPC shot, recorded
/// on SSSP only — the path under test is app-independent.
fn open_and_enospc_runs(graph: &Graph, workers: usize, records: &mut Vec<RunRecord>) {
    let root = slfe_graph::stats::highest_out_degree_vertex(graph).unwrap_or(0);
    let make = move |_: &Graph| SsspProgram { root };
    let config = server_config(workers, EngineConfig::default());
    let dir = bench_dir(&format!("open-{workers}"));
    let durability = DurabilityConfig::new(&dir).with_snapshot_every(100);
    let mut server =
        DeltaServer::create_durable(graph.clone(), make, config.clone(), durability.clone())
            .expect("open-run server");
    for i in 0..2u64 {
        let batch = mixed_batch(server.graph(), 500 + i);
        server.apply(&batch);
    }
    let expected = value_bytes(server.values());
    drop(server);

    for site in [FaultSite::WalOpen, FaultSite::SnapshotRead] {
        for (kind_name, kind) in [
            ("transient", FaultKind::Transient { failures: 1 }),
            ("permanent", FaultKind::Permanent),
        ] {
            let faulted = ServerConfig {
                fault_plan: Some(FaultPlan::new().fail(site, 0, kind)),
                ..config.clone()
            };
            let (outcome, counters) = match DeltaServer::open(make, faulted, durability.clone()) {
                Ok(reopened) => {
                    assert_eq!(
                        value_bytes(reopened.values()),
                        expected,
                        "{}/{kind_name}: faulted open diverges",
                        site.name()
                    );
                    ("identical", reopened.fault_counters())
                }
                Err(e) => {
                    assert_eq!(
                        kind_name,
                        "permanent",
                        "{}: a transient open fault must be absorbed, got {e}",
                        site.name()
                    );
                    ("open_rejected", FaultCounters::zero())
                }
            };
            records.push(RunRecord {
                app: "sssp",
                workers,
                site,
                kind: kind_name,
                outcome,
                counters,
            });
        }
    }

    // ENOSPC on the WAL: typed read-only rejection, queries keep answering.
    let mut server =
        DeltaServer::open(make, config.clone(), durability.clone()).expect("reopen for ENOSPC");
    let served = value_bytes(server.values());
    server.fault_injector().arm(FaultPlan::new().fail(
        FaultSite::WalAppend,
        0,
        FaultKind::DiskFull,
    ));
    let batch = mixed_batch(server.graph(), 600);
    let err = server.try_apply(&batch).expect_err("ENOSPC must reject");
    assert!(matches!(err, ApplyError::WalAppend(_)));
    assert!(server.health().is_read_only());
    assert!(server
        .health()
        .read_only_reason()
        .unwrap_or("")
        .contains("ENOSPC"));
    assert_eq!(value_bytes(server.values()), served);
    assert!(server.value(root).is_some());
    let counters = server.fault_counters();
    assert_eq!(counters.io_retries, 0, "ENOSPC must not be retried");
    records.push(RunRecord {
        app: "sssp",
        workers,
        site: FaultSite::WalAppend,
        kind: "disk_full",
        outcome: "rejected_read_only",
        counters,
    });
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();
    let graph = generators::rmat(
        options.vertices,
        options.vertices * 6,
        0.57,
        0.19,
        0.19,
        8_2026,
    );
    let root = slfe_graph::stats::highest_out_degree_vertex(&graph).unwrap_or(0);
    let exact = EngineConfig::default()
        .with_redundancy(RedundancyMode::Disabled)
        .with_max_iterations(400);

    let mut records: Vec<RunRecord> = Vec::new();
    for workers in [1usize, 4] {
        eprintln!("sweeping sssp at {workers} workers");
        sweep(
            "sssp",
            8100,
            &graph,
            move |_: &Graph| SsspProgram { root },
            EngineConfig::default(),
            workers,
            options.batches,
            &mut records,
        );
        eprintln!("sweeping pagerank at {workers} workers");
        sweep(
            "pr",
            8200,
            &graph,
            PageRankProgram::for_graph,
            exact.clone(),
            workers,
            options.batches,
            &mut records,
        );
        eprintln!("open-time + ENOSPC runs at {workers} workers");
        open_and_enospc_runs(&graph, workers, &mut records);
    }

    // ---- Aggregate -------------------------------------------------------
    let mut sites: Vec<&str> = records.iter().map(|r| r.site.name()).collect();
    sites.sort_unstable();
    sites.dedup();
    assert_eq!(
        sites.len(),
        slfe_graph::ALL_FAULT_SITES.len(),
        "the sweep must cover every injection site"
    );
    let mut totals = FaultCounters::zero();
    let mut by_outcome = [
        ("identical", 0u64),
        ("degraded", 0),
        ("rejected_read_only", 0),
        ("open_rejected", 0),
    ];
    for r in &records {
        totals += r.counters;
        if let Some(slot) = by_outcome.iter_mut().find(|(name, _)| *name == r.outcome) {
            slot.1 += 1;
        }
    }
    eprintln!(
        "{} runs over {} sites: {} identical, {} degraded, {} rejected read-only, {} open rejections ({} injections, {} retries, {} quarantines)",
        records.len(),
        sites.len(),
        by_outcome[0].1,
        by_outcome[1].1,
        by_outcome[2].1,
        by_outcome[3].1,
        totals.injected_total(),
        totals.io_retries,
        totals.segments_quarantined,
    );

    // ---- Emit ------------------------------------------------------------
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("Deterministic crashpoint sweep on durable out-of-core serving (SSSP min/max + PageRank arithmetic at 1 and 4 workers). Each run schedules one fault at one injection site; outcome identical = completed bit-identical to the fault-free oracle (asserted), degraded = completed bit-identical with snapshot/trim failures absorbed into health, rejected_read_only = typed ApplyError with the previous version still served bit-exactly (asserted), open_rejected = typed DurabilityError on a permanently faulted open. Counters are machine-independent")
    );
    let _ = writeln!(
        out,
        "  \"graph\": {{\"vertices\": {}, \"edges\": {}}},\n  \"batches\": {},",
        graph.num_vertices(),
        graph.num_edges(),
        options.batches
    );
    out.push_str("  \"sites_covered\": [");
    for (i, s) in sites.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", json::string(s));
    }
    out.push_str("],\n  \"runs\": [");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"app\": {}, \"workers\": {}, \"site\": {}, \"kind\": {}, \"outcome\": {}, \"injected\": {}, \"io_retries\": {}, \"io_retry_successes\": {}, \"segments_quarantined\": {}, \"poisoned_runs\": {}}}",
            json::string(r.app),
            r.workers,
            json::string(r.site.name()),
            json::string(r.kind),
            json::string(r.outcome),
            r.counters.injected_total(),
            r.counters.io_retries,
            r.counters.io_retry_successes,
            r.counters.segments_quarantined,
            r.counters.poisoned_runs
        );
    }
    out.push_str("\n  ],\n");
    let _ = writeln!(
        out,
        "  \"totals\": {{\"runs\": {}, \"identical\": {}, \"degraded\": {}, \"rejected_read_only\": {}, \"open_rejected\": {}, \"injected_transient\": {}, \"injected_permanent\": {}, \"injected_disk_full\": {}, \"io_retries\": {}, \"io_retry_successes\": {}, \"segments_quarantined\": {}, \"poisoned_runs\": {}}}",
        records.len(),
        by_outcome[0].1,
        by_outcome[1].1,
        by_outcome[2].1,
        by_outcome[3].1,
        totals.injected_transient,
        totals.injected_permanent,
        totals.injected_disk_full,
        totals.io_retries,
        totals.io_retry_successes,
        totals.segments_quarantined,
        totals.poisoned_runs
    );
    out.push_str("}\n");

    // The emitted document must survive the workspace's own JSON parser.
    json::parse(&out).expect("fault_bench emitted invalid JSON");
    if let Err(e) = std::fs::write(&options.out, &out) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{out}");
    eprintln!("wrote {}", options.out.display());
}
