//! Hash (modulo) partitioner.
//!
//! Used by the PowerGraph/PowerLyra-style baselines, whose random vertex placement
//! spreads hubs across nodes but cuts far more edges than contiguous chunking. The
//! contrast between the two partitioners is part of what Figure 10(b) measures.

use crate::partitioning::Partitioning;
use crate::Partitioner;
use slfe_graph::Graph;

/// Assigns vertex `v` to node `hash(v) % num_parts`.
#[derive(Debug, Clone, Default)]
pub struct HashPartitioner {
    /// If `true`, use the raw id (`v % num_parts`) instead of a mixed hash. Raw
    /// modulo keeps neighbouring ids on different nodes, which is the worst case for
    /// locality and is useful in tests.
    pub raw_modulo: bool,
}

impl HashPartitioner {
    /// Mixed-hash partitioner (default).
    pub fn new() -> Self {
        Self { raw_modulo: false }
    }

    /// Plain `v % num_parts` partitioner.
    pub fn modulo() -> Self {
        Self { raw_modulo: true }
    }

    fn slot(&self, v: u64, num_parts: usize) -> usize {
        if self.raw_modulo {
            (v % num_parts as u64) as usize
        } else {
            // SplitMix64 finaliser: cheap, well-mixed, deterministic.
            let mut x = v.wrapping_add(0x9E3779B97F4A7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
            x ^= x >> 31;
            (x % num_parts as u64) as usize
        }
    }
}

impl Partitioner for HashPartitioner {
    fn partition(&self, graph: &Graph, num_parts: usize) -> Partitioning {
        assert!(num_parts >= 1, "need at least one partition");
        let owner = graph
            .vertices()
            .map(|v| self.slot(v as u64, num_parts))
            .collect();
        Partitioning::from_owners(owner, num_parts)
    }

    fn name(&self) -> &'static str {
        "hash"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::{datasets::Dataset, generators};

    #[test]
    fn modulo_assigns_round_robin() {
        let g = generators::path(8);
        let p = HashPartitioner::modulo().partition(&g, 4);
        assert_eq!(p.owners(), &[0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn hash_spreads_vertices_roughly_evenly() {
        let g = generators::path(4000);
        let p = HashPartitioner::new().partition(&g, 4);
        p.validate(&g).unwrap();
        for count in p.vertex_counts() {
            assert!(count > 800 && count < 1200, "unbalanced: {count}");
        }
    }

    #[test]
    fn hash_is_deterministic() {
        let g = generators::path(100);
        let a = HashPartitioner::new().partition(&g, 3);
        let b = HashPartitioner::new().partition(&g, 3);
        assert_eq!(a.owners(), b.owners());
    }

    #[test]
    fn hash_cuts_more_edges_than_chunking_on_a_local_graph() {
        use crate::chunking::ChunkingPartitioner;
        // Grids have strong id locality (neighbors differ by 1 or `cols`), which
        // contiguous chunking preserves and hashing destroys.
        let g = generators::grid(40, 40);
        let hash = HashPartitioner::new().partition(&g, 8);
        let chunk = ChunkingPartitioner::default().partition(&g, 8);
        assert!(hash.cut_edges(&g) > chunk.cut_edges(&g));
    }

    #[test]
    fn hash_balances_edges_on_skewed_graph_better_than_naive_vertex_split() {
        // On a skewed RMAT proxy, hashing spreads the (low-id) hubs across nodes, so
        // per-node edge counts stay within a reasonable factor of the mean.
        let g = Dataset::STwitter.load_scaled(16_000);
        let p = HashPartitioner::new().partition(&g, 8);
        let counts = p.edge_counts(&g);
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max / mean < 2.5,
            "hash edge imbalance too high: {}",
            max / mean
        );
    }

    #[test]
    fn name_distinguishes_strategy() {
        assert_eq!(HashPartitioner::new().name(), "hash");
    }
}
