//! # slfe-apps
//!
//! The graph applications of the paper's Table 1, implemented on the SLFE
//! programming API (`slfe-core`'s [`GraphProgram`]).
//!
//! Min/max-aggregation applications (optimised by "start late"):
//!
//! * [`sssp`] — Single Source Shortest Path
//! * [`bfs`] — Breadth-First Search (hop distance)
//! * [`cc`] — Connected Components (on a symmetrised graph)
//! * [`widestpath`] — Widest Path (maximum bottleneck capacity)
//!
//! Arithmetic-aggregation applications (optimised by "finish early"):
//!
//! * [`pagerank`] — PageRank
//! * [`tunkrank`] — TunkRank (follower influence)
//! * [`spmv`] — Sparse matrix-vector multiplication
//! * [`heat`] — Heat simulation (mass-conserving diffusion)
//! * [`numpaths`] — Number of paths from a root in a DAG
//!
//! Every module provides the [`GraphProgram`] implementation, a `run` helper that
//! executes it on a [`slfe_core::SlfeEngine`], and a sequential `reference`
//! implementation used as the correctness oracle by the test suite (the empirical
//! counterpart of the paper's Theorem 1).

pub mod bfs;
pub mod cc;
pub mod heat;
pub mod numpaths;
pub mod pagerank;
pub mod registry;
pub mod spmv;
pub mod sssp;
pub mod tunkrank;
pub mod widestpath;

pub use registry::AppKind;
pub use slfe_core::{AggregationKind, GraphProgram};
