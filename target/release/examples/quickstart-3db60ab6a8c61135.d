/root/repo/target/release/examples/quickstart-3db60ab6a8c61135.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-3db60ab6a8c61135: examples/quickstart.rs

examples/quickstart.rs:
