/root/repo/target/debug/deps/slfe_graph-e4b4e3e52a23f1c2.d: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/types.rs

/root/repo/target/debug/deps/libslfe_graph-e4b4e3e52a23f1c2.rmeta: crates/graph/src/lib.rs crates/graph/src/bitset.rs crates/graph/src/builder.rs crates/graph/src/csr.rs crates/graph/src/datasets.rs crates/graph/src/generators.rs crates/graph/src/graph.rs crates/graph/src/io.rs crates/graph/src/rng.rs crates/graph/src/stats.rs crates/graph/src/types.rs

crates/graph/src/lib.rs:
crates/graph/src/bitset.rs:
crates/graph/src/builder.rs:
crates/graph/src/csr.rs:
crates/graph/src/datasets.rs:
crates/graph/src/generators.rs:
crates/graph/src/graph.rs:
crates/graph/src/io.rs:
crates/graph/src/rng.rs:
crates/graph/src/stats.rs:
crates/graph/src/types.rs:
