//! Persistent worker pool with a phase-barrier protocol.
//!
//! PR 1's executor spawned fresh OS threads per node-phase through
//! `std::thread::scope` — correct, but ~10µs of spawn/join latency per phase,
//! paid `iterations × phases × nodes` times per run. [`WorkerPool`] replaces
//! that with **one long-lived pool spanning the whole simulated cluster**
//! (`total_workers` workers): threads are spawned once, park on a condvar
//! between phases, and every phase is a publish → execute → barrier round trip
//! on the same threads, exactly like the pthread pools of Gemini-class engines.
//!
//! # Phase-barrier protocol
//!
//! A phase is one call to [`WorkerPool::run`] with a `Fn(worker_id)` task:
//!
//! 1. **Publish.** The caller bumps the job epoch under the pool mutex, stores
//!    a type-erased pointer to the task, and notifies all parked workers.
//! 2. **Execute.** Every pool thread wakes, observes the fresh epoch, calls
//!    `task(worker_id)` *outside* the lock, and decrements the pending count.
//!    The calling thread participates as worker 0, so a pool of `t` workers
//!    spawns only `t - 1` OS threads.
//! 3. **Barrier.** The caller blocks on a condvar until the pending count hits
//!    zero, then clears the task slot. Only after that barrier does `run`
//!    return — which is what makes the lifetime erasure below sound: the task
//!    (and everything it borrows) provably outlives every worker's use of it.
//!
//! Workers never spin: parking is condvar-based, so the protocol also makes
//! progress on a single hardware thread (the CI container), just serialised.
//!
//! The pool counts its spawned threads ([`WorkerPool::threads_spawned`]); the
//! engine folds that into `slfe_metrics::Counters::threads_spawned` so a
//! regression test can pin that a multi-iteration run never exceeds
//! `total_workers` spawns — i.e. that the pool is actually reused, not
//! re-created per phase.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Process-wide count of OS threads ever spawned by any [`WorkerPool`].
static PROCESS_SPAWNS: AtomicU64 = AtomicU64::new(0);

/// Total OS threads spawned by **all** worker pools in this process so far.
///
/// This is the regression tripwire with teeth: a change that sneaks a
/// transient pool into a hot path (per-phase `WorkerPool::new`, or
/// `ChunkScheduler::execute_threaded` inside the engine loop) inflates this
/// counter even though every individual pool still reports a constant
/// [`WorkerPool::threads_spawned`]. `tests/thread_budget.rs` pins an engine's
/// whole lifecycle (build + multi-iteration runs + warm restarts) to fewer
/// than `total_workers` process-wide spawns. (Raw `std::thread` use would
/// still evade it — nothing in the workspace's hot paths spawns raw threads.)
pub fn process_threads_spawned() -> u64 {
    PROCESS_SPAWNS.load(Ordering::Relaxed)
}

/// A raw pointer to a slice of per-worker slots that may cross the pool's
/// thread boundary — the one shared unsafe escape hatch for collecting
/// per-worker outputs from a [`WorkerPool::run`] phase.
///
/// # Safety contract
/// Callers must guarantee that each slot index is accessed by at most one
/// worker during a phase (the usual pattern: slot `i` belongs to worker `i`),
/// and that the backing slice outlives the phase — which [`WorkerPool::run`]'s
/// barrier provides for stack-allocated slices.
pub struct SendPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Wrap a slice whose slots will each be written by a single worker.
    pub fn new(slice: &mut [T]) -> Self {
        Self(slice.as_mut_ptr())
    }

    /// Raw pointer to slot `i`. A method (not field access) so closures
    /// capture the whole `SendPtr` — capturing the raw field would lose the
    /// `Sync` wrapper under disjoint closure capture.
    ///
    /// # Safety
    /// `i` must be in bounds and the slot must have no concurrent accessor.
    pub unsafe fn slot(&self, i: usize) -> *mut T {
        self.0.add(i)
    }

    /// Exclusive reference to slot `i`.
    ///
    /// # Safety
    /// `i` must be in bounds and the slot must have no other accessor for the
    /// lifetime of the returned borrow.
    #[allow(clippy::mut_from_ref)] // one exclusive slot per worker id
    pub unsafe fn slot_mut(&self, i: usize) -> &mut T {
        &mut *self.0.add(i)
    }
}

/// A type-erased pointer to the currently published task.
///
/// The pointee is a `Fn(usize) + Sync` borrowed from the caller's stack; the
/// barrier in [`WorkerPool::run`] guarantees it outlives every use.
#[derive(Clone, Copy)]
struct TaskRef(*const (dyn Fn(usize) + Sync + 'static));

// Safety: the pointer is only dereferenced by pool workers between publish and
// barrier, while the caller is blocked inside `run` keeping the pointee alive.
unsafe impl Send for TaskRef {}

/// Coordination state shared between the caller and the pool threads.
struct PoolState {
    /// Bumped once per published job; workers run each epoch exactly once.
    epoch: u64,
    /// The published task, present between publish and barrier.
    task: Option<TaskRef>,
    /// Pool threads that have not yet finished the current epoch.
    pending: usize,
    /// Pool threads whose task call panicked this epoch (the panic is caught
    /// so the barrier still completes; the publisher re-raises after it).
    panicked: usize,
    /// Set once on drop; workers exit their loop.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Caller → workers: a new job was published (or shutdown was requested).
    job_ready: Condvar,
    /// Workers → caller: the last worker of the epoch finished.
    job_done: Condvar,
    /// Per-worker nanoseconds spent inside task calls, indexed by worker id.
    /// Plain monotonic accounting — two clock reads per worker per phase —
    /// kept outside `Counters` so it never affects engine determinism.
    busy_ns: Vec<AtomicU64>,
}

/// Measured busy/idle/barrier-wait accounting for one [`WorkerPool`], so the
/// *measured* parallelism of a run can be compared against the cost model's
/// `schedule_parallelism`.
///
/// All times are wall nanoseconds. Busy time is time spent inside task
/// closures; barrier-wait time is the publisher's time blocked on the phase
/// barrier; lifetime is the pool's age when the snapshot was taken. Fractions
/// are per-worker busy time over lifetime, so `1 - busy` includes both
/// genuine idle parking and (on an oversubscribed host) preemption.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolActivity {
    /// Nanoseconds each worker spent executing tasks, indexed by worker id.
    pub per_worker_busy_nanos: Vec<u64>,
    /// Nanoseconds the publisher spent blocked waiting for phase barriers.
    pub barrier_wait_nanos: u64,
    /// Number of completed phases.
    pub phases: u64,
    /// Pool age in nanoseconds at snapshot time.
    pub lifetime_nanos: u64,
}

impl PoolActivity {
    /// Per-worker busy fraction of the pool's lifetime, in `[0, 1]`.
    pub fn busy_fractions(&self) -> Vec<f64> {
        let life = (self.lifetime_nanos.max(1)) as f64;
        self.per_worker_busy_nanos
            .iter()
            .map(|&b| (b as f64 / life).min(1.0))
            .collect()
    }

    /// Per-worker idle fraction (`1 - busy`).
    pub fn idle_fractions(&self) -> Vec<f64> {
        self.busy_fractions().iter().map(|b| 1.0 - b).collect()
    }

    /// Publisher barrier-wait fraction of the pool's lifetime, in `[0, 1]`.
    pub fn barrier_wait_fraction(&self) -> f64 {
        let life = (self.lifetime_nanos.max(1)) as f64;
        (self.barrier_wait_nanos as f64 / life).min(1.0)
    }

    /// Average number of simultaneously busy workers over the pool's lifetime
    /// — the measured counterpart of the cost model's `schedule_parallelism`.
    pub fn average_concurrency(&self) -> f64 {
        let life = (self.lifetime_nanos.max(1)) as f64;
        self.per_worker_busy_nanos.iter().sum::<u64>() as f64 / life
    }
}

/// A persistent pool of parked worker threads executing phase jobs.
///
/// The pool is created once per engine (sized `total_workers`) and shared —
/// via `Arc` — by every phase of every run, by the RRG preprocessing BFS and
/// by the delta server's warm restarts. Worker 0 is the calling thread.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
    /// Serialises whole phases: the epoch/pending protocol (and the lifetime
    /// erasure it guards) assumes a single publisher at a time, so concurrent
    /// [`WorkerPool::run`] calls queue here instead of corrupting each other.
    publisher: Mutex<()>,
    /// Publisher nanoseconds blocked on phase barriers.
    barrier_ns: AtomicU64,
    /// Completed phases.
    phase_count: AtomicU64,
    /// Pool construction time, the origin for [`PoolActivity::lifetime_nanos`].
    created: Instant,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("threads_spawned", &self.handles.len())
            .finish()
    }
}

impl WorkerPool {
    /// Create a pool of `threads` workers. The calling thread doubles as
    /// worker 0, so only `threads - 1` OS threads are spawned — eagerly, so
    /// that no run ever observes a mid-run spawn.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "pool needs at least one worker");
        let shared = std::sync::Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                task: None,
                pending: 0,
                panicked: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            job_done: Condvar::new(),
            busy_ns: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        });
        let handles: Vec<std::thread::JoinHandle<()>> = (1..threads)
            .map(|worker| {
                let shared = std::sync::Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("slfe-worker-{worker}"))
                    .spawn(move || Self::worker_loop(&shared, worker))
                    .expect("spawn pool worker")
            })
            .collect();
        PROCESS_SPAWNS.fetch_add(handles.len() as u64, Ordering::Relaxed);
        Self {
            shared,
            handles,
            threads,
            publisher: Mutex::new(()),
            barrier_ns: AtomicU64::new(0),
            phase_count: AtomicU64::new(0),
            created: Instant::now(),
        }
    }

    /// Snapshot measured busy/idle/barrier-wait accounting since construction.
    pub fn activity(&self) -> PoolActivity {
        PoolActivity {
            per_worker_busy_nanos: self
                .shared
                .busy_ns
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            barrier_wait_nanos: self.barrier_ns.load(Ordering::Relaxed),
            phases: self.phase_count.load(Ordering::Relaxed),
            lifetime_nanos: self.created.elapsed().as_nanos() as u64,
        }
    }

    /// Number of workers (including the calling thread as worker 0).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// OS threads this pool spawned over its lifetime — always
    /// `threads() - 1`, and constant after construction. The regression tests
    /// pin `threads_spawned() < total_workers` across multi-iteration runs to
    /// prove phases reuse the pool instead of re-spawning.
    pub fn threads_spawned(&self) -> u64 {
        self.handles.len() as u64
    }

    /// Execute one phase: `task(worker_id)` runs once on every worker
    /// (`0..threads()`), concurrently, and `run` returns only after all of
    /// them finished (the phase barrier). With a single-worker pool the task
    /// runs inline on the calling thread.
    ///
    /// `task` may be called with any worker id in `0..threads()`; workers that
    /// find no work for their id must simply return. Concurrent `run` calls
    /// from different threads serialise on an internal publisher lock;
    /// reentrant use (calling `run` from inside a task) deadlocks on it and is
    /// not supported.
    ///
    /// # Panics
    /// Panics if the task panics on any worker. The barrier still completes
    /// first — worker-side panics are caught so `pending` always drains and
    /// the pool stays usable — which is also what keeps the lifetime erasure
    /// sound on the unwind path: no worker can still be running the task once
    /// the caller's frame unwinds.
    pub fn run<'task>(&self, task: &'task (dyn Fn(usize) + Sync + 'task)) {
        if self.threads == 1 {
            let began = Instant::now();
            task(0);
            self.shared.busy_ns[0].fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.phase_count.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // One publisher at a time; recover from poisoning (a previous caller
        // re-raising a task panic) — the barrier left the state consistent.
        let _phase = self
            .publisher
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Erase the task's lifetime: the pointee lives on this stack frame and
        // the barrier below keeps this frame alive past every worker's use.
        let erased = TaskRef(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + 'task),
                *const (dyn Fn(usize) + Sync + 'static),
            >(task)
        });
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            debug_assert!(state.task.is_none(), "reentrant WorkerPool::run");
            state.epoch += 1;
            state.task = Some(erased);
            state.pending = self.threads - 1;
            state.panicked = 0;
            self.shared.job_ready.notify_all();
        }
        // The caller is worker 0 — no thread sits idle waiting for the phase.
        // Catch a local panic so the barrier below always runs before this
        // frame (which workers still borrow through `erased`) can unwind.
        let began = Instant::now();
        let local = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(0)));
        self.shared.busy_ns[0].fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let barrier_began = Instant::now();
        let worker_panics = {
            let mut state = self.shared.state.lock().expect("pool mutex");
            while state.pending > 0 {
                state = self.shared.job_done.wait(state).expect("pool mutex");
            }
            state.task = None;
            state.panicked
        };
        self.barrier_ns
            .fetch_add(barrier_began.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.phase_count.fetch_add(1, Ordering::Relaxed);
        if let Err(payload) = local {
            std::panic::resume_unwind(payload);
        }
        assert!(
            worker_panics == 0,
            "pool task panicked on {worker_panics} worker(s)"
        );
    }

    fn worker_loop(shared: &PoolShared, worker: usize) {
        let mut seen_epoch = 0u64;
        loop {
            let task = {
                let mut state = shared.state.lock().expect("pool mutex");
                loop {
                    if state.shutdown {
                        return;
                    }
                    if state.epoch != seen_epoch {
                        seen_epoch = state.epoch;
                        break state.task.expect("published epoch carries a task");
                    }
                    state = shared.job_ready.wait(state).expect("pool mutex");
                }
            };
            // Safety: the publisher blocks in `run` until `pending` hits zero,
            // so the pointee outlives this call. A panicking task is caught so
            // the barrier always completes (and no lock is held on unwind);
            // the publisher re-raises it after the barrier.
            let began = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (*task.0)(worker)
            }));
            shared.busy_ns[worker].fetch_add(began.elapsed().as_nanos() as u64, Ordering::Relaxed);
            let mut state = shared.state.lock().expect("pool mutex");
            if outcome.is_err() {
                state.panicked += 1;
            }
            state.pending -= 1;
            if state.pending == 0 {
                shared.job_done.notify_all();
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex");
            state.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            handle.join().expect("pool worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_each_phase_exactly_once() {
        let pool = WorkerPool::new(4);
        let per_worker = [const { AtomicUsize::new(0) }; 4];
        for _ in 0..50 {
            pool.run(&|w| {
                per_worker[w].fetch_add(1, Ordering::Relaxed);
            });
        }
        for (w, count) in per_worker.iter().enumerate() {
            assert_eq!(count.load(Ordering::Relaxed), 50, "worker {w}");
        }
    }

    #[test]
    fn phase_barrier_orders_phases() {
        // Phase n+1 must observe every write of phase n: sum a counter in two
        // strictly ordered rounds and check the halfway snapshot.
        let pool = WorkerPool::new(3);
        let counter = AtomicU64::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        let after_first = counter.load(Ordering::Relaxed);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(after_first, 3);
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn borrows_caller_stack_data_safely() {
        let pool = WorkerPool::new(4);
        let data: Vec<u64> = (0..1000).collect();
        let sums = [const { AtomicU64::new(0) }; 4];
        pool.run(&|w| {
            let chunk = data.len() / 4;
            let share: u64 = data[w * chunk..(w + 1) * chunk].iter().sum();
            sums[w].store(share, Ordering::Relaxed);
        });
        let total: u64 = sums.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(total, 1000 * 999 / 2);
    }

    #[test]
    fn spawn_count_is_fixed_at_construction() {
        let pool = WorkerPool::new(5);
        assert_eq!(pool.threads(), 5);
        assert_eq!(pool.threads_spawned(), 4);
        for _ in 0..20 {
            pool.run(&|_| {});
        }
        assert_eq!(pool.threads_spawned(), 4, "phases must not spawn threads");
    }

    #[test]
    fn single_worker_pool_runs_inline_without_threads() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads_spawned(), 0);
        let caller = std::thread::current().id();
        let mut seen = None;
        // `run` takes Fn, so record through a cell.
        let cell = std::sync::Mutex::new(&mut seen);
        pool.run(&|w| {
            **cell.lock().unwrap() = Some((w, std::thread::current().id()));
        });
        assert_eq!(seen, Some((0, caller)));
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        pool.run(&|_| {});
        drop(pool); // must not hang or panic
    }

    #[test]
    fn worker_panic_completes_the_barrier_and_propagates() {
        let pool = WorkerPool::new(3);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 2 {
                    panic!("task boom on worker {w}");
                }
            });
        }));
        assert!(result.is_err(), "a worker panic must surface to the caller");
        // The barrier completed and no lock is poisoned: the pool still works.
        let counter = AtomicU64::new(0);
        pool.run(&|_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn caller_panic_waits_for_workers_then_propagates() {
        let pool = WorkerPool::new(3);
        let others = AtomicU64::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(&|w| {
                if w == 0 {
                    panic!("caller boom");
                }
                others.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // Both pool workers finished the phase before the unwind escaped `run`
        // — the soundness condition of the borrowed-task lifetime erasure.
        assert_eq!(others.load(Ordering::Relaxed), 2);
        pool.run(&|_| {});
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        WorkerPool::new(0);
    }

    #[test]
    fn activity_accounts_busy_time_per_worker_and_phases() {
        let pool = WorkerPool::new(3);
        for _ in 0..4 {
            pool.run(&|_| {
                // Do a little real work so busy time is nonzero even at
                // coarse clock resolution.
                let mut acc = 0u64;
                for i in 0..50_000u64 {
                    acc = acc.wrapping_add(i * i);
                }
                std::hint::black_box(acc);
            });
        }
        let activity = pool.activity();
        assert_eq!(activity.per_worker_busy_nanos.len(), 3);
        assert_eq!(activity.phases, 4);
        assert!(activity.per_worker_busy_nanos.iter().all(|&b| b > 0));
        assert!(activity.lifetime_nanos > 0);
        let busy = activity.busy_fractions();
        let idle = activity.idle_fractions();
        for (b, i) in busy.iter().zip(idle.iter()) {
            assert!((0.0..=1.0).contains(b));
            assert!((b + i - 1.0).abs() < 1e-9);
        }
        assert!((0.0..=1.0).contains(&activity.barrier_wait_fraction()));
        assert!(activity.average_concurrency() >= 0.0);
    }

    #[test]
    fn single_worker_activity_counts_inline_phases() {
        let pool = WorkerPool::new(1);
        pool.run(&|_| {
            std::hint::black_box((0..10_000u64).sum::<u64>());
        });
        let activity = pool.activity();
        assert_eq!(activity.phases, 1);
        assert_eq!(activity.per_worker_busy_nanos.len(), 1);
        assert!(activity.per_worker_busy_nanos[0] > 0);
        assert_eq!(activity.barrier_wait_nanos, 0);
    }
}
