//! Sparse matrix-vector multiplication: `y = Aᵀ·x` over the graph's weighted
//! adjacency matrix.
//!
//! The vertex property is the pair `(x, y)`: `x` is the (constant) input vector
//! entry, `y` the accumulated product `Σ_{u -> v} w(u, v) · x(u)`. Because `x`
//! never changes, `y` is identical from the first iteration on and the run
//! converges after two iterations — SpMV is the degenerate member of the
//! arithmetic family and exercises the multi-ruler bookkeeping with a trivially
//! stable workload.

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};

/// The `(input, output)` pair stored per vertex.
pub type SpmvValue = (f32, f32);

/// SpMV as a [`GraphProgram`]. The input vector is provided up front.
#[derive(Debug, Clone)]
pub struct SpmvProgram {
    /// The dense input vector `x`, indexed by vertex id.
    pub input: Vec<f32>,
}

impl SpmvProgram {
    /// SpMV with the all-ones input vector (row sums of the adjacency matrix).
    pub fn ones(num_vertices: usize) -> Self {
        Self {
            input: vec![1.0; num_vertices],
        }
    }
}

impl GraphProgram for SpmvProgram {
    type Value = SpmvValue;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::Arithmetic
    }

    fn name(&self) -> &'static str {
        "spmv"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> SpmvValue {
        (self.input.get(v as usize).copied().unwrap_or(0.0), 0.0)
    }

    fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
        true
    }

    fn identity(&self) -> SpmvValue {
        (0.0, 0.0)
    }

    fn edge_contribution(
        &self,
        _src: VertexId,
        src_value: SpmvValue,
        weight: EdgeWeight,
    ) -> Option<SpmvValue> {
        Some((0.0, src_value.0 * weight))
    }

    fn combine(&self, a: SpmvValue, b: SpmvValue) -> SpmvValue {
        (a.0 + b.0, a.1 + b.1)
    }

    fn apply(&self, _dst: VertexId, old: SpmvValue, gathered: SpmvValue) -> SpmvValue {
        // Keep the input component, replace the output component.
        (old.0, gathered.1)
    }

    fn changed(&self, old: SpmvValue, new: SpmvValue, tolerance: f64) -> bool {
        (old.1 - new.1).abs() as f64 > tolerance
    }
}

/// Run SpMV with input vector `x`; use [`product`] to extract `y`.
pub fn run(engine: &SlfeEngine<'_>, input: Vec<f32>) -> ProgramResult<SpmvValue> {
    assert_eq!(
        input.len(),
        engine.graph().num_vertices(),
        "input vector length must match the vertex count"
    );
    engine.run(&SpmvProgram { input })
}

/// Extract the output vector `y` from an SpMV result.
pub fn product(values: &[SpmvValue]) -> Vec<f32> {
    values.iter().map(|&(_, y)| y).collect()
}

/// Sequential reference: `y(v) = Σ_{u -> v} w(u, v) · x(u)`.
pub fn reference(graph: &Graph, input: &[f32]) -> Vec<f32> {
    graph
        .vertices()
        .map(|v| graph.in_edges(v).map(|(u, w)| w * input[u as usize]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators, GraphBuilder};

    #[test]
    fn multiplies_a_small_matrix_correctly() {
        // Adjacency: 0->1 (2.0), 0->2 (3.0), 1->2 (4.0).
        let mut b = GraphBuilder::new();
        b.extend_weighted([(0, 1, 2.0), (0, 2, 3.0), (1, 2, 4.0)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, vec![1.0, 10.0, 100.0]);
        let y = product(&result.values);
        assert_eq!(y, vec![0.0, 2.0, 43.0]);
        assert!(result.converged);
    }

    #[test]
    fn matches_reference_on_rmat_with_random_input() {
        let g = Dataset::Pokec.load_scaled(64_000);
        let input: Vec<f32> = (0..g.num_vertices())
            .map(|i| (i % 7) as f32 * 0.5)
            .collect();
        let expected = reference(&g, &input);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(4, 2), EngineConfig::default());
        let result = run(&engine, input);
        let y = product(&result.values);
        for (a, b) in y.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-2 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn converges_in_a_handful_of_iterations() {
        let g = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 23);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = run(&engine, vec![1.0; g.num_vertices()]);
        assert!(
            result.stats.iterations <= 3,
            "SpMV should converge immediately"
        );
    }

    #[test]
    #[should_panic(expected = "input vector length")]
    fn mismatched_input_length_panics() {
        let g = generators::path(4);
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let _ = run(&engine, vec![1.0; 3]);
    }

    #[test]
    fn ones_input_builds_all_ones_vector() {
        let p = SpmvProgram::ones(5);
        assert_eq!(p.input, vec![1.0; 5]);
    }
}
