//! Social-network influence analysis: the workload the paper's introduction
//! motivates (ranking accounts in a social graph).
//!
//! Builds a Twitter-like follower graph proxy, then computes PageRank and TunkRank
//! on the SLFE engine and prints the most influential accounts, together with the
//! redundancy-reduction statistics for the arithmetic ("finish early") family.
//!
//! Run with: `cargo run --release --example social_influence`

use slfe::graph::datasets::Dataset;
use slfe::prelude::*;

fn top_k(scores: &[f32], k: usize) -> Vec<(usize, f32)> {
    let mut indexed: Vec<(usize, f32)> = scores.iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
    indexed.truncate(k);
    indexed
}

fn main() {
    let graph = Dataset::STwitter.load_scaled(8_000);
    println!(
        "follower graph proxy: {} accounts, {} follow edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let engine = SlfeEngine::build(&graph, ClusterConfig::new(8, 4), EngineConfig::default());

    // PageRank influence.
    let pr = pagerank::run(&engine);
    let ranks = slfe::apps::pagerank::ranks(&graph, &pr.values);
    println!("\nTop accounts by PageRank:");
    for (account, score) in top_k(&ranks, 5) {
        println!("  account {account:>6}  rank {score:.5}");
    }
    println!(
        "PageRank: {} iterations, {:.1}% early-converged vertices, {} counted work units",
        pr.iterations(),
        pr.early_converged_fraction(0.9) * 100.0,
        pr.stats.totals.work()
    );

    // TunkRank influence (expected audience of a message).
    let tr = tunkrank::run(&engine);
    let influence = slfe::apps::tunkrank::influence(
        &graph,
        &tr.values,
        slfe::apps::tunkrank::DEFAULT_RETWEET_PROBABILITY,
    );
    println!("\nTop accounts by TunkRank:");
    for (account, score) in top_k(&influence, 5) {
        println!("  account {account:>6}  influence {score:.3}");
    }

    // How much did "finish early" save against the Gemini-style baseline?
    let baseline = BaselineEngine::run(
        &slfe::baselines::GeminiEngine::build(&graph, ClusterConfig::new(8, 4)),
        &slfe::apps::pagerank::PageRankProgram::new(graph.num_vertices()),
    );
    println!(
        "\nPageRank work: SLFE {} vs Gemini {} counted units ({:.1}% less)",
        pr.stats.totals.work(),
        baseline.stats.totals.work(),
        pr.stats.work_improvement_percent_over(&baseline.stats)
    );
}
