/root/repo/target/debug/examples/engine_comparison-6997cf21387f4cf1.d: examples/engine_comparison.rs

/root/repo/target/debug/examples/libengine_comparison-6997cf21387f4cf1.rmeta: examples/engine_comparison.rs

examples/engine_comparison.rs:
