/root/repo/target/debug/examples/social_influence-9f35a43afcd00a77.d: examples/social_influence.rs Cargo.toml

/root/repo/target/debug/examples/libsocial_influence-9f35a43afcd00a77.rmeta: examples/social_influence.rs Cargo.toml

examples/social_influence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
