//! GraphChi-style baseline: out-of-core processing on a single machine.
//!
//! GraphChi trades performance for cost efficiency: the graph lives on disk in
//! shards and every iteration streams the shards back in, so execution time is
//! dominated by I/O (§4.3: "its bottleneck is the intensive I/O accesses", up to
//! 508× slower than SLFE in Figure 6c). The model here charges a simulated disk
//! read of every edge on every iteration and processes all vertices each round
//! (no frontier), on a single node.

use crate::gas::{GasConfig, GasEngine, Placement, ReplicationModel};
use crate::{BaselineEngine, BaselineKind};
use slfe_cluster::ClusterConfig;
use slfe_core::{GraphProgram, ProgramResult};
use slfe_graph::Graph;

/// Simulated sequential-read bandwidth of the backing disk, bytes per second.
/// 500 MB/s models the SATA SSD class of machine GraphChi targets.
pub const DISK_BANDWIDTH_BYTES_PER_SECOND: f64 = 500.0e6;

/// The GraphChi-like engine.
#[derive(Debug)]
pub struct GraphChiEngine<'g> {
    inner: GasEngine<'g>,
}

impl<'g> GraphChiEngine<'g> {
    /// Build a GraphChi-like engine with `workers` threads on one machine.
    pub fn build(graph: &'g Graph, workers: usize) -> Self {
        let config = GasConfig {
            placement: Placement::Chunking,
            replication: ReplicationModel::None,
            // Out-of-core streaming: every vertex's edges are visited every
            // iteration as the shards are scanned.
            frontier: false,
            per_vertex_overhead: 2,
            io_seconds_per_edge: 1.0 / DISK_BANDWIDTH_BYTES_PER_SECOND,
            ..GasConfig::base(BaselineKind::GraphChi.name())
        };
        Self {
            inner: GasEngine::build(graph, ClusterConfig::new(1, workers.max(1)), config),
        }
    }

    /// Access the underlying executor.
    pub fn engine(&self) -> &GasEngine<'g> {
        &self.inner
    }
}

impl BaselineEngine for GraphChiEngine<'_> {
    fn kind(&self) -> BaselineKind {
        BaselineKind::GraphChi
    }

    fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        self.inner.run(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ligra::LigraEngine;
    use slfe_apps::{pagerank, sssp};
    use slfe_graph::datasets::Dataset;

    #[test]
    fn sssp_is_correct_despite_the_streaming_model() {
        let g = Dataset::Pokec.load_scaled(64_000);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let engine = GraphChiEngine::build(&g, 2);
        let result = engine.run(&sssp::SsspProgram { root });
        let expected = sssp::reference(&g, root);
        for (&x, &y) in result.values.iter().zip(&expected) {
            assert!((x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-3);
        }
        assert_eq!(result.stats.engine, "graphchi");
        assert_eq!(result.stats.totals.messages_sent, 0);
    }

    #[test]
    fn is_much_slower_than_an_in_memory_engine() {
        // Figure 6's single-machine comparison: GraphChi is orders of magnitude
        // slower than in-memory engines because of per-iteration I/O.
        let g = Dataset::LiveJournal.load_scaled(96_000);
        let graphchi = GraphChiEngine::build(&g, 4);
        let ligra = LigraEngine::build(&g, 4);
        let program = pagerank::PageRankProgram::new(g.num_vertices());
        let a = graphchi.run(&program);
        let b = ligra.run(&program);
        assert!(
            a.stats.phases.execution_seconds > 2.0 * b.stats.phases.execution_seconds,
            "GraphChi ({}) should be far slower than Ligra ({})",
            a.stats.phases.execution_seconds,
            b.stats.phases.execution_seconds
        );
    }
}
