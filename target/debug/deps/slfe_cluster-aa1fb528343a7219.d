/root/repo/target/debug/deps/slfe_cluster-aa1fb528343a7219.d: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

/root/repo/target/debug/deps/slfe_cluster-aa1fb528343a7219: crates/cluster/src/lib.rs crates/cluster/src/cluster.rs crates/cluster/src/comm.rs crates/cluster/src/config.rs crates/cluster/src/stealing.rs

crates/cluster/src/lib.rs:
crates/cluster/src/cluster.rs:
crates/cluster/src/comm.rs:
crates/cluster/src/config.rs:
crates/cluster/src/stealing.rs:
