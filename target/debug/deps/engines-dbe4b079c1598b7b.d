/root/repo/target/debug/deps/engines-dbe4b079c1598b7b.d: crates/bench/benches/engines.rs

/root/repo/target/debug/deps/libengines-dbe4b079c1598b7b.rmeta: crates/bench/benches/engines.rs

crates/bench/benches/engines.rs:
