//! Edge-update batches against the immutable [`Graph`].
//!
//! The SLFE engine's storage is a frozen CSR + CSC pair — ideal for scan-heavy
//! iteration, hostile to in-place mutation. Live traffic does not rebuild the
//! world per edge, so updates are *staged* in an [`UpdateBatch`] and applied in
//! one shot: [`Graph::apply_batch`] produces a new graph by rebuilding **only the
//! adjacency ranges of touched endpoints** ([`crate::Adjacency::patched`]) and
//! copying every untouched range wholesale. The returned [`BatchEffect`] names
//! the *dirty* vertices — the endpoints of edges that actually changed — which is
//! exactly the seed set the warm-start engine path and the RRG repair pass need.
//!
//! Semantics (per `(src, dst)` pair, the batch's unit of change):
//!
//! * **insert** is an *upsert*: if the pair exists its weight is replaced (and
//!   duplicate copies collapse to one edge); otherwise the edge is added.
//!   Inserting a pair that already exists with the identical weight (and no
//!   duplicates) is a no-op and does not dirty its endpoints.
//! * **delete** removes every copy of the pair; deleting an absent pair is a
//!   recorded no-op ([`BatchEffect::missing_deletes`]).
//! * The **last staged operation wins** when a batch touches the same pair twice.
//! * Vertex ids are stable: the id space only ever grows (to cover inserted
//!   endpoints beyond the current count), never shrinks or renumbers — which is
//!   what lets previous fixpoints be reused index-for-index.

use crate::graph::Graph;
use crate::types::{EdgeWeight, VertexId};
use std::collections::BTreeMap;

/// One staged edge operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EdgeOp {
    /// Upsert the pair with this weight.
    Insert(EdgeWeight),
    /// Remove every copy of the pair.
    Delete,
}

/// A staged batch of edge insertions and deletions.
///
/// Batches are cheap value types: stage operations with [`UpdateBatch::insert`] /
/// [`UpdateBatch::delete`], then apply them with [`Graph::apply_batch`].
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    ops: BTreeMap<(VertexId, VertexId), EdgeOp>,
    staged: usize,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reject the `INVALID_VERTEX` sentinel (and with it the pathological
    /// id-space blow-up a single garbage endpoint would cause: the vertex space
    /// grows to cover every staged id, and `u32::MAX` means ~34 GB of offsets).
    /// Serving layers validating untrusted client input should range-check ids
    /// against their own policy *before* staging.
    fn check_ids(src: VertexId, dst: VertexId) {
        assert!(
            src != crate::INVALID_VERTEX && dst != crate::INVALID_VERTEX,
            "edge endpoint is the INVALID_VERTEX sentinel"
        );
    }

    /// Stage an edge insertion (upsert of `(src, dst)` to `weight`).
    pub fn insert(&mut self, src: VertexId, dst: VertexId, weight: EdgeWeight) -> &mut Self {
        Self::check_ids(src, dst);
        self.staged += 1;
        self.ops.insert((src, dst), EdgeOp::Insert(weight));
        self
    }

    /// Stage an unweighted (weight 1.0) insertion.
    pub fn insert_unweighted(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        self.insert(src, dst, 1.0)
    }

    /// Stage an edge deletion.
    pub fn delete(&mut self, src: VertexId, dst: VertexId) -> &mut Self {
        Self::check_ids(src, dst);
        self.staged += 1;
        self.ops.insert((src, dst), EdgeOp::Delete);
        self
    }

    /// Stage the insertion in both directions (for symmetrised graphs, e.g. the
    /// Connected Components inputs).
    pub fn insert_symmetric(&mut self, a: VertexId, b: VertexId, weight: EdgeWeight) -> &mut Self {
        self.insert(a, b, weight).insert(b, a, weight)
    }

    /// Stage the deletion in both directions.
    pub fn delete_symmetric(&mut self, a: VertexId, b: VertexId) -> &mut Self {
        self.delete(a, b).delete(b, a)
    }

    /// Number of distinct `(src, dst)` pairs staged (later stages of the same pair
    /// overwrite earlier ones).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total operations staged, counting overwritten ones.
    pub fn staged_ops(&self) -> usize {
        self.staged
    }

    /// Iterate the staged `(src, dst, is_delete)` pairs in key order.
    pub fn pairs(&self) -> impl Iterator<Item = (VertexId, VertexId, bool)> + '_ {
        self.ops
            .iter()
            .map(|(&(s, d), op)| (s, d, matches!(op, EdgeOp::Delete)))
    }

    /// Rebuild the batch with every endpoint passed through `f` — the id
    /// translation hook serving layers use to admit client batches staged in
    /// external ids into a physically remapped graph. Resolution order is
    /// preserved because the batch is already resolved (one op per pair) and
    /// `f` is a bijection on the ids in play.
    pub fn mapped(&self, mut f: impl FnMut(VertexId) -> VertexId) -> UpdateBatch {
        let mut out = UpdateBatch::new();
        for (src, dst, weight) in self.stages() {
            match weight {
                Some(w) => out.insert(f(src), f(dst), w),
                None => out.delete(f(src), f(dst)),
            };
        }
        out
    }

    /// Iterate the resolved stages in key order, weights included:
    /// `(src, dst, Some(weight))` for an upsert, `(src, dst, None)` for a
    /// deletion. Unlike [`UpdateBatch::pairs`] this loses nothing the batch
    /// will do to the graph — it is the basis of the WAL encoding.
    pub fn stages(&self) -> impl Iterator<Item = (VertexId, VertexId, Option<EdgeWeight>)> + '_ {
        self.ops.iter().map(|(&(s, d), op)| match op {
            EdgeOp::Insert(w) => (s, d, Some(*w)),
            EdgeOp::Delete => (s, d, None),
        })
    }

    /// Encode the *resolved* batch (distinct pairs, last stage winning) as
    /// bytes for the write-ahead log. Overwrite history is not persisted:
    /// [`Graph::apply_batch`] only ever consumes the resolved map, so a
    /// decoded batch applies identically even though its
    /// [`UpdateBatch::staged_ops`] counts only the surviving stages.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.ops.len() * 13);
        crate::io::binary::put_u32(&mut out, self.ops.len() as u32);
        for (src, dst, weight) in self.stages() {
            crate::io::binary::put_u32(&mut out, src);
            crate::io::binary::put_u32(&mut out, dst);
            match weight {
                Some(w) => {
                    crate::io::binary::put_u8(&mut out, 1);
                    crate::io::binary::put_f32(&mut out, w);
                }
                None => crate::io::binary::put_u8(&mut out, 0),
            }
        }
        out
    }

    /// Decode a batch written by [`UpdateBatch::to_bytes`]. Returns `None` on
    /// any structural problem — short buffer, trailing garbage, unknown op
    /// tag, or a sentinel vertex id — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = crate::io::binary::Reader::new(bytes);
        let count = r.u32()? as usize;
        let mut batch = UpdateBatch::new();
        for _ in 0..count {
            let src = r.u32()?;
            let dst = r.u32()?;
            if src == crate::INVALID_VERTEX || dst == crate::INVALID_VERTEX {
                return None;
            }
            match r.u8()? {
                0 => batch.delete(src, dst),
                1 => batch.insert(src, dst, r.f32()?),
                _ => return None,
            };
        }
        if !r.is_empty() {
            return None;
        }
        Some(batch)
    }
}

/// What applying a batch actually changed — the contract between graph mutation
/// and the incremental recomputation layers above it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchEffect {
    /// Endpoints of every edge that changed (inserted, reweighted or deleted),
    /// ascending and de-duplicated. These are the seeds for warm-start frontiers
    /// and RRG repair; no-op stages contribute nothing.
    pub dirty: Vec<VertexId>,
    /// Destinations of deleted or reweighted pairs, ascending and de-duplicated
    /// — the only vertices whose fixpoint value can *worsen* under a monotone
    /// program (a pure insertion can only improve values). Warm restarts seed
    /// their invalidation pass from exactly this set.
    pub worsened_dsts: Vec<VertexId>,
    /// Directed edges added (upserts of absent pairs).
    pub edges_inserted: usize,
    /// Directed edges removed (counting duplicate copies).
    pub edges_deleted: usize,
    /// Pairs whose weight was replaced in place.
    pub edges_reweighted: usize,
    /// Staged deletions of pairs that did not exist (no-ops).
    pub missing_deletes: usize,
    /// Vertices added to the id space by this batch.
    pub vertices_added: usize,
}

impl BatchEffect {
    /// `true` when the batch changed nothing (every stage was a no-op).
    pub fn is_noop(&self) -> bool {
        self.dirty.is_empty() && self.vertices_added == 0
    }

    /// Total changed pairs.
    pub fn changed_pairs(&self) -> usize {
        self.edges_inserted + self.edges_deleted + self.edges_reweighted
    }

    /// The dirty set as a [`crate::Bitset`] over `num_vertices` bits.
    pub fn dirty_bitset(&self, num_vertices: usize) -> crate::Bitset {
        let mut set = crate::Bitset::new(num_vertices);
        for &v in &self.dirty {
            set.set(v as usize);
        }
        set
    }
}

/// Per-vertex staged changes, grouped for one adjacency direction.
type DirectionEdits = BTreeMap<VertexId, Vec<(VertexId, EdgeOp)>>;

impl Graph {
    /// Apply a staged [`UpdateBatch`], producing the mutated graph and the
    /// [`BatchEffect`] describing what changed.
    ///
    /// Only the adjacency ranges of touched endpoints are rebuilt — every other
    /// vertex's CSR/CSC range is copied verbatim — so the cost is
    /// `O(V + E + touched-degree)` array movement with no re-sorting of untouched
    /// lists. The original graph is untouched (persistent-structure style), which
    /// keeps previous fixpoints queryable while the new version converges.
    pub fn apply_batch(&self, batch: &UpdateBatch) -> (Graph, BatchEffect) {
        let mut effect = BatchEffect::default();
        // Resolve each staged pair against the current graph, dropping no-ops.
        let mut by_src: DirectionEdits = BTreeMap::new();
        let mut by_dst: DirectionEdits = BTreeMap::new();
        let mut max_id: usize = self.num_vertices();
        let mut dirty: Vec<VertexId> = Vec::new();
        for (&(src, dst), &op) in &batch.ops {
            // Adjacency lists are sorted by the neighbor's *external* id
            // (identical to the physical id on unremapped graphs), so the
            // pair's copies sit in one contiguous range found by binary search
            // — no linear scan of hub-degree lists on the serving hot path.
            // Searching by external key and comparing for equality by it is
            // sound because the remap is a bijection: key(d) == key(dst) ⟺
            // d == dst.
            let (copies, first_weight) = if (src as usize) < self.num_vertices() {
                let key = self.external_id(dst);
                let neighbors = self.out_adjacency().neighbors(src);
                let lo = neighbors.partition_point(|&d| self.external_id(d) < key);
                let hi = lo + neighbors[lo..].partition_point(|&d| d == dst);
                (hi - lo, self.out_adjacency().weights(src).get(lo).copied())
            } else {
                (0, None)
            };
            let changed = match op {
                EdgeOp::Delete => {
                    if copies == 0 {
                        effect.missing_deletes += 1;
                        false
                    } else {
                        effect.edges_deleted += copies;
                        true
                    }
                }
                EdgeOp::Insert(weight) => {
                    let identical =
                        copies == 1 && first_weight.map(f32::to_bits) == Some(weight.to_bits());
                    if identical {
                        false
                    } else if copies == 0 {
                        effect.edges_inserted += 1;
                        true
                    } else {
                        // Collapse duplicates into one reweighted edge.
                        effect.edges_reweighted += 1;
                        effect.edges_deleted += copies - 1;
                        true
                    }
                }
            };
            if changed {
                // Any surviving stage that is not a pure insertion removed or
                // replaced an existing edge, so `dst`'s value may worsen.
                if copies > 0 {
                    effect.worsened_dsts.push(dst);
                }
                by_src.entry(src).or_default().push((dst, op));
                by_dst.entry(dst).or_default().push((src, op));
                max_id = max_id.max(src as usize + 1).max(dst as usize + 1);
                dirty.push(src);
                dirty.push(dst);
            }
        }
        dirty.sort_unstable();
        dirty.dedup();
        effect.dirty = dirty;
        effect.worsened_dsts.sort_unstable();
        effect.worsened_dsts.dedup();
        effect.vertices_added = max_id - self.num_vertices();
        if effect.is_noop() {
            return (self.clone(), effect);
        }

        let out = self
            .out_adjacency()
            .patched(max_id, &self.direction_edits(self.out_adjacency(), &by_src));
        let incoming = self
            .in_adjacency()
            .patched(max_id, &self.direction_edits(self.in_adjacency(), &by_dst));
        let graph = Graph::from_parts_with_remap(max_id, out, incoming, self.remap_arc());
        debug_assert_eq!(
            graph.num_edges(),
            self.num_edges() + effect.edges_inserted - effect.edges_deleted
        );
        (graph, effect)
    }

    /// Materialise the full replacement adjacency list of every touched vertex in
    /// one direction: old list minus changed pairs, plus upserted pairs, sorted
    /// by the neighbor's external id (the canonical list order).
    fn direction_edits(
        &self,
        adjacency: &crate::Adjacency,
        staged: &DirectionEdits,
    ) -> Vec<(VertexId, Vec<(VertexId, EdgeWeight)>)> {
        let n = adjacency.num_vertices();
        staged
            .iter()
            .map(|(&key, changes)| {
                let mut list: Vec<(VertexId, EdgeWeight)> = if (key as usize) < n {
                    adjacency
                        .neighbors_with_weights(key)
                        .filter(|(other, _)| changes.iter().all(|&(c, _)| c != *other))
                        .collect()
                } else {
                    Vec::new()
                };
                for &(other, op) in changes {
                    if let EdgeOp::Insert(weight) = op {
                        list.push((other, weight));
                    }
                }
                list.sort_unstable_by_key(|&(other, _)| self.external_id(other));
                debug_assert!(list
                    .windows(2)
                    .all(|w| self.external_id(w[0].0) < self.external_id(w[1].0)));
                (key, list)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators;
    use crate::rng::SplitMix64;
    use crate::types::Edge;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new();
        b.extend_weighted([(0, 1, 1.0), (1, 3, 2.0), (0, 2, 4.0), (2, 3, 1.0)]);
        b.build()
    }

    /// Oracle: apply the batch naively to the edge list and rebuild from scratch.
    fn oracle_apply(graph: &Graph, batch: &UpdateBatch) -> Graph {
        let mut edges: Vec<Edge> = graph.edges().to_vec();
        let mut max_id = graph.num_vertices();
        for (&(src, dst), &op) in &batch.ops {
            match op {
                EdgeOp::Delete => edges.retain(|e| !(e.src == src && e.dst == dst)),
                EdgeOp::Insert(w) => {
                    let existed_identical = {
                        let copies: Vec<&Edge> = edges
                            .iter()
                            .filter(|e| e.src == src && e.dst == dst)
                            .collect();
                        copies.len() == 1 && copies[0].weight.to_bits() == w.to_bits()
                    };
                    if !existed_identical {
                        edges.retain(|e| !(e.src == src && e.dst == dst));
                        edges.push(Edge::new(src, dst, w));
                        max_id = max_id.max(src as usize + 1).max(dst as usize + 1);
                    }
                }
            }
        }
        Graph::from_edges(max_id, edges)
    }

    fn assert_same_graph(a: &Graph, b: &Graph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out list of {v}");
            assert_eq!(a.in_neighbors(v), b.in_neighbors(v), "in list of {v}");
            assert_eq!(a.out_weights(v), b.out_weights(v), "out weights of {v}");
            assert_eq!(a.in_weights(v), b.in_weights(v), "in weights of {v}");
        }
    }

    #[test]
    fn insert_adds_edge_and_dirties_endpoints() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(3, 0, 7.0);
        let (g2, effect) = g.apply_batch(&batch);
        assert!(g2.has_edge(3, 0));
        assert_eq!(g2.num_edges(), 5);
        assert_eq!(effect.dirty, vec![0, 3]);
        assert_eq!(effect.edges_inserted, 1);
        g2.validate().unwrap();
        // The original graph is untouched.
        assert!(!g.has_edge(3, 0));
    }

    #[test]
    fn delete_removes_edge_everywhere() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let (g2, effect) = g.apply_batch(&batch);
        assert!(!g2.has_edge(0, 1));
        assert!(!g2.in_neighbors(1).contains(&0));
        assert_eq!(effect.edges_deleted, 1);
        assert_eq!(effect.dirty, vec![0, 1]);
        g2.validate().unwrap();
    }

    #[test]
    fn upsert_replaces_weight_without_duplicating() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 9.5);
        let (g2, effect) = g.apply_batch(&batch);
        assert_eq!(g2.num_edges(), 4);
        assert_eq!(g2.out_weights(0), &[9.5, 4.0]);
        assert_eq!(effect.edges_reweighted, 1);
        assert_eq!(effect.edges_inserted, 0);
    }

    #[test]
    fn identical_reinsert_and_missing_delete_are_noops() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 1.0).delete(2, 0);
        let (g2, effect) = g.apply_batch(&batch);
        assert!(effect.is_noop());
        assert_eq!(effect.missing_deletes, 1);
        assert_same_graph(&g, &g2);
    }

    #[test]
    fn batch_grows_the_vertex_space() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(3, 9, 1.0);
        let (g2, effect) = g.apply_batch(&batch);
        assert_eq!(g2.num_vertices(), 10);
        assert_eq!(effect.vertices_added, 6);
        assert_eq!(g2.out_degree(7), 0);
        assert!(g2.has_edge(3, 9));
        g2.validate().unwrap();
    }

    #[test]
    fn last_staged_operation_wins() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(0, 3, 2.0).delete(0, 3);
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.staged_ops(), 2);
        let (g2, _) = g.apply_batch(&batch);
        assert!(!g2.has_edge(0, 3));

        let mut batch = UpdateBatch::new();
        batch.delete(0, 1).insert(0, 1, 5.0);
        let (g3, effect) = g.apply_batch(&batch);
        assert_eq!(g3.out_weights(0)[0], 5.0);
        assert_eq!(effect.edges_reweighted, 1);
    }

    #[test]
    fn duplicate_pairs_collapse_on_upsert_and_delete() {
        let g = Graph::from_edges(
            3,
            vec![
                Edge::new(0, 1, 1.0),
                Edge::new(0, 1, 2.0),
                Edge::new(1, 2, 1.0),
            ],
        );
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 3.0);
        let (g2, effect) = g.apply_batch(&batch);
        assert_eq!(g2.out_neighbors(0), &[1]);
        assert_eq!(g2.out_weights(0), &[3.0]);
        assert_eq!(effect.edges_deleted, 1);
        assert_eq!(effect.edges_reweighted, 1);

        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let (g3, effect) = g.apply_batch(&batch);
        assert_eq!(g3.out_degree(0), 0);
        assert_eq!(effect.edges_deleted, 2);
        g3.validate().unwrap();
    }

    #[test]
    fn self_loops_update_both_directions() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(2, 2, 1.5);
        let (g2, _) = g.apply_batch(&batch);
        assert!(g2.has_edge(2, 2));
        assert!(g2.in_neighbors(2).contains(&2));
        g2.validate().unwrap();
        let mut batch = UpdateBatch::new();
        batch.delete(2, 2);
        let (g3, _) = g2.apply_batch(&batch);
        assert!(!g3.has_edge(2, 2));
        g3.validate().unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop_clone() {
        let g = diamond();
        let (g2, effect) = g.apply_batch(&UpdateBatch::new());
        assert!(effect.is_noop());
        assert_same_graph(&g, &g2);
    }

    #[test]
    fn symmetric_helpers_stage_both_directions() {
        let mut batch = UpdateBatch::new();
        batch.insert_symmetric(1, 2, 3.0).delete_symmetric(4, 5);
        assert_eq!(batch.len(), 4);
        let pairs: Vec<_> = batch.pairs().collect();
        assert!(pairs.contains(&(1, 2, false)));
        assert!(pairs.contains(&(2, 1, false)));
        assert!(pairs.contains(&(4, 5, true)));
        assert!(pairs.contains(&(5, 4, true)));
    }

    #[test]
    fn random_batches_match_the_full_rebuild_oracle() {
        for seed in 0..6u64 {
            let g = generators::rmat(300, 2000, 0.57, 0.19, 0.19, seed + 100);
            let mut rng = SplitMix64::seed_from_u64(seed);
            let mut batch = UpdateBatch::new();
            for _ in 0..120 {
                let src = rng.range_u32(0, 320); // occasionally beyond the id space
                let dst = rng.range_u32(0, 320);
                if rng.next_f64() < 0.5 {
                    batch.insert(src, dst, rng.range_f32(1.0, 10.0));
                } else if (src as usize) < g.num_vertices() {
                    // Delete an existing out-edge of src when there is one, so
                    // deletions actually hit edges.
                    if let Some(&target) = g.out_neighbors(src).first() {
                        batch.delete(src, target);
                    } else {
                        batch.delete(src, dst);
                    }
                }
            }
            let (patched, effect) = g.apply_batch(&batch);
            let oracle = oracle_apply(&g, &batch);
            assert_same_graph(&patched, &oracle);
            patched.validate().unwrap();
            assert_eq!(
                patched.num_edges(),
                g.num_edges() + effect.edges_inserted - effect.edges_deleted
            );
            // Dirty endpoints are exactly the endpoints of changed pairs.
            for &v in &effect.dirty {
                assert!((v as usize) < patched.num_vertices());
            }
        }
    }

    #[test]
    fn stages_preserve_weights_and_deletes() {
        let mut batch = UpdateBatch::new();
        batch.insert(0, 1, 2.5).delete(3, 4).insert(0, 1, 7.0);
        let stages: Vec<_> = batch.stages().collect();
        assert_eq!(stages, vec![(0, 1, Some(7.0)), (3, 4, None)]);
    }

    #[test]
    fn batch_bytes_round_trip_applies_identically() {
        for seed in 0..8u64 {
            let g = generators::rmat(120, 700, 0.57, 0.19, 0.19, seed + 40);
            let mut rng = SplitMix64::seed_from_u64(seed * 31 + 7);
            let mut batch = UpdateBatch::new();
            for _ in 0..40 {
                let src = rng.range_u32(0, 130);
                let dst = rng.range_u32(0, 130);
                if rng.next_f64() < 0.6 {
                    batch.insert(src, dst, rng.range_f32(0.5, 9.0));
                } else {
                    batch.delete(src, dst);
                }
            }
            let decoded = UpdateBatch::from_bytes(&batch.to_bytes()).expect("round trip");
            assert_eq!(decoded.len(), batch.len());
            assert_eq!(
                decoded.stages().collect::<Vec<_>>(),
                batch.stages().collect::<Vec<_>>()
            );
            let (a, ea) = g.apply_batch(&batch);
            let (b, eb) = g.apply_batch(&decoded);
            assert_same_graph(&a, &b);
            assert_eq!(ea, eb);
        }
    }

    #[test]
    fn corrupt_batch_bytes_decode_to_none() {
        let mut batch = UpdateBatch::new();
        batch.insert(1, 2, 3.0).delete(4, 5);
        let bytes = batch.to_bytes();
        // Truncations.
        for cut in 0..bytes.len() {
            assert!(
                UpdateBatch::from_bytes(&bytes[..cut]).is_none(),
                "cut {cut}"
            );
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(UpdateBatch::from_bytes(&long).is_none());
        // Unknown op tag.
        let mut bad_tag = bytes.clone();
        bad_tag[12] = 9;
        assert!(UpdateBatch::from_bytes(&bad_tag).is_none());
    }

    #[test]
    fn apply_batch_on_remapped_graph_matches_unremapped() {
        use crate::remap::IdRemap;
        for seed in 0..4u64 {
            let g = generators::rmat(150, 900, 0.57, 0.19, 0.19, seed + 11);
            // Random permutation of the physical ids.
            let n = g.num_vertices();
            let mut forward: Vec<VertexId> = (0..n as VertexId).collect();
            let mut rng = SplitMix64::seed_from_u64(seed * 17 + 3);
            for i in (1..n).rev() {
                let j = rng.range_u32(0, i as u32 + 1) as usize;
                forward.swap(i, j);
            }
            let r = g.remapped(&IdRemap::from_forward(forward));

            // Stage a batch in external ids, including growth beyond n.
            let mut ext_batch = UpdateBatch::new();
            for _ in 0..60 {
                let src = rng.range_u32(0, n as u32 + 20);
                let dst = rng.range_u32(0, n as u32 + 20);
                if rng.next_f64() < 0.6 {
                    ext_batch.insert(src, dst, rng.range_f32(0.5, 9.0));
                } else {
                    ext_batch.delete(src, dst);
                }
            }
            let phys_batch = ext_batch.mapped(|v| r.to_physical(v));

            let (g2, eff) = g.apply_batch(&ext_batch);
            let (r2, eff_r) = r.apply_batch(&phys_batch);
            r2.validate().unwrap();
            assert_eq!(r2.num_vertices(), g2.num_vertices());
            assert_eq!(r2.num_edges(), g2.num_edges());
            for ext in g2.vertices() {
                let p = r2.to_physical(ext);
                let ext_nbrs: Vec<VertexId> = r2
                    .out_neighbors(p)
                    .iter()
                    .map(|&u| r2.external_id(u))
                    .collect();
                assert_eq!(ext_nbrs, g2.out_neighbors(ext));
                assert_eq!(r2.out_weights(p), g2.out_weights(ext));
            }
            // Effects agree modulo the id relabelling.
            assert_eq!(eff_r.edges_inserted, eff.edges_inserted);
            assert_eq!(eff_r.edges_deleted, eff.edges_deleted);
            assert_eq!(eff_r.edges_reweighted, eff.edges_reweighted);
            assert_eq!(eff_r.missing_deletes, eff.missing_deletes);
            assert_eq!(eff_r.vertices_added, eff.vertices_added);
            let mut dirty_ext: Vec<VertexId> =
                eff_r.dirty.iter().map(|&v| r2.external_id(v)).collect();
            dirty_ext.sort_unstable();
            assert_eq!(dirty_ext, eff.dirty);
        }
    }

    #[test]
    fn dirty_bitset_covers_dirty_vertices() {
        let g = diamond();
        let mut batch = UpdateBatch::new();
        batch.insert(1, 0, 2.0);
        let (_, effect) = g.apply_batch(&batch);
        let bits = effect.dirty_bitset(4);
        assert!(bits.get(0) && bits.get(1));
        assert_eq!(bits.count_ones(), 2);
    }
}
