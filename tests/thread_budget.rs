//! The thread-spawn budget tripwire (PR 3), in its own test binary on purpose:
//! it measures the **process-wide** spawn counter
//! (`slfe::cluster::pool::process_threads_spawned`), so it must be the only
//! test in its process — a single `#[test]` per binary guarantees no
//! concurrent test inflates the delta, under any `--test-threads` setting.
//!
//! Unlike the per-pool counts in `tests/pool.rs` (which are constant by
//! construction), this counter has teeth: a regression that sneaks a transient
//! pool into a hot path — per-phase `WorkerPool::new`, or
//! `ChunkScheduler::execute_threaded` inside the engine loop, or
//! `RrGuidance::generate_parallel(workers)` where `generate_parallel_on(pool)`
//! belongs — multiplies the process-wide delta by the phase count and fails
//! the budget below.

use slfe::prelude::*;

#[test]
fn engine_lifecycle_spawns_at_most_total_workers_threads_process_wide() {
    let graph = slfe::graph::generators::rmat(4_000, 28_000, 0.57, 0.19, 0.19, 90);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let cluster = ClusterConfig::new(2, 4);
    let total_workers = cluster.total_workers() as u64;

    let before = slfe::cluster::pool::process_threads_spawned();
    // Build (pool + parallel RRG), run a multi-iteration min/max program, an
    // arithmetic program, and a warm restart — dozens of phases in total.
    let engine = SlfeEngine::build(&graph, cluster, EngineConfig::default());
    let sssp = engine.run(&slfe::apps::sssp::SsspProgram { root });
    assert!(sssp.stats.iterations >= 5, "want a multi-iteration run");
    let _pr = slfe::apps::pagerank::run(&engine);
    let dirty = slfe::graph::Bitset::new(graph.num_vertices());
    let _warm = engine.run_from(&slfe::apps::sssp::SsspProgram { root }, &sssp, &dirty);
    let delta = slfe::cluster::pool::process_threads_spawned() - before;

    // PR 1 spawned O(iterations × phases × workers) threads for the same
    // workload; the persistent pool pins the whole lifecycle under budget.
    assert!(
        delta <= total_workers,
        "engine lifecycle spawned {delta} threads, budget is {total_workers}"
    );
    assert_eq!(
        delta,
        engine.pool().threads_spawned(),
        "every spawn must belong to the engine's own pool"
    );
}
