/root/repo/target/debug/deps/slfe_metrics-74b894189c52d5a8.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/debug/deps/libslfe_metrics-74b894189c52d5a8.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/imbalance.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/trace.rs:
