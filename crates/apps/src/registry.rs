//! Application registry: the classification of Table 1.

use slfe_core::AggregationKind;

/// The applications implemented in this crate, tagged with their aggregation
/// family. The first five (`Sssp`, `ConnectedComponents`, `WidestPath`, `PageRank`,
/// `TunkRank`) are the ones the paper's evaluation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKind {
    /// Single Source Shortest Path.
    Sssp,
    /// Breadth-first search (hop distance).
    Bfs,
    /// Connected components via min-label propagation.
    ConnectedComponents,
    /// Widest (maximum bottleneck) path.
    WidestPath,
    /// PageRank.
    PageRank,
    /// TunkRank follower-influence.
    TunkRank,
    /// Sparse matrix-vector multiplication.
    SpMV,
    /// Heat diffusion.
    HeatSimulation,
    /// Number of paths from a root in a DAG.
    NumPaths,
}

impl AppKind {
    /// Every implemented application.
    pub const ALL: [AppKind; 9] = [
        AppKind::Sssp,
        AppKind::Bfs,
        AppKind::ConnectedComponents,
        AppKind::WidestPath,
        AppKind::PageRank,
        AppKind::TunkRank,
        AppKind::SpMV,
        AppKind::HeatSimulation,
        AppKind::NumPaths,
    ];

    /// The five applications of the paper's evaluation (§4.1), in table order.
    pub const PAPER_EVALUATION: [AppKind; 5] = [
        AppKind::Sssp,
        AppKind::ConnectedComponents,
        AppKind::WidestPath,
        AppKind::PageRank,
        AppKind::TunkRank,
    ];

    /// Which aggregation family the application belongs to (Table 1).
    pub fn aggregation(self) -> AggregationKind {
        match self {
            AppKind::Sssp | AppKind::Bfs | AppKind::ConnectedComponents | AppKind::WidestPath => {
                AggregationKind::MinMax
            }
            AppKind::PageRank
            | AppKind::TunkRank
            | AppKind::SpMV
            | AppKind::HeatSimulation
            | AppKind::NumPaths => AggregationKind::Arithmetic,
        }
    }

    /// Short name used by reports and the harness.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Sssp => "SSSP",
            AppKind::Bfs => "BFS",
            AppKind::ConnectedComponents => "CC",
            AppKind::WidestPath => "WP",
            AppKind::PageRank => "PR",
            AppKind::TunkRank => "TR",
            AppKind::SpMV => "SpMV",
            AppKind::HeatSimulation => "Heat",
            AppKind::NumPaths => "NumPaths",
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_evaluation_apps_match_section_4_1() {
        let names: Vec<&str> = AppKind::PAPER_EVALUATION.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["SSSP", "CC", "WP", "PR", "TR"]);
    }

    #[test]
    fn table1_classification_is_respected() {
        assert_eq!(AppKind::Sssp.aggregation(), AggregationKind::MinMax);
        assert_eq!(
            AppKind::ConnectedComponents.aggregation(),
            AggregationKind::MinMax
        );
        assert_eq!(AppKind::WidestPath.aggregation(), AggregationKind::MinMax);
        assert_eq!(AppKind::PageRank.aggregation(), AggregationKind::Arithmetic);
        assert_eq!(AppKind::TunkRank.aggregation(), AggregationKind::Arithmetic);
        assert_eq!(AppKind::SpMV.aggregation(), AggregationKind::Arithmetic);
        assert_eq!(
            AppKind::HeatSimulation.aggregation(),
            AggregationKind::Arithmetic
        );
    }

    #[test]
    fn all_contains_every_paper_app() {
        for app in AppKind::PAPER_EVALUATION {
            assert!(AppKind::ALL.contains(&app));
        }
        assert_eq!(AppKind::ALL.len(), 9);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(AppKind::PageRank.to_string(), "PR");
        assert_eq!(format!("{}", AppKind::NumPaths), "NumPaths");
    }
}
