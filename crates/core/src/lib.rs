//! # slfe-core
//!
//! The SLFE engine — the paper's primary contribution.
//!
//! SLFE ("start late or finish early") reduces the redundant computations that
//! Bellman-Ford-style vertex-centric execution introduces, using a cheap
//! topological preprocessing pass:
//!
//! 1. [`rrg`] implements Algorithm 1: a unit-weight label-propagation pass that
//!    records, for every vertex, the **last propagation level** at which it can
//!    still receive a new value (`last_iter`). This *Redundancy-Reduction Guidance*
//!    (RRG) is produced once per partitioned graph and reused by every application.
//! 2. [`engine`] implements the RR-aware push/pull runtime of Algorithms 2–3.
//!    For min/max-aggregation applications the *single ruler* (the current iteration
//!    number) delays a vertex's first computation until its `last_iter` — "start
//!    late". For arithmetic-aggregation applications the *multi ruler* (a per-vertex
//!    stability counter) stops computing a vertex once it has been stable for
//!    `last_iter` consecutive iterations — "finish early".
//! 3. [`program`] is the application-facing API corresponding to Table 3's
//!    `edgeProc` / `vertexUpdate`: applications describe edge contributions, the
//!    aggregation that combines them and the per-vertex update, and the engine
//!    schedules everything else.
//!
//! The engine runs on the simulated cluster of `slfe-cluster`: graph partitions map
//! to logical nodes, intra-node work is spread over mini-chunks with work stealing,
//! and inter-node updates are counted and priced by the communication cost model.

pub mod config;
pub mod engine;
pub mod program;
pub mod result;
pub mod rrg;

pub use config::{CostModel, EngineConfig, RedundancyMode};
pub use engine::SlfeEngine;
pub use program::{AggregationKind, GraphProgram};
pub use result::ProgramResult;
pub use rrg::{RepairReport, RrGuidance};
pub use slfe_graph::Degrees;
pub use slfe_metrics::TelemetryConfig;
