/root/repo/target/debug/deps/preprocessing-6283788ad001236c.d: crates/bench/benches/preprocessing.rs

/root/repo/target/debug/deps/libpreprocessing-6283788ad001236c.rmeta: crates/bench/benches/preprocessing.rs

crates/bench/benches/preprocessing.rs:
