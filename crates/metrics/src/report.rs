//! Plain-text table and series rendering.
//!
//! The experiments harness prints every reproduced table/figure as monospace text so
//! the output can be diffed against `EXPERIMENTS.md`. Tables render with aligned
//! columns; series render as labelled `(x, y)` columns plus a coarse ASCII bar chart
//! for quick visual inspection of a figure's shape.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with empty cells;
    /// longer rows are truncated.
    pub fn add_row<S: ToString>(&mut self, cells: &[S]) -> &mut Self {
        let mut row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
                if i + 1 < cells.len() {
                    line.push_str("  ");
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&fmt_row(&sep, &widths));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// A named `(x, y)` series, rendered as a column listing plus an ASCII bar chart.
#[derive(Debug, Clone, Default)]
pub struct Series {
    title: String,
    points: Vec<(String, f64)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            points: Vec::new(),
        }
    }

    /// Append a labelled point.
    pub fn push(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.points.push((label.into(), value));
        self
    }

    /// The collected points.
    pub fn points(&self) -> &[(String, f64)] {
        &self.points
    }

    /// Render as text with bars scaled to `width` characters for the maximum
    /// value. Degenerate series are safe: an all-zero (or all-negative, or
    /// non-finite) series renders empty bars rather than dividing by a zero
    /// range, and a single positive point gets the full-width bar.
    pub fn render(&self, width: usize) -> String {
        let mut out = format!("-- {} --\n", self.title);
        let max = self
            .points
            .iter()
            .map(|(_, v)| *v)
            .filter(|v| v.is_finite())
            .fold(0.0f64, f64::max);
        let label_width = self.points.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        for (label, value) in &self.points {
            let bar_len = if max <= 0.0 || !value.is_finite() || *value <= 0.0 {
                0
            } else {
                ((value / max) * width as f64).round().min(width as f64) as usize
            };
            out.push_str(&format!(
                "{:<lw$}  {:>12.4}  {}\n",
                label,
                value,
                "#".repeat(bar_len),
                lw = label_width
            ));
        }
        out
    }
}

impl std::fmt::Display for Series {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render(40))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_headers_and_rows() {
        let mut t = Table::new("Table 2", &["Graph", "Updates/vertex"]);
        t.add_row(&["OK", "9.91"]);
        t.add_row(&["LJ", "7.66"]);
        let s = t.render();
        assert!(s.contains("== Table 2 =="));
        assert!(s.contains("Graph"));
        assert!(s.contains("OK"));
        assert!(s.contains("7.66"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn table_columns_are_aligned() {
        let mut t = Table::new("align", &["a", "bbbb"]);
        t.add_row(&["xxxxxx", "1"]);
        let s = t.render();
        // Header row and data row must have consistent column starts.
        let lines: Vec<&str> = s.lines().collect();
        let header = lines[1];
        let data = lines[3];
        let header_second_col = header.find("bbbb").unwrap();
        let data_second_col = data.find('1').unwrap();
        assert_eq!(header_second_col, data_second_col);
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_truncated() {
        let mut t = Table::new("pad", &["a", "b"]);
        t.add_row(&["only"]);
        t.add_row(&["x", "y", "z"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert!(!s.contains('z'));
    }

    #[test]
    fn series_renders_bars_proportional_to_values() {
        let mut s = Series::new("Figure 2");
        s.push("OK", 0.99).push("LJ", 0.5).push("FS", 0.25);
        let text = s.render(40);
        let bar_len = |label: &str| {
            text.lines()
                .find(|l| l.starts_with(label))
                .unwrap()
                .chars()
                .filter(|&c| c == '#')
                .count()
        };
        assert_eq!(bar_len("OK"), 40);
        assert!(bar_len("LJ") >= 19 && bar_len("LJ") <= 21);
        assert!(bar_len("FS") >= 9 && bar_len("FS") <= 11);
    }

    #[test]
    fn empty_series_renders_just_the_header() {
        let s = Series::new("empty");
        let text = s.render(10);
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn all_zero_series_renders_without_bars() {
        let mut s = Series::new("zeros");
        s.push("a", 0.0).push("b", 0.0).push("c", 0.0);
        let text = s.render(40);
        assert!(
            !text.contains('#'),
            "all-zero series must draw no bars:\n{text}"
        );
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn single_point_series_gets_a_full_width_bar() {
        let mut s = Series::new("single");
        s.push("only", 3.25);
        let text = s.render(20);
        let hashes = text.chars().filter(|&c| c == '#').count();
        assert_eq!(hashes, 20);
    }

    #[test]
    fn tiny_subnormal_values_cannot_explode_the_bar() {
        // Regression: dividing by f64::MIN_POSITIVE used to turn a subnormal
        // series into a bar of astronomical length (OOM in `"#".repeat`).
        let mut s = Series::new("tiny");
        s.push("sub", 1e-310).push("sub2", 5e-311);
        let text = s.render(40);
        for line in text.lines().skip(1) {
            assert!(line.chars().filter(|&c| c == '#').count() <= 40);
        }
    }

    #[test]
    fn non_finite_and_negative_points_render_empty_bars() {
        let mut s = Series::new("mixed");
        s.push("nan", f64::NAN)
            .push("inf", f64::INFINITY)
            .push("neg", -4.0)
            .push("pos", 2.0);
        let text = s.render(10);
        let bar = |label: &str| {
            text.lines()
                .find(|l| l.starts_with(label))
                .unwrap()
                .chars()
                .filter(|&c| c == '#')
                .count()
        };
        assert_eq!(bar("nan"), 0);
        assert_eq!(bar("inf"), 0);
        assert_eq!(bar("neg"), 0);
        assert_eq!(bar("pos"), 10);
    }

    #[test]
    fn display_impls_delegate_to_render() {
        let mut t = Table::new("t", &["c"]);
        t.add_row(&["v"]);
        assert_eq!(format!("{t}"), t.render());
        let mut s = Series::new("s");
        s.push("p", 1.0);
        assert_eq!(format!("{s}"), s.render(40));
    }
}
