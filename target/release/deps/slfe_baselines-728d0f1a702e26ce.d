/root/repo/target/release/deps/slfe_baselines-728d0f1a702e26ce.d: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

/root/repo/target/release/deps/libslfe_baselines-728d0f1a702e26ce.rlib: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

/root/repo/target/release/deps/libslfe_baselines-728d0f1a702e26ce.rmeta: crates/baselines/src/lib.rs crates/baselines/src/gas.rs crates/baselines/src/gemini.rs crates/baselines/src/graphchi.rs crates/baselines/src/ligra.rs crates/baselines/src/powergraph.rs crates/baselines/src/powerlyra.rs

crates/baselines/src/lib.rs:
crates/baselines/src/gas.rs:
crates/baselines/src/gemini.rs:
crates/baselines/src/graphchi.rs:
crates/baselines/src/ligra.rs:
crates/baselines/src/powergraph.rs:
crates/baselines/src/powerlyra.rs:
