//! Plain-text edge-list I/O.
//!
//! The format is the SNAP-style whitespace-separated edge list the paper's datasets
//! ship in: one edge per line, `src dst [weight]`, with `#`-prefixed comment lines.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::types::{EdgeWeight, VertexId, INVALID_VERTEX};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors produced while parsing an edge list.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line could not be parsed; carries the 1-based line number and its content.
    Parse { line: usize, content: String },
    /// A vertex id falls outside the valid id space: at or above the header's
    /// declared vertex count, or — absent a header — at or above
    /// [`crate::INVALID_VERTEX`] (the reserved sentinel). Earlier revisions
    /// silently truncated such ids through the `u32` parse; a graph quietly
    /// missing declared vertices is far worse than a load failure, so this is
    /// now a structured error carrying the 1-based line and the offending id.
    IdOutOfRange {
        /// 1-based line number of the offending edge.
        line: usize,
        /// The offending vertex id as written in the file.
        id: u64,
        /// First invalid id: the declared vertex count when a header bounds
        /// the id space, the sentinel otherwise.
        limit: u64,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::Parse { line, content } => {
                write!(f, "parse error on line {line}: {content:?}")
            }
            LoadError::IdOutOfRange { line, id, limit } => {
                write!(
                    f,
                    "vertex id {id} on line {line} is outside the valid id space (limit {limit})"
                )
            }
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Extract the declared vertex count from the header comment this module's
/// writer emits (`# slfe edge list: N vertices, M edges`). Foreign comment
/// lines simply do not match.
fn declared_vertices(comment: &str) -> Option<usize> {
    let rest = comment.strip_prefix("# slfe edge list:")?.trim_start();
    let count_tok = rest.split_whitespace().next()?;
    rest.split_whitespace()
        .nth(1)
        .filter(|&unit| unit.starts_with("vertices"))?;
    count_tok.parse().ok()
}

/// Parse an edge list from any reader. Lines beginning with `#` or `%` and blank
/// lines are skipped, except that this module's own header comment
/// (`# slfe edge list: N vertices, ...`) declares the vertex count: the graph
/// then gets exactly `N` vertices (isolated trailing vertices survive a
/// round-trip) and any edge endpoint `>= N` is a [`LoadError::IdOutOfRange`]
/// instead of silently growing — or, before this check existed, silently
/// corrupting — the id space. Each remaining line must be `src dst` or
/// `src dst weight`.
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<Graph, LoadError> {
    let mut builder = GraphBuilder::new();
    let mut declared: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            if declared.is_none() {
                if let Some(n) = declared_vertices(trimmed) {
                    // The id space tops out below the sentinel; a header
                    // declaring more vertices than that describes a graph
                    // this format cannot hold (and would otherwise drive a
                    // huge allocation), so it fails at the header line.
                    if n as u64 > INVALID_VERTEX as u64 {
                        return Err(LoadError::Parse {
                            line: idx + 1,
                            content: line,
                        });
                    }
                    declared = Some(n);
                    builder = builder.with_vertices(n);
                }
            }
            continue;
        }
        // Ids parse as u64 first so an id too large for `VertexId` is reported
        // as the id it actually was, not as a generic parse failure. A header
        // may declare any count, but the id space itself still tops out at
        // the sentinel — without the cap, a declared count past 2^32 would
        // let huge ids through to a silently wrapping `as VertexId` cast.
        let limit = declared
            .map(|n| (n as u64).min(INVALID_VERTEX as u64))
            .unwrap_or(INVALID_VERTEX as u64);
        let mut parts = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Option<u64> { tok?.parse().ok() };
        let src = parse(parts.next());
        let dst = parse(parts.next());
        let weight: Option<EdgeWeight> = match parts.next() {
            None => Some(1.0),
            Some(tok) => tok.parse().ok(),
        };
        match (src, dst, weight) {
            (Some(s), Some(d), Some(w)) if parts.next().is_none() => {
                if let Some(&id) = [s, d].iter().find(|&&id| id >= limit) {
                    return Err(LoadError::IdOutOfRange {
                        line: idx + 1,
                        id,
                        limit,
                    });
                }
                builder.add_edge(s as VertexId, d as VertexId, w);
            }
            _ => {
                return Err(LoadError::Parse {
                    line: idx + 1,
                    content: line,
                });
            }
        }
    }
    Ok(builder.build())
}

/// Load an edge-list file from disk.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    let file = File::open(path)?;
    read_edge_list(BufReader::new(file))
}

/// Write a graph as a weighted edge list.
pub fn write_edge_list<W: Write>(graph: &Graph, mut writer: W) -> io::Result<()> {
    writeln!(
        writer,
        "# slfe edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for v in graph.vertices() {
        for (u, w) in graph.out_edges(v) {
            writeln!(writer, "{v} {u} {w}")?;
        }
    }
    Ok(())
}

/// Save a graph as a weighted edge-list file.
pub fn save_edge_list(graph: &Graph, path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    write_edge_list(graph, &mut writer)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_unweighted_and_weighted_lines() {
        let input = "# comment\n0 1\n1 2 3.5\n\n% another comment\n2 0 1\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_weights(1), &[3.5]);
        assert_eq!(g.out_weights(0), &[1.0]);
    }

    #[test]
    fn reports_parse_error_with_line_number() {
        let input = "0 1\nnot an edge\n";
        let err = read_edge_list(Cursor::new(input)).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other}"),
        }
    }

    #[test]
    fn rejects_trailing_tokens() {
        let input = "0 1 2.0 junk\n";
        assert!(read_edge_list(Cursor::new(input)).is_err());
    }

    #[test]
    fn round_trips_through_text() {
        let g = crate::generators::rmat(32, 100, 0.57, 0.19, 0.19, 5);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        // The header declares the vertex count, so even trailing isolated
        // vertices are reconstructed exactly.
        assert_eq!(g2.num_vertices(), g.num_vertices());
        for v in g2.vertices() {
            assert_eq!(g.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("slfe_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.el");
        let g = crate::generators::path(6);
        save_edge_list(&g, &path).unwrap();
        let g2 = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn id_past_the_declared_vertex_count_is_a_structured_error() {
        let input = "# slfe edge list: 4 vertices, 2 edges\n0 1\n2 9 1.5\n";
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            LoadError::IdOutOfRange { line, id, limit } => {
                assert_eq!(line, 3);
                assert_eq!(id, 9);
                assert_eq!(limit, 4);
            }
            other => panic!("expected IdOutOfRange, got {other}"),
        }
        // The source id is checked too.
        let input = "# slfe edge list: 4 vertices, 1 edges\n7 0\n";
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            LoadError::IdOutOfRange { line, id, .. } => {
                assert_eq!((line, id), (2, 7));
            }
            other => panic!("expected IdOutOfRange, got {other}"),
        }
    }

    #[test]
    fn ids_outside_the_u32_id_space_are_rejected_not_truncated() {
        // u32::MAX is the INVALID_VERTEX sentinel; anything at or above it
        // must fail loudly with the offending id, not wrap or vanish.
        for bad in [u32::MAX as u64, u32::MAX as u64 + 1, 99_999_999_999] {
            let input = format!("0 1\n1 {bad}\n");
            match read_edge_list(Cursor::new(input)).unwrap_err() {
                LoadError::IdOutOfRange { line, id, limit } => {
                    assert_eq!(line, 2);
                    assert_eq!(id, bad);
                    assert_eq!(limit, u32::MAX as u64);
                }
                other => panic!("expected IdOutOfRange for {bad}, got {other}"),
            }
        }
    }

    #[test]
    fn declared_vertex_count_preserves_isolated_trailing_vertices() {
        let g = crate::generators::path(4); // 4 vertices, 3 edges
        let mut buf = Vec::new();
        writeln!(
            buf,
            "# slfe edge list: 10 vertices, {} edges",
            g.num_edges()
        )
        .unwrap();
        for v in g.vertices() {
            for (u, w) in g.out_edges(v) {
                writeln!(buf, "{v} {u} {w}").unwrap();
            }
        }
        let loaded = read_edge_list(Cursor::new(buf)).unwrap();
        assert_eq!(loaded.num_vertices(), 10);
        assert_eq!(loaded.num_edges(), 3);
        assert_eq!(loaded.out_degree(9), 0);
    }

    #[test]
    fn oversized_declared_counts_do_not_reopen_the_wrapping_cast() {
        // A header claiming more vertices than the u32 id space holds is
        // rejected at the header line — its huge ids must never reach the
        // (wrapping) `as VertexId` cast, nor drive a giant allocation.
        let input = "# slfe edge list: 6000000000 vertices, 1 edges\n4294967296 1\n";
        match read_edge_list(Cursor::new(input)).unwrap_err() {
            LoadError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected Parse at the header, got {other}"),
        }
    }

    #[test]
    fn foreign_comments_do_not_declare_a_vertex_count() {
        let input = "# 2 vertices of interest\n0 5\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_vertices(), 6);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_edge_list("/definitely/not/here.el").unwrap_err();
        assert!(matches!(err, LoadError::Io(_)));
        assert!(err.to_string().contains("i/o error"));
    }

    fn assert_graphs_equal(a: &crate::Graph, b: &crate::Graph) {
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices().filter(|&v| (v as usize) < b.num_vertices()) {
            assert_eq!(a.out_neighbors(v), b.out_neighbors(v), "out list of {v}");
            assert_eq!(a.out_weights(v), b.out_weights(v), "weights of {v}");
        }
    }

    #[test]
    fn comments_blank_lines_and_whitespace_are_skipped() {
        let input = "\n   \n# leading comment\n  0 1  \n\t1 2\t3.5\n% percent comment\n\n2 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_neighbors(0), &[1]);
        assert_eq!(g.out_weights(1), &[3.5]);
    }

    #[test]
    fn self_loops_survive_a_round_trip() {
        let input = "0 0 2.5\n0 1\n1 1\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 3);
        assert!(g.has_edge(0, 0));
        assert_eq!(g.in_neighbors(1), &[0, 1]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_graphs_equal(&g, &g2);
        assert!(g2.has_edge(0, 0));
        assert_eq!(g2.out_weights(0), &[2.5, 1.0]);
    }

    #[test]
    fn duplicate_edges_survive_a_round_trip() {
        // The format does not deduplicate: multigraph inputs stay multigraphs.
        let input = "0 1 1.0\n0 1 2.0\n0 1 1.0\n1 0\n";
        let g = read_edge_list(Cursor::new(input)).unwrap();
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_neighbors(0), &[1, 1, 1]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(Cursor::new(buf)).unwrap();
        assert_graphs_equal(&g, &g2);
        assert_eq!(g2.out_weights(0), &[1.0, 2.0, 1.0]);
    }

    #[test]
    fn load_save_load_is_a_fixpoint_on_disk() {
        let dir =
            std::env::temp_dir().join(format!("slfe_graph_io_roundtrip_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let first = dir.join("first.el");
        let second = dir.join("second.el");
        let g = crate::generators::rmat(64, 400, 0.57, 0.19, 0.19, 9);

        save_edge_list(&g, &first).unwrap();
        let g1 = load_edge_list(&first).unwrap();
        save_edge_list(&g1, &second).unwrap();
        let g2 = load_edge_list(&second).unwrap();

        assert_graphs_equal(&g, &g1);
        assert_graphs_equal(&g1, &g2);
        // The header's declared vertex count makes load-save-load a byte-level
        // fixpoint from the very first save, isolated trailing vertices included.
        assert_eq!(g1.num_vertices(), g.num_vertices());
        assert_eq!(g1.num_vertices(), g2.num_vertices());
        assert_eq!(
            std::fs::read_to_string(&first).unwrap(),
            std::fs::read_to_string(&second).unwrap()
        );
        std::fs::remove_file(&first).ok();
        std::fs::remove_file(&second).ok();
    }
}
