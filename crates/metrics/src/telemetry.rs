//! Span tracing and latency-histogram collection.
//!
//! The telemetry hub is `TelemetryConfig`-gated with a strict no-op fast path:
//! when disabled, span handles are zeroes, no clock is ever read, and no lock
//! is touched, so a telemetry-off run is bit-identical to an uninstrumented
//! one (pinned by `tests/telemetry.rs`). When enabled, workers record spans
//! into per-worker [`SpanWindow`]s / local buffers and the results are drained
//! into the shared hub only at barriers, preserving the engine's determinism
//! contract: nothing the workers time ever feeds back into scheduling.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::counters::Counters;
use crate::histogram::LatencyHistogram;
use crate::trace::{IterationRecord, IterationTrace, Mode};

/// Histogram name: engine per-iteration wall time (nanoseconds).
pub const HIST_ITERATION_WALL: &str = "engine_iteration_wall_ns";
/// Histogram name: WAL fsync latency (nanoseconds).
pub const HIST_WAL_FSYNC: &str = "wal_fsync_ns";
/// Histogram name: buffer-pool segment fault latency (nanoseconds).
pub const HIST_SEGMENT_FAULT: &str = "segment_fault_ns";
/// Histogram name: per-batch apply latency at the serving layer (nanoseconds).
pub const HIST_BATCH_APPLY: &str = "batch_apply_ns";
/// Histogram name: read-path query latency at the serving front end
/// (nanoseconds).
pub const HIST_QUERY_LATENCY: &str = "query_latency_ns";

/// Switches telemetry collection on or off for an engine/server instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TelemetryConfig {
    /// Collect spans and latency histograms when `true`. Off by default; an
    /// off run must be bit-identical to pre-telemetry behavior.
    pub enabled: bool,
}

impl TelemetryConfig {
    /// Telemetry on.
    pub fn on() -> Self {
        Self { enabled: true }
    }

    /// Telemetry off (the default).
    pub fn off() -> Self {
        Self { enabled: false }
    }
}

/// A completed span: a named `[start, start+dur)` interval on a track.
///
/// Tracks map to Chrome trace `tid`s: track 0 is the coordinating thread,
/// tracks 1.. are pool workers / storage lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name, e.g. `"iteration"` or `"wal_append"`.
    pub name: &'static str,
    /// Category, e.g. `"engine"`, `"server"`, `"storage"`, or the mode name.
    pub cat: &'static str,
    /// Display track (Chrome trace `tid`).
    pub track: u32,
    /// Start offset from the telemetry clock origin, nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Monotonic clock shared by all spans of one [`Telemetry`] hub, so span
/// timestamps from different threads land on one timeline.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryClock {
    origin: Instant,
}

impl TelemetryClock {
    fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since the hub was created.
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// An open span: just the start timestamp. Zero when telemetry is off.
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle {
    start_ns: u64,
}

/// A per-worker, lock-free span accumulator living in worker-local scratch.
///
/// Workers `cover` their execute window during a phase; the coordinator
/// `take`s it after the pool barrier, so the shared hub is only ever touched
/// from one thread at a time.
#[derive(Debug, Clone, Copy)]
pub struct SpanWindow {
    start_ns: u64,
    end_ns: u64,
}

impl Default for SpanWindow {
    fn default() -> Self {
        Self {
            start_ns: u64::MAX,
            end_ns: 0,
        }
    }
}

impl SpanWindow {
    /// Extend the window to cover `[start, end)`.
    pub fn cover(&mut self, start_ns: u64, end_ns: u64) {
        self.start_ns = self.start_ns.min(start_ns);
        self.end_ns = self.end_ns.max(end_ns);
    }

    /// Drain the window, returning `(start, end)` if anything was covered.
    pub fn take(&mut self) -> Option<(u64, u64)> {
        if self.start_ns == u64::MAX {
            return None;
        }
        let window = (self.start_ns, self.end_ns);
        *self = Self::default();
        Some(window)
    }
}

#[derive(Debug, Default)]
struct TelemetryInner {
    spans: Vec<SpanEvent>,
    hists: Vec<(&'static str, LatencyHistogram)>,
}

/// An immutable copy of everything a [`Telemetry`] hub has collected.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// All completed spans, in drain order.
    pub spans: Vec<SpanEvent>,
    /// Named latency histograms.
    pub histograms: Vec<(String, LatencyHistogram)>,
}

impl TelemetrySnapshot {
    /// Look up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&LatencyHistogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Export all spans as Chrome `chrome://tracing` JSON.
    pub fn chrome_trace(&self) -> String {
        crate::export::chrome_trace_json(&self.spans)
    }

    /// Aggregate all spans into a plain-text flame table.
    pub fn flame_table(&self) -> crate::report::Table {
        crate::export::flame_table(&self.spans)
    }
}

/// The telemetry hub: one per engine or server instance.
///
/// All mutation goes through a mutex, but the engine only locks it at
/// barriers / iteration ends (never inside worker closures), and the disabled
/// path never locks at all.
#[derive(Debug)]
pub struct Telemetry {
    enabled: bool,
    clock: TelemetryClock,
    inner: Mutex<TelemetryInner>,
}

impl Telemetry {
    /// Build a hub from a config.
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            enabled: config.enabled,
            clock: TelemetryClock::new(),
            inner: Mutex::new(TelemetryInner::default()),
        }
    }

    /// A permanently disabled hub (the engine default).
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::off())
    }

    /// `true` when this hub collects anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The hub's monotonic clock.
    pub fn clock(&self) -> TelemetryClock {
        self.clock
    }

    /// The clock, but only when enabled — the `None` arm lets hot paths skip
    /// clock reads entirely when telemetry is off.
    pub fn clock_if_enabled(&self) -> Option<TelemetryClock> {
        if self.enabled {
            Some(self.clock)
        } else {
            None
        }
    }

    /// Open a span. Free (and meaningless) when disabled.
    pub fn begin(&self) -> SpanHandle {
        SpanHandle {
            start_ns: if self.enabled { self.clock.now_ns() } else { 0 },
        }
    }

    /// Close a span opened with [`begin`](Self::begin) onto `track`.
    pub fn end(&self, handle: SpanHandle, name: &'static str, cat: &'static str, track: u32) {
        if !self.enabled {
            return;
        }
        let end_ns = self.clock.now_ns();
        self.push_span(SpanEvent {
            name,
            cat,
            track,
            start_ns: handle.start_ns,
            dur_ns: end_ns.saturating_sub(handle.start_ns),
        });
    }

    /// Append an already-built span.
    pub fn push_span(&self, span: SpanEvent) {
        if !self.enabled {
            return;
        }
        self.inner.lock().unwrap().spans.push(span);
    }

    /// Drain a batch of locally buffered spans into the hub (barrier-side).
    pub fn extend_spans(&self, spans: &mut Vec<SpanEvent>) {
        if !self.enabled || spans.is_empty() {
            spans.clear();
            return;
        }
        self.inner.lock().unwrap().spans.append(spans);
    }

    /// Record a nanosecond sample into the named histogram.
    pub fn record_ns(&self, name: &'static str, ns: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some((_, h)) = inner.hists.iter_mut().find(|(n, _)| *n == name) {
            h.record(ns);
        } else {
            let mut h = LatencyHistogram::new();
            h.record(ns);
            inner.hists.push((name, h));
        }
    }

    /// A process-wide per-thread display lane in `1..`, used as the span track
    /// for storage-side events that can fire from any pool worker.
    pub fn lane() -> u32 {
        static NEXT_LANE: AtomicU32 = AtomicU32::new(1);
        thread_local! {
            static LANE: u32 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
        }
        LANE.with(|l| *l)
    }

    /// Copy out everything collected so far.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let inner = self.inner.lock().unwrap();
        TelemetrySnapshot {
            spans: inner.spans.clone(),
            histograms: inner
                .hists
                .iter()
                .map(|(n, h)| (n.to_string(), h.clone()))
                .collect(),
        }
    }
}

/// Records one engine run: the single place where per-iteration mode, active
/// counts, counters and simulated seconds are written, emitting both the
/// [`IterationTrace`] (when tracing is on) and iteration spans plus the
/// iteration-wall histogram (when telemetry is on).
#[derive(Debug)]
pub struct RunRecorder<'t> {
    telemetry: Option<&'t Telemetry>,
    clock: Option<TelemetryClock>,
    spans: Vec<SpanEvent>,
    trace_on: bool,
    trace: IterationTrace,
}

impl<'t> RunRecorder<'t> {
    /// Attach to a hub; `trace_on` mirrors `EngineConfig::trace`.
    pub fn new(telemetry: &'t Telemetry, trace_on: bool) -> Self {
        let clock = telemetry.clock_if_enabled();
        Self {
            telemetry: clock.map(|_| telemetry),
            clock,
            spans: Vec::new(),
            trace_on,
            trace: IterationTrace::new(),
        }
    }

    /// `true` when spans are being collected.
    pub fn spans_on(&self) -> bool {
        self.clock.is_some()
    }

    /// Open a span (no-op handle when telemetry is off).
    pub fn begin(&self) -> SpanHandle {
        SpanHandle {
            start_ns: self.clock.map_or(0, |c| c.now_ns()),
        }
    }

    /// Close a span onto the coordinator track (track 0).
    pub fn end(&mut self, handle: SpanHandle, name: &'static str, cat: &'static str) {
        self.end_on(handle, name, cat, 0);
    }

    /// Close a span onto an explicit track.
    pub fn end_on(
        &mut self,
        handle: SpanHandle,
        name: &'static str,
        cat: &'static str,
        track: u32,
    ) {
        let Some(clock) = self.clock else { return };
        let end_ns = clock.now_ns();
        self.spans.push(SpanEvent {
            name,
            cat,
            track,
            start_ns: handle.start_ns,
            dur_ns: end_ns.saturating_sub(handle.start_ns),
        });
    }

    /// Drain a worker's [`SpanWindow`] (after the pool barrier) into a span on
    /// the worker's track.
    pub fn worker_window(
        &mut self,
        window: &mut SpanWindow,
        name: &'static str,
        cat: &'static str,
        track: u32,
    ) {
        if self.clock.is_none() {
            return;
        }
        if let Some((start_ns, end_ns)) = window.take() {
            self.spans.push(SpanEvent {
                name,
                cat,
                track,
                start_ns,
                dur_ns: end_ns.saturating_sub(start_ns),
            });
        }
    }

    /// Record the end of one iteration: the single write point for the
    /// iteration trace, the iteration span, and the wall-time histogram.
    #[allow(clippy::too_many_arguments)]
    pub fn end_iteration(
        &mut self,
        handle: SpanHandle,
        iteration: u32,
        mode: Mode,
        active_vertices: usize,
        counters: Counters,
        sim_seconds: f64,
    ) {
        if self.trace_on {
            self.trace.push(IterationRecord {
                iteration,
                mode,
                active_vertices,
                counters,
                seconds: sim_seconds,
            });
        }
        if let Some(telemetry) = self.telemetry {
            let cat = match mode {
                Mode::Pull => "pull",
                Mode::Push => "push",
            };
            let end_ns = self.clock.map_or(0, |c| c.now_ns());
            let dur_ns = end_ns.saturating_sub(handle.start_ns);
            self.spans.push(SpanEvent {
                name: "iteration",
                cat,
                track: 0,
                start_ns: handle.start_ns,
                dur_ns,
            });
            telemetry.record_ns(HIST_ITERATION_WALL, dur_ns);
        }
    }

    /// Flush buffered spans to the hub and hand back the iteration trace.
    pub fn finish(mut self) -> IterationTrace {
        if let Some(telemetry) = self.telemetry {
            telemetry.extend_spans(&mut self.spans);
        }
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_hub_collects_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        let h = t.begin();
        t.end(h, "x", "y", 0);
        t.record_ns(HIST_WAL_FSYNC, 123);
        let snap = t.snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(t.clock_if_enabled().is_none());
    }

    #[test]
    fn enabled_hub_collects_spans_and_histograms() {
        let t = Telemetry::new(TelemetryConfig::on());
        let h = t.begin();
        t.end(h, "unit", "test", 3);
        t.record_ns(HIST_WAL_FSYNC, 1_000);
        t.record_ns(HIST_WAL_FSYNC, 2_000);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "unit");
        assert_eq!(snap.spans[0].track, 3);
        let hist = snap.histogram(HIST_WAL_FSYNC).unwrap();
        assert_eq!(hist.count(), 2);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn span_window_covers_and_drains_once() {
        let mut w = SpanWindow::default();
        assert!(w.take().is_none());
        w.cover(100, 200);
        w.cover(50, 150);
        assert_eq!(w.take(), Some((50, 200)));
        assert!(w.take().is_none());
    }

    #[test]
    fn recorder_emits_trace_and_spans_together() {
        let t = Telemetry::new(TelemetryConfig::on());
        let mut rec = RunRecorder::new(&t, true);
        let h = rec.begin();
        rec.end_iteration(h, 1, Mode::Pull, 7, Counters::zero(), 0.5);
        let mut window = SpanWindow::default();
        window.cover(1, 2);
        rec.worker_window(&mut window, "execute", "pull", 1);
        let trace = rec.finish();
        assert_eq!(trace.len(), 1);
        assert_eq!(trace.records()[0].mode, Mode::Pull);
        assert!((trace.records()[0].seconds - 0.5).abs() < 1e-12);
        let snap = t.snapshot();
        assert_eq!(snap.spans.len(), 2);
        assert!(snap.spans.iter().any(|s| s.name == "iteration"));
        assert!(snap
            .spans
            .iter()
            .any(|s| s.name == "execute" && s.track == 1));
        assert_eq!(snap.histogram(HIST_ITERATION_WALL).unwrap().count(), 1);
    }

    #[test]
    fn recorder_with_disabled_hub_still_traces() {
        let t = Telemetry::disabled();
        let mut rec = RunRecorder::new(&t, true);
        assert!(!rec.spans_on());
        let h = rec.begin();
        rec.end_iteration(h, 1, Mode::Push, 3, Counters::zero(), 0.25);
        let trace = rec.finish();
        assert_eq!(trace.len(), 1);
        assert!(t.snapshot().spans.is_empty());
    }

    #[test]
    fn recorder_without_trace_returns_empty_trace() {
        let t = Telemetry::new(TelemetryConfig::on());
        let mut rec = RunRecorder::new(&t, false);
        let h = rec.begin();
        rec.end_iteration(h, 1, Mode::Push, 3, Counters::zero(), 0.25);
        let trace = rec.finish();
        assert!(trace.is_empty());
        assert_eq!(t.snapshot().spans.len(), 1);
    }

    #[test]
    fn lanes_are_stable_per_thread_and_nonzero() {
        let a = Telemetry::lane();
        let b = Telemetry::lane();
        assert_eq!(a, b);
        assert!(a >= 1);
        let other = std::thread::spawn(Telemetry::lane).join().unwrap();
        assert_ne!(a, other);
    }

    #[test]
    fn arc_hub_is_shareable_across_threads() {
        let t = Arc::new(Telemetry::new(TelemetryConfig::on()));
        let t2 = Arc::clone(&t);
        std::thread::spawn(move || t2.record_ns(HIST_SEGMENT_FAULT, 5))
            .join()
            .unwrap();
        assert_eq!(
            t.snapshot().histogram(HIST_SEGMENT_FAULT).unwrap().count(),
            1
        );
    }
}
