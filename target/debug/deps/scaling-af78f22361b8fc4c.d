/root/repo/target/debug/deps/scaling-af78f22361b8fc4c.d: crates/bench/benches/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-af78f22361b8fc4c.rmeta: crates/bench/benches/scaling.rs Cargo.toml

crates/bench/benches/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
