//! Measurement provenance recorded into every emitted `BENCH_*.json`: which
//! commit produced the numbers and how many hardware threads the machine had.
//! Both matter when re-reading a benchmark file later — a wall-clock curve from
//! a 1-thread CI container is not comparable to one from an 8-core box.

/// Hardware threads available to this process.
pub fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The current git commit hash, or `"unknown"` outside a git checkout.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_threads_is_positive() {
        assert!(hardware_threads() >= 1);
    }

    #[test]
    fn git_commit_is_a_hash_or_unknown() {
        let commit = git_commit();
        assert!(
            commit == "unknown" || commit.chars().all(|c| c.is_ascii_hexdigit()),
            "unexpected commit string: {commit}"
        );
    }
}
