//! Activity-proportional execution benchmark: frontier-density sweep for the
//! sparse/dense push scratch and the chunk-level activity summaries.
//!
//! ```text
//! sparse_bench [--vertices N] [--degree D] [--runs K] [--out FILE]
//! ```
//!
//! Emits `BENCH_sparse.json` (with `git_commit` and `hardware_threads`
//! recorded) from BFS and SSSP runs on two topologies — a deep layered graph
//! (a one-layer-wide travelling frontier, the best case for chunk skipping)
//! and a hub-heavy R-MAT — across three scratch configurations: dense forced
//! (`sparse_push_density = 0`), the default adaptive threshold, and sparse
//! forced (`2.0`). Per point it records wall clock, counted work, the peak
//! push-scratch footprint, how many chunk visits the activity summaries
//! skipped, and pins that the three configurations produce bit-identical
//! values. A per-iteration profile of the default run shows chunk visits
//! tracking the active set, not the total chunk count.

use slfe_apps::{bfs::BfsProgram, sssp::SsspProgram};
use slfe_bench::json;
use slfe_bench::timing::time_best_of;
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe_graph::{generators, Graph};
use slfe_metrics::Mode;
use std::fmt::Write as _;
use std::path::PathBuf;

struct Options {
    vertices: usize,
    degree: usize,
    runs: usize,
    out: PathBuf,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            vertices: 60_000,
            degree: 8,
            runs: 3,
            out: PathBuf::from("BENCH_sparse.json"),
        }
    }
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--vertices" => {
                options.vertices = value("--vertices")?
                    .parse()
                    .map_err(|e| format!("invalid --vertices: {e}"))?
            }
            "--degree" => {
                options.degree = value("--degree")?
                    .parse()
                    .map_err(|e| format!("invalid --degree: {e}"))?
            }
            "--runs" => {
                options.runs = value("--runs")?
                    .parse()
                    .map_err(|e| format!("invalid --runs: {e}"))?
            }
            "--out" => options.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                return Err(
                    "usage: sparse_bench [--vertices N] [--degree D] [--runs K] [--out FILE]"
                        .into(),
                )
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

/// One measured (app, graph, threshold) point of the scratch sweep.
struct SweepPoint {
    label: &'static str,
    density: f64,
    wall_seconds: f64,
    work: u64,
    scratch_bytes_peak: u64,
    chunks_skipped: u64,
    chunk_slots: u64,
    iterations: u32,
    value_bits: Vec<u32>,
}

fn sweep<P, F>(graph: &Graph, runs: usize, make_program: F) -> Vec<SweepPoint>
where
    P: GraphProgram<Value = f32>,
    F: Fn() -> P,
{
    let mut points = Vec::new();
    for (label, density) in [("dense", 0.0), ("default", -1.0), ("sparse", 2.0)] {
        let mut config = EngineConfig::default().with_trace(false);
        if density >= 0.0 {
            config = config.with_sparse_push_density(density);
        }
        let density = config.sparse_push_density;
        let engine = SlfeEngine::build(graph, ClusterConfig::new(2, 4), config);
        let program = make_program();
        let mut last = None;
        let sample = time_best_of(runs, || last = Some(engine.run(&program)));
        let result = last.expect("at least one measured run");
        let chunks = engine.layout().chunks().len() as u64;
        points.push(SweepPoint {
            label,
            density,
            wall_seconds: sample.best_seconds,
            work: result.stats.totals.work(),
            scratch_bytes_peak: result.stats.totals.scratch_bytes_peak,
            chunks_skipped: result.stats.totals.chunks_skipped,
            chunk_slots: chunks * result.stats.iterations as u64,
            iterations: result.stats.iterations,
            value_bits: result.values.iter().map(|v| v.to_bits()).collect(),
        });
        let p = points.last().unwrap();
        eprintln!(
            "  {label} (density {density}): {:.4}s wall, work {}, scratch peak {} B, skipped {}/{} chunk visits",
            p.wall_seconds, p.work, p.scratch_bytes_peak, p.chunks_skipped, p.chunk_slots
        );
    }
    points
}

fn sweep_json(name: &str, points: &[SweepPoint]) -> String {
    let mut out = String::new();
    let _ = write!(out, "    {}: [", json::string(name));
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n      {{\"label\": {}, \"sparse_push_density\": {}, \"wall_seconds\": {}, \"work\": {}, \"scratch_bytes_peak\": {}, \"chunks_skipped\": {}, \"chunk_slots\": {}, \"chunk_visits\": {}, \"iterations\": {}}}",
            json::string(p.label),
            json::float(p.density),
            json::float_fixed(p.wall_seconds, 6),
            p.work,
            p.scratch_bytes_peak,
            p.chunks_skipped,
            p.chunk_slots,
            p.chunk_slots - p.chunks_skipped,
            p.iterations
        );
    }
    out.push_str("\n    ]");
    out
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let hardware_threads = slfe_bench::hardware_threads();

    // A deep layered graph: the frontier is one layer wide, so most chunks are
    // cold at any moment — the regime the activity summaries exist for.
    let layers = 24;
    let width = (options.vertices / layers).max(2);
    let layered = generators::layered(layers, width, options.degree.max(2), 4_2026);
    // A hub-heavy R-MAT: short diameter, dense middle frontiers.
    let rmat = generators::rmat(
        options.vertices,
        options.vertices * options.degree,
        0.57,
        0.19,
        0.19,
        4_2027,
    );
    let rmat_root = slfe_graph::stats::highest_out_degree_vertex(&rmat).unwrap_or(0);

    let mut all_equal = true;
    let mut sections = Vec::new();
    for (name, graph, root) in [
        ("sssp_layered", &layered, 0),
        ("bfs_layered", &layered, 0),
        ("sssp_rmat", &rmat, rmat_root),
        ("bfs_rmat", &rmat, rmat_root),
    ] {
        eprintln!(
            "{name} ({} vertices, {} edges)",
            graph.num_vertices(),
            graph.num_edges()
        );
        let points = if name.starts_with("sssp") {
            sweep(graph, options.runs, || SsspProgram { root })
        } else {
            sweep(graph, options.runs, || BfsProgram { root })
        };
        all_equal &= points
            .windows(2)
            .all(|pair| pair[0].value_bits == pair[1].value_bits);
        sections.push(sweep_json(name, &points));
    }
    assert!(
        all_equal,
        "dense/default/sparse scratch must produce bit-identical values"
    );

    // Per-iteration profiles under the default configuration: chunk visits
    // must track the active set, not the total chunk count. The deep layered
    // graph stays in push mode (a layer sits below the 5% pull threshold);
    // the wide one crosses it mid-wave, so its profile shows *pull-phase*
    // visits shrinking to the rr-ungated, frontier-adjacent chunks.
    let wide = generators::layered(
        10,
        (options.vertices / 10).max(2),
        options.degree.max(2),
        4_2028,
    );
    let mut profiles = Vec::new();
    for (name, graph) in [
        ("sssp_layered_deep", &layered),
        ("sssp_layered_wide", &wide),
    ] {
        let engine = SlfeEngine::build(graph, ClusterConfig::new(2, 4), EngineConfig::default());
        let profile = engine.run(&SsspProgram { root: 0 });
        let total_chunks = engine.layout().chunks().len();
        let mut rows = String::new();
        for (i, record) in profile.stats.trace.records().iter().enumerate() {
            if i > 0 {
                rows.push(',');
            }
            let mode = match record.mode {
                Mode::Push => "push",
                Mode::Pull => "pull",
            };
            let _ = write!(
                rows,
                "\n      {{\"iteration\": {}, \"mode\": \"{mode}\", \"active_vertices\": {}, \"chunks_visited\": {}, \"chunks_skipped\": {}}}",
                record.iteration,
                record.active_vertices,
                total_chunks as u64 - record.counters.chunks_skipped,
                record.counters.chunks_skipped
            );
        }
        profiles.push(format!(
            "    \"{name}\": {{\"total_chunks\": {total_chunks}, \"iterations\": [{rows}\n    ]}}"
        ));
    }

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"git_commit\": {},\n  \"hardware_threads\": {hardware_threads},\n  \"note\": {},\n",
        json::string(&slfe_bench::git_commit()),
        json::string("chunk_slots = chunks x iterations (what a frontier-blind executor visits); chunk_visits is what the activity summaries actually visited; scratch_bytes_peak is the live push-scratch high-water mark; dense/default/sparse values are asserted bit-identical before this file is written")
    );
    let _ = writeln!(
        json,
        "  \"graphs\": {{\"layered\": {{\"vertices\": {}, \"edges\": {}, \"layers\": {layers}}}, \"rmat\": {{\"vertices\": {}, \"edges\": {}}}}},",
        layered.num_vertices(),
        layered.num_edges(),
        rmat.num_vertices(),
        rmat.num_edges()
    );
    json.push_str("  \"values_bit_identical\": true,\n");
    json.push_str("  \"scratch_sweep\": {\n");
    json.push_str(&sections.join(",\n"));
    json.push_str("\n  },\n");
    json.push_str("  \"iteration_profiles\": {\n");
    json.push_str(&profiles.join(",\n"));
    json.push_str("\n  }\n");
    json.push_str("}\n");

    if let Err(e) = std::fs::write(&options.out, &json) {
        eprintln!("cannot write {}: {e}", options.out.display());
        std::process::exit(1);
    }
    println!("{json}");
    eprintln!("wrote {}", options.out.display());
}
