//! The [`DeltaServer`] serving loop: apply an edge-update batch, repair the RR
//! guidance, warm re-converge the program, answer queries.

use crate::durability::{
    self, DurabilityConfig, DurabilityError, DurabilityState, SnapshotState, SnapshotValue, Wal,
};
use crate::health::{ApplyError, Health};
use slfe_cluster::{Cluster, ClusterConfig, GlobalChunkLayout, LayoutPatchStats, WorkerPool};
use slfe_core::{EngineConfig, GraphProgram, ProgramResult, RepairReport, RrGuidance, SlfeEngine};
use slfe_graph::{
    is_disk_full, BatchEffect, FaultAction, FaultInjector, FaultPlan, FaultSite, Graph,
    GraphStorage, IdRemap, ReorderPolicy, UpdateBatch, VertexId,
};
use slfe_metrics::{
    DurabilityCounters, ExecutionStats, FaultCounters, MetricsRegistry, Telemetry,
    TelemetrySnapshot, HIST_BATCH_APPLY, HIST_WAL_FSYNC,
};
use slfe_partition::{contiguous_degree_layout, ChunkingPartitioner, Partitioner, Partitioning};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// Bytes of one shipped edge update: two 4-byte vertex ids plus a 4-byte weight.
const UPDATE_RECORD_BYTES: u64 = 12;

/// Serving-loop configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated cluster topology the server partitions each graph version over.
    pub cluster: ClusterConfig,
    /// Engine configuration used for the initial cold run and every restart.
    pub engine: EngineConfig,
    /// Node where update batches arrive before being forwarded to partition
    /// owners (the simulated client connection point).
    pub ingest_node: usize,
    /// When a batch dirties more than this fraction of all vertices the server
    /// runs the program from scratch instead of warm-starting: past this point
    /// the invalidation pass would walk most of the graph anyway.
    pub full_recompute_dirty_fraction: f64,
    /// Deterministic fault schedule armed from construction (so faults can
    /// fire during the open/recovery disk reads too). `None` — the default —
    /// leaves the injector disarmed: one relaxed atomic load per I/O call,
    /// behavior bit-identical to a build without the fault layer (pinned by
    /// `tests/faults.rs`).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            cluster: ClusterConfig::new(2, 2),
            engine: EngineConfig::default(),
            ingest_node: 0,
            full_recompute_dirty_fraction: 0.5,
            fault_plan: None,
        }
    }
}

/// What one applied batch cost and changed.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// What the batch changed in the graph.
    pub effect: BatchEffect,
    /// How the RR guidance was brought up to date (repair vs regeneration).
    pub guidance: RepairReport,
    /// Counted work of the re-convergence, including the warm-start
    /// invalidation pass. Compare against a from-scratch run's work to see what
    /// serving incrementally saved.
    pub work: u64,
    /// Iterations the re-convergence ran.
    pub iterations: u32,
    /// Whether the re-convergence reached a fixpoint (it always should, unless
    /// the engine's iteration cap is tighter than the disturbance).
    pub converged: bool,
    /// `true` when the server fell back to a from-scratch run (dirty fraction
    /// above [`ServerConfig::full_recompute_dirty_fraction`]).
    pub full_recompute: bool,
    /// Simulated messages spent shipping the batch's dirty updates from the
    /// ingest node to their partition owners.
    pub distribution_messages: u64,
    /// What patching the chunk layout to this graph version cost: only the
    /// dirty endpoints' owner nodes (plus the appended vertices' receiving
    /// nodes) are re-derived; everything else is carried over from the
    /// previous version.
    pub layout_patch: LayoutPatchStats,
    /// Out-of-core serving only: how many disk segments this batch rewrote
    /// across both adjacency directions ([`GraphStorage::patched`] — the
    /// segment analogue of the adjacency range patch). 0 when the server runs
    /// in-memory.
    pub segments_rewritten: u64,
    /// Out-of-core serving only: bytes of the backing segment files the
    /// current graph version actually references. 0 when in-memory.
    pub storage_live_bytes: u64,
    /// Out-of-core serving only: bytes of superseded segment versions still
    /// occupying the backing files (reclaimed by compaction on the snapshot
    /// path). 0 when in-memory.
    pub storage_dead_bytes: u64,
    /// Vertex-count imbalance (max node load / mean node load) of the stable
    /// partitioning after this batch's appended vertices joined it. `0.0`
    /// only for an empty partitioning; `1.0` is perfectly balanced. Sustained
    /// growth keeps this bounded (appends join the least-loaded node), and
    /// when [`EngineConfig::migration_imbalance_threshold`] is set the
    /// snapshot-path remap migrates vertices whenever it overshoots.
    pub partition_imbalance: f64,
    /// Wall-clock seconds for the whole apply (graph patch + guidance + rerun).
    pub wall_seconds: f64,
    /// Wall-clock seconds the WAL fsync for this batch took (0.0 on a
    /// non-durable server).
    pub wal_fsync_seconds: f64,
    /// `true` when the batch itself succeeded but a post-apply durability
    /// step (snapshot or compaction) failed and was absorbed: the server
    /// keeps serving read-write with the WAL growing until a later snapshot
    /// lands. Details are on [`crate::Health`].
    pub degraded: bool,
}

/// Cumulative serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Batches applied since the server was built.
    pub batches_applied: u64,
    /// Total counted re-convergence work across all batches.
    pub total_work: u64,
    /// Total simulated batch-distribution messages.
    pub total_distribution_messages: u64,
    /// How many batches fell back to a full recompute.
    pub full_recomputes: u64,
    /// How many guidance updates fell back to full regeneration.
    pub guidance_regenerations: u64,
}

/// An always-on serving instance of one graph program.
///
/// The server owns the current graph version, the (incrementally maintained)
/// redundancy-reduction guidance and the program's current fixpoint. Because
/// several programs capture graph-dependent state (`PageRank` holds `|V|`,
/// `Heat` precomputes out-degree shares), the server is built from a *program
/// factory* that re-instantiates the program for each graph version.
///
/// **External ids at the API boundary.** Queries ([`DeltaServer::value`],
/// [`DeltaServer::values`], [`DeltaServer::top_k_by`]), update batches,
/// [`BatchOutcome::effect`], WAL frames and snapshots all speak the stable
/// *external* vertex ids clients know. Internally the server may serve from a
/// physically reordered layout ([`EngineConfig::reorder`] /
/// [`EngineConfig::migration_imbalance_threshold`], applied on the snapshot
/// path or via [`DeltaServer::remap_now`]); the cumulative
/// [`slfe_graph::IdRemap`] on the graph translates at the boundary, and a
/// remapped run is value-transparent — bit-identical served values. One
/// consequence for the program factory: it receives the current
/// (physical-layout) graph, so a factory that captures vertex ids (an SSSP
/// root, a heat source) must translate them with [`Graph::to_physical`].
///
/// ```
/// use slfe_delta::{DeltaServer, ServerConfig};
/// use slfe_graph::{generators, UpdateBatch};
/// # use slfe_core::{AggregationKind, GraphProgram};
/// # use slfe_graph::{Degrees, EdgeWeight, VertexId};
/// # #[derive(Clone, Copy)] struct Sssp { root: VertexId }
/// # impl GraphProgram for Sssp {
/// #     type Value = f32;
/// #     fn aggregation(&self) -> AggregationKind { AggregationKind::MinMax }
/// #     fn name(&self) -> &'static str { "sssp" }
/// #     fn initial_value(&self, v: VertexId, _d: &Degrees) -> f32 {
/// #         if v == self.root { 0.0 } else { f32::INFINITY }
/// #     }
/// #     fn initial_active(&self, v: VertexId, _d: &Degrees) -> bool { v == self.root }
/// #     fn identity(&self) -> f32 { f32::INFINITY }
/// #     fn edge_contribution(&self, _s: VertexId, v: f32, w: EdgeWeight) -> Option<f32> {
/// #         v.is_finite().then_some(v + w)
/// #     }
/// #     fn combine(&self, a: f32, b: f32) -> f32 { a.min(b) }
/// #     fn apply(&self, _d: VertexId, old: f32, g: f32) -> f32 { old.min(g) }
/// # }
/// let graph = generators::rmat(500, 4000, 0.57, 0.19, 0.19, 7);
/// let mut server = DeltaServer::new(graph, |_g| Sssp { root: 0 }, ServerConfig::default());
/// let mut batch = UpdateBatch::new();
/// batch.insert(0, 499, 1.5);
/// let outcome = server.apply(&batch);
/// assert!(outcome.converged);
/// assert!(server.value(499).is_some());
/// ```
pub struct DeltaServer<P, F>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    make_program: F,
    program: P,
    /// The current graph version, shared (`Arc`) with the segment store's
    /// quarantine-rebuild path so unreadable segments can be reconstructed
    /// from the authoritative in-memory adjacency.
    graph: Arc<Graph>,
    config: ServerConfig,
    rrg: RrGuidance,
    /// The persistent worker pool, created once at server startup and threaded
    /// through every graph version's engine (cold run, guidance repair *and*
    /// warm restarts) — applying a batch spawns zero threads.
    pool: Arc<WorkerPool>,
    /// The vertex → node assignment, built once at startup and **kept stable
    /// across graph versions** (the id space only grows; appended vertices
    /// join the least-loaded node, so sustained growth cannot skew one
    /// node's load). Stability is what lets the chunk layout be patched
    /// instead of re-derived per batch; sharing the `Arc` with each
    /// version's cluster is what keeps batch application free of O(V) copies.
    partitioning: Arc<Partitioning>,
    /// The degree-aware chunk layout of the current graph version,
    /// incrementally patched at each batch's dirty endpoints
    /// ([`GlobalChunkLayout::patched`]) and handed to every engine this
    /// server builds — warm and cold paths share the same instance, built
    /// once per applied version.
    layout: GlobalChunkLayout,
    /// Out-of-core serving ([`EngineConfig::storage_budget_bytes`] set): the
    /// current graph version's disk-segment store, patched per batch at the
    /// dirty segments only and threaded into every engine this server builds.
    /// `None` runs in-memory.
    storage: Option<Arc<GraphStorage>>,
    result: ProgramResult<P::Value>,
    /// External-id-ordered view of `result.values`, maintained only while the
    /// graph carries a non-identity remap (`None` otherwise — the physical
    /// vector *is* the external order then, and the view costs nothing).
    /// Refreshed whenever `result` or the remap changes.
    external_values: Option<Vec<P::Value>>,
    stats: ServerStats,
    /// Dirty vertices accumulated since the guidance was last brought up to
    /// date. The warm path never reads the rulers, so repair is deferred
    /// until something does: a full-recompute fallback, a snapshot, or the
    /// [`DeltaServer::guidance`] accessor. Appended vertex ids are included
    /// (they must be in the repair's dirty set for repair to reproduce
    /// regeneration exactly).
    pending_guidance_dirty: Vec<VertexId>,
    /// WAL + snapshot state when this server was built through
    /// [`DeltaServer::create_durable`] / [`DeltaServer::open`].
    durability: Option<DurabilityState>,
    /// The server's telemetry hub ([`EngineConfig::telemetry`]-gated), shared
    /// with every engine this server builds so spans and latency histograms
    /// accumulate over the serving lifetime instead of resetting per batch.
    telemetry: Arc<Telemetry>,
    /// The fault injector every disk touchpoint of this server consults —
    /// disarmed (one relaxed atomic load per call) unless
    /// [`ServerConfig::fault_plan`] armed it or a test arms it directly.
    faults: Arc<FaultInjector>,
    /// Degradation state: read-only mode, snapshot-failure staleness, and
    /// recovery-action counts.
    health: Health,
}

impl<P, F> DeltaServer<P, F>
where
    P: GraphProgram,
    F: Fn(&Graph) -> P,
{
    /// Build the server: partition `graph`, generate the guidance, run the
    /// program cold once. Every subsequent [`DeltaServer::apply`] is warm.
    ///
    /// Panics when the out-of-core segment files cannot be written; use
    /// [`DeltaServer::try_new`] for a typed error instead.
    pub fn new(graph: Graph, make_program: F, config: ServerConfig) -> Self {
        Self::try_new(graph, make_program, config)
            .expect("failed to write out-of-core graph segments")
    }

    /// [`DeltaServer::new`] with build-time I/O failure as a typed error.
    pub fn try_new(graph: Graph, make_program: F, config: ServerConfig) -> io::Result<Self> {
        let graph = Arc::new(graph);
        let faults = match &config.fault_plan {
            Some(plan) => FaultInjector::armed(plan.clone()),
            None => FaultInjector::disabled(),
        };
        let pool = Arc::new(WorkerPool::new(config.cluster.total_workers()));
        let program = make_program(&graph);
        let rrg = RrGuidance::generate_parallel_on(&graph, &pool);
        let partitioning =
            Arc::new(ChunkingPartitioner::default().partition(&graph, config.cluster.num_nodes));
        let cluster =
            Cluster::with_shared_partitioning(Arc::clone(&partitioning), config.cluster.clone());
        let layout = cluster.build_layout(&graph);
        // Out-of-core serving: the segments are written once here; every
        // batch then patches only the dirty ones (`GraphStorage::patched`).
        // The in-memory graph is attached as the recovery source so
        // unreadable segments can be quarantined and rebuilt from it.
        let storage = match config.engine.storage_config() {
            Some(sc) => {
                let mut s =
                    GraphStorage::build_with_faults(&graph, &sc, Some(Arc::clone(&faults)))?;
                s.set_recovery(&graph);
                Some(Arc::new(s))
            }
            None => None,
        };
        let telemetry = Arc::new(Telemetry::new(config.engine.telemetry));
        let mut engine = SlfeEngine::with_prebuilt_layout_and_storage(
            &graph,
            cluster,
            config.engine.clone(),
            rrg.clone(),
            Arc::clone(&pool),
            layout.clone(),
            storage.clone(),
        );
        engine.set_telemetry(Arc::clone(&telemetry));
        let cold_span = telemetry.begin();
        let result = engine.run(&program);
        telemetry.end(cold_span, "cold_run", "server", 0);
        drop(engine);
        let mut server = Self {
            make_program,
            program,
            graph,
            config,
            rrg,
            pool,
            partitioning,
            layout,
            storage,
            result,
            external_values: None,
            stats: ServerStats::default(),
            pending_guidance_dirty: Vec::new(),
            durability: None,
            telemetry,
            faults,
            health: Health::new(),
        };
        // The seed graph may already carry a remap (a test or a tool serving
        // a pre-reordered layout): keep the external view consistent from the
        // first query on.
        server.refresh_external_values();
        Ok(server)
    }

    /// Rebuild the external-id-ordered value view after `result.values` or
    /// the graph's remap changed. Free (drops the cache) on an unremapped
    /// graph.
    fn refresh_external_values(&mut self) {
        self.external_values = self.graph.id_remap().map(|remap| {
            (0..self.result.values.len() as VertexId)
                .map(|ext| self.result.values[remap.to_new(ext) as usize])
                .collect()
        });
    }

    /// Translate a physically-indexed [`BatchEffect`] to external ids (the
    /// form [`BatchOutcome::effect`] reports). Sorted-ascending invariants
    /// are restored after translation; a no-remap graph passes through
    /// untouched.
    fn external_effect(graph: &Graph, mut effect: BatchEffect) -> BatchEffect {
        if graph.is_remapped() {
            for v in effect.dirty.iter_mut() {
                *v = graph.external_id(*v);
            }
            effect.dirty.sort_unstable();
            for v in effect.worsened_dsts.iter_mut() {
                *v = graph.external_id(*v);
            }
            effect.worsened_dsts.sort_unstable();
        }
        effect
    }

    /// Bring the guidance up to date with `graph`, draining `pending`.
    /// Returns the synced guidance and what the sync cost (a zero-work report
    /// when nothing was pending).
    fn sync_guidance_parts(
        rrg: &RrGuidance,
        pending: &mut Vec<VertexId>,
        graph: &Graph,
        pool: &WorkerPool,
    ) -> (RrGuidance, RepairReport) {
        let padded = rrg.extended_to(graph.num_vertices());
        if pending.is_empty() {
            return (
                padded,
                RepairReport {
                    regenerated: false,
                    affected_vertices: 0,
                    work: 0,
                },
            );
        }
        pending.sort_unstable();
        pending.dedup();
        let repaired = padded.repair_on(graph, pending, pool);
        pending.clear();
        repaired
    }

    /// Byte health of the out-of-core backing files: `(live, dead)`, both 0
    /// when the server runs in-memory.
    fn storage_byte_health(storage: &Option<Arc<GraphStorage>>) -> (u64, u64) {
        storage
            .as_ref()
            .map(|s| (s.footprint_bytes(), s.dead_bytes()))
            .unwrap_or((0, 0))
    }

    /// Apply one edge-update batch *to the in-memory state only*: patch the
    /// graph, warm re-converge the program, and account the batch-shipping
    /// traffic. No write-ahead logging happens here — this is the path WAL
    /// replay re-drives during recovery, and what [`DeltaServer::apply`] runs
    /// after the batch is durably logged. Guidance maintenance is *lazy*: the
    /// warm path never reads the rulers, so dirty vertices only accumulate
    /// here and the repair runs when a cold run, snapshot, or guidance query
    /// actually needs them.
    ///
    /// Panics on unrecoverable storage failure; use
    /// [`DeltaServer::try_apply_committed`] for the typed-error contract.
    pub fn apply_committed(&mut self, batch: &UpdateBatch) -> BatchOutcome {
        self.try_apply_committed(batch)
            .unwrap_or_else(|e| panic!("failed to apply a committed batch: {e}"))
    }

    /// Run one engine pass over `graph` with the given artifacts; returns
    /// the program result and the batch-distribution message count.
    #[allow(clippy::too_many_arguments)]
    fn run_engine(
        &self,
        graph: &Graph,
        program: &P,
        rrg: &RrGuidance,
        layout: &GlobalChunkLayout,
        storage: Option<Arc<GraphStorage>>,
        full_recompute: bool,
        effect: &BatchEffect,
    ) -> (ProgramResult<P::Value>, u64) {
        let cluster = Cluster::with_shared_partitioning(
            Arc::clone(&self.partitioning),
            self.config.cluster.clone(),
        );
        let mut engine = SlfeEngine::with_prebuilt_layout_and_storage(
            graph,
            cluster,
            self.config.engine.clone(),
            rrg.clone(),
            Arc::clone(&self.pool),
            layout.clone(),
            storage,
        );
        engine.set_telemetry(Arc::clone(&self.telemetry));
        let run_span = self.telemetry.begin();
        let result = if full_recompute {
            engine.run(program)
        } else {
            engine.run_from_effect(program, &self.result, effect)
        };
        let run_name = if full_recompute {
            "cold_run"
        } else {
            "warm_restart"
        };
        self.telemetry.end(run_span, run_name, "server", 0);
        let distribution_messages = engine.cluster().record_batch_distribution(
            self.config.ingest_node,
            effect.dirty.iter().copied(),
            UPDATE_RECORD_BYTES,
        );
        (result, distribution_messages)
    }

    /// Rebuild the out-of-core segment store for `graph` from scratch (the
    /// in-memory adjacency is authoritative) and re-attach it as its own
    /// recovery source. Returns the store and its total segment count.
    fn rebuild_storage(&mut self, graph: &Arc<Graph>) -> io::Result<(Arc<GraphStorage>, u64)> {
        let sc = self
            .config
            .engine
            .storage_config()
            .expect("storage rebuild requires an out-of-core configuration");
        let mut s = GraphStorage::build_with_faults(graph, &sc, Some(Arc::clone(&self.faults)))?;
        s.set_recovery(graph);
        let rewritten = (s.out_store().num_segments() + s.in_store().num_segments()) as u64;
        self.health.note_storage_rebuild();
        Ok((Arc::new(s), rewritten))
    }

    /// Restore the pre-batch mutable state after a discarded run: the
    /// accumulated guidance-dirty set and the (grown) stable partitioning.
    /// Everything else — graph version, layout, fixpoint, stats — was never
    /// assigned, so the server still serves the previous version exactly.
    fn rollback_batch(&mut self, old_n: usize, pending_before: Vec<VertexId>) {
        self.pending_guidance_dirty = pending_before;
        if self.partitioning.num_vertices() > old_n {
            let owners = self.partitioning.owners()[..old_n].to_vec();
            let parts = self.partitioning.num_parts();
            self.partitioning = Arc::new(Partitioning::from_owners(owners, parts));
        }
    }

    /// [`DeltaServer::apply_committed`] with the graceful-degradation
    /// contract: unreadable segments are retried, quarantined and rebuilt
    /// in place; a segment store that can be neither patched nor rebuilt, or
    /// an execution still poisoned after one re-drive on a fresh store,
    /// flips the server read-only and returns a typed error — the previous
    /// version's values keep serving untouched either way.
    pub fn try_apply_committed(&mut self, batch: &UpdateBatch) -> Result<BatchOutcome, ApplyError> {
        let start = Instant::now();
        let batch_span = self.telemetry.begin();
        // Batches arrive (and are WAL-logged) in external ids; translate the
        // endpoints into the current physical layout on admission. Appended
        // vertices sit beyond the remap and map to themselves.
        let translated;
        let batch = if self.graph.is_remapped() {
            translated = batch.mapped(|v| self.graph.to_physical(v));
            &translated
        } else {
            batch
        };
        let (graph, effect) = self.graph.apply_batch(batch);
        let graph = Arc::new(graph);
        if effect.is_noop() {
            // Nothing changed: keep every artifact (graph version, cluster,
            // guidance, fixpoint) instead of rebuilding them all for nothing.
            self.stats.batches_applied += 1;
            let (storage_live_bytes, storage_dead_bytes) = Self::storage_byte_health(&self.storage);
            let wall = start.elapsed();
            self.telemetry.end(batch_span, "batch", "server", 0);
            self.telemetry
                .record_ns(HIST_BATCH_APPLY, wall.as_nanos() as u64);
            return Ok(BatchOutcome {
                effect,
                guidance: RepairReport {
                    regenerated: false,
                    affected_vertices: 0,
                    work: 0,
                },
                work: 0,
                iterations: 0,
                converged: true,
                full_recompute: false,
                distribution_messages: 0,
                layout_patch: LayoutPatchStats::default(),
                segments_rewritten: 0,
                storage_live_bytes,
                storage_dead_bytes,
                partition_imbalance: self.partitioning.imbalance(),
                wall_seconds: wall.as_secs_f64(),
                wal_fsync_seconds: 0.0,
                degraded: false,
            });
        }
        let old_n = self.graph.num_vertices();
        let n = graph.num_vertices();
        // Out-of-core: rewrite only the segments a dirty endpoint lives in
        // (plus fresh segments for appended vertices); the clean ones keep
        // their bytes and any warm buffer-pool frames. This runs *before*
        // any server state mutates: a store that can be neither patched nor
        // rebuilt leaves the previous version serving untouched.
        let (storage, segments_rewritten) = match &self.storage {
            Some(storage) => match storage.patched(&graph, &effect.dirty) {
                Ok((mut patched, rewritten)) => {
                    patched.set_recovery(&graph);
                    (Some(Arc::new(patched)), rewritten)
                }
                Err(patch_err) => match self.rebuild_storage(&graph) {
                    Ok((rebuilt, rewritten)) => (Some(rebuilt), rewritten),
                    Err(rebuild_err) => {
                        self.telemetry.end(batch_span, "batch", "server", 0);
                        self.health.enter_read_only(format!(
                            "segment store could not be patched ({patch_err}) or rebuilt \
                             ({rebuild_err})"
                        ));
                        return Err(ApplyError::StoragePatch(rebuild_err));
                    }
                },
            },
            None => (None, 0),
        };
        // Everything past this point mutates server state; remember what a
        // poisoned-execution rollback must restore.
        let pending_before = self.pending_guidance_dirty.clone();
        // Defer guidance repair: remember what this batch dirtied (including
        // every appended vertex id — repair needs them in its dirty set to
        // reproduce regeneration exactly) and only pay for the repair on the
        // paths that read rulers.
        self.pending_guidance_dirty.extend_from_slice(&effect.dirty);
        self.pending_guidance_dirty
            .extend(old_n as VertexId..n as VertexId);
        let dirty_fraction = effect.dirty.len() as f64 / n.max(1) as f64;
        let full_recompute = dirty_fraction > self.config.full_recompute_dirty_fraction;
        let (rrg, guidance) = if full_recompute {
            // The cold run reads the rulers: sync now.
            let repair_span = self.telemetry.begin();
            let parts = Self::sync_guidance_parts(
                &self.rrg,
                &mut self.pending_guidance_dirty,
                &graph,
                &self.pool,
            );
            self.telemetry
                .end(repair_span, "guidance_repair", "server", 0);
            parts
        } else {
            // Warm restart: rulers are never read, only the engine's size
            // invariant must hold. Stale levels are fine; appended vertices
            // are padded as "never early-converged" so nothing is skipped.
            (
                self.rrg.extended_to(n),
                RepairReport {
                    regenerated: false,
                    affected_vertices: 0,
                    work: 0,
                },
            )
        };
        let program = (self.make_program)(&graph);

        // One partitioning, one layout, per applied version — shared by the
        // warm path and the cold-run fallback alike. The partitioning only
        // grows (appended vertices join the least-loaded nodes, keeping the
        // per-node loads bounded under sustained growth), so chunk estimates
        // move exclusively at the batch's dirty endpoints plus the receiving
        // nodes, and the layout is patched there instead of being re-derived
        // with an O(V+E) scan+sort.
        let num_nodes = self.config.cluster.num_nodes;
        // The previous version's cluster is gone by now, so the Arc is
        // unshared and `make_mut` extends in place.
        let growth_receivers = Arc::make_mut(&mut self.partitioning).extend_to(n);
        let mut touched = vec![false; num_nodes];
        for node in growth_receivers {
            touched[node] = true;
        }
        for &v in &effect.dirty {
            touched[self.partitioning.owner_of(v)] = true;
        }
        let owned: Vec<&[VertexId]> = (0..num_nodes)
            .map(|node| self.partitioning.vertices_of(node))
            .collect();
        let (layout, layout_patch) =
            self.layout
                .patched(&graph, &owned, self.config.cluster.chunk_size, &touched);
        let (mut result, distribution_messages) = self.run_engine(
            &graph,
            &program,
            &rrg,
            &layout,
            storage.clone(),
            full_recompute,
            &effect,
        );
        let mut storage = storage;
        let mut segments_rewritten = segments_rewritten;
        // A poisoned run means segment reads failed beyond what retries and
        // quarantine-rebuilds could absorb — the computed values may rest on
        // placeholder (empty) adjacency lists. Discard them, rebuild the
        // store from the authoritative in-memory graph, and re-drive the run
        // once; a second poisoning rolls the server back to the previous
        // version and flips it read-only.
        let poison_note = storage.as_ref().and_then(|s| {
            s.take_poisoned().then(|| {
                s.poison_note()
                    .unwrap_or_else(|| "unreadable segments".to_string())
            })
        });
        if let Some(note) = poison_note {
            self.faults.note_poisoned_run();
            let redriven = self
                .rebuild_storage(&graph)
                .and_then(|(rebuilt, rewritten)| {
                    let (rerun, _) = self.run_engine(
                        &graph,
                        &program,
                        &rrg,
                        &layout,
                        Some(Arc::clone(&rebuilt)),
                        full_recompute,
                        &effect,
                    );
                    if rebuilt.take_poisoned() {
                        self.faults.note_poisoned_run();
                        Err(io::Error::other(rebuilt.poison_note().unwrap_or_else(
                            || "still unreadable after a rebuild".to_string(),
                        )))
                    } else {
                        Ok((rebuilt, rewritten, rerun))
                    }
                });
            match redriven {
                Ok((rebuilt, rewritten, rerun)) => {
                    storage = Some(rebuilt);
                    segments_rewritten = rewritten;
                    result = rerun;
                }
                Err(e) => {
                    self.telemetry.end(batch_span, "batch", "server", 0);
                    self.rollback_batch(old_n, pending_before);
                    let note = format!("{note}; {e}");
                    self.health.enter_read_only(format!(
                        "execution poisoned ({note}); restart the server to recover via WAL replay"
                    ));
                    return Err(ApplyError::ExecutionPoisoned { note });
                }
            }
        }

        let (storage_live_bytes, storage_dead_bytes) = Self::storage_byte_health(&storage);
        let wall = start.elapsed();
        self.telemetry.end(batch_span, "batch", "server", 0);
        self.telemetry
            .record_ns(HIST_BATCH_APPLY, wall.as_nanos() as u64);
        let outcome = BatchOutcome {
            effect: Self::external_effect(&graph, effect),
            guidance,
            work: result.stats.totals.work(),
            iterations: result.stats.iterations,
            converged: result.converged,
            full_recompute,
            distribution_messages,
            layout_patch,
            segments_rewritten,
            storage_live_bytes,
            storage_dead_bytes,
            partition_imbalance: self.partitioning.imbalance(),
            wall_seconds: wall.as_secs_f64(),
            wal_fsync_seconds: 0.0,
            degraded: false,
        };
        self.stats.batches_applied += 1;
        self.stats.total_work += outcome.work;
        self.stats.total_distribution_messages += distribution_messages;
        self.stats.full_recomputes += full_recompute as u64;
        self.stats.guidance_regenerations += guidance.regenerated as u64;
        self.graph = graph;
        self.rrg = rrg;
        self.layout = layout;
        self.storage = storage;
        self.program = program;
        self.result = result;
        self.refresh_external_values();
        Ok(outcome)
    }

    /// Point query: the program's current value at external id `v` (`None`
    /// when `v` is outside the current graph version).
    pub fn value(&self, v: VertexId) -> Option<P::Value> {
        self.result
            .values
            .get(self.graph.to_physical(v) as usize)
            .copied()
    }

    /// The full current value vector, indexed by **external** vertex id —
    /// identical across physical layouts.
    pub fn values(&self) -> &[P::Value] {
        self.external_values
            .as_deref()
            .unwrap_or(&self.result.values)
    }

    /// The `k` vertices (external ids) ranked by `compare` (greatest first),
    /// ties broken by external id ascending — deterministic regardless of
    /// worker count or physical layout.
    pub fn top_k_by(
        &self,
        k: usize,
        mut compare: impl FnMut(&P::Value, &P::Value) -> std::cmp::Ordering,
    ) -> Vec<(VertexId, P::Value)> {
        let mut ranked: Vec<(VertexId, P::Value)> = self
            .result
            .values
            .iter()
            .enumerate()
            .map(|(p, &value)| (self.graph.external_id(p as VertexId), value))
            .collect();
        ranked.sort_by(|a, b| compare(&b.1, &a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// The current graph version.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current program instance (rebuilt per graph version).
    pub fn program(&self) -> &P {
        &self.program
    }

    /// The current full program result.
    pub fn result(&self) -> &ProgramResult<P::Value> {
        &self.result
    }

    /// The incrementally maintained guidance, brought up to date first.
    ///
    /// Guidance maintenance is lazy (warm restarts never read the rulers), so
    /// querying it is the moment any deferred repair runs — hence `&mut`.
    pub fn guidance(&mut self) -> &RrGuidance {
        self.sync_guidance();
        &self.rrg
    }

    /// Run any deferred guidance repair now (no-op when nothing is pending).
    fn sync_guidance(&mut self) {
        if self.pending_guidance_dirty.is_empty()
            && self.rrg.num_vertices() == self.graph.num_vertices()
        {
            return;
        }
        let repair_span = self.telemetry.begin();
        let (rrg, report) = Self::sync_guidance_parts(
            &self.rrg,
            &mut self.pending_guidance_dirty,
            &self.graph,
            &self.pool,
        );
        self.telemetry
            .end(repair_span, "guidance_repair", "server", 0);
        self.stats.guidance_regenerations += report.regenerated as u64;
        self.rrg = rrg;
    }

    /// Counted work a guidance sync would do right now: 0 when nothing is
    /// pending. (Test hook for pinning the warm path's repair work at zero.)
    pub fn pending_guidance_vertices(&self) -> usize {
        self.pending_guidance_dirty.len()
    }

    /// Run the configured physical-layout policy now: migrate vertices off
    /// overloaded nodes when [`EngineConfig::migration_imbalance_threshold`]
    /// is exceeded, then reorder ids partition-contiguously (degree-descending
    /// within each partition under [`ReorderPolicy::DegreeDescending`]) and
    /// rebuild every physical artifact — graph, guidance, values, layout,
    /// segment store — under the new bijection. Returns `true` when a remap
    /// was applied, `false` when no policy is configured or the layout is
    /// already in place.
    ///
    /// On a durable server this normally runs by itself on the snapshot path
    /// (gated by [`DurabilityConfig::remap_on_snapshot`]), where the WAL is
    /// about to be trimmed — its external-id frames never cross a layout
    /// change. Remapped runs are value-transparent: every query answers
    /// bit-identically before and after.
    pub fn remap_now(&mut self) -> io::Result<bool> {
        let policy = self.config.engine.reorder;
        let threshold = self.config.engine.migration_imbalance_threshold;
        if policy == ReorderPolicy::None && threshold.is_none() {
            return Ok(false);
        }
        // The guidance permutes with the graph, so it must match the current
        // version's size (and content) before the rename.
        self.sync_guidance();
        let migrated = threshold.and_then(|t| self.partitioning.migrated_owners(t));
        let partitioning = match migrated {
            Some(owners) => Arc::new(Partitioning::from_owners(
                owners,
                self.partitioning.num_parts(),
            )),
            None => Arc::clone(&self.partitioning),
        };
        let step = contiguous_degree_layout(&self.graph, &partitioning, policy);
        if step.is_identity() && Arc::ptr_eq(&partitioning, &self.partitioning) {
            return Ok(false);
        }
        self.apply_remap(partitioning, &step)?;
        Ok(true)
    }

    /// Rebuild every physical-id-indexed artifact under the remap `step`.
    /// `partitioning` is the owner assignment in the *pre-step* id space
    /// (possibly migrated). Everything fallible (the segment-store re-encode)
    /// runs before any state is assigned, so an I/O error leaves the server
    /// serving the old layout untouched.
    fn apply_remap(&mut self, partitioning: Arc<Partitioning>, step: &IdRemap) -> io::Result<()> {
        let graph = Arc::new(self.graph.remapped(step));
        let owners = step.permuted_values(partitioning.owners());
        let num_parts = partitioning.num_parts();
        let partitioning = Arc::new(Partitioning::from_owners(owners, num_parts));
        let cluster = Cluster::with_shared_partitioning(
            Arc::clone(&partitioning),
            self.config.cluster.clone(),
        );
        let layout = cluster.build_layout(&graph);
        drop(cluster);
        // Re-encode the out-of-core segments in the new order — the hot/cold
        // clustering the reorder exists for lives in these files.
        let storage = match self.config.engine.storage_config() {
            Some(sc) => {
                let mut s =
                    GraphStorage::build_with_faults(&graph, &sc, Some(Arc::clone(&self.faults)))?;
                s.set_recovery(&graph);
                Some(Arc::new(s))
            }
            None => None,
        };
        self.rrg = self.rrg.permuted(step);
        self.result.values = step.permuted_values(&self.result.values);
        self.result.last_changed_iter = step.permuted_values(&self.result.last_changed_iter);
        step.map_ids(&mut self.pending_guidance_dirty);
        self.program = (self.make_program)(&graph);
        self.graph = graph;
        self.partitioning = partitioning;
        self.layout = layout;
        self.storage = storage;
        self.refresh_external_values();
        Ok(())
    }

    /// Durability activity counters, when this server is durable.
    pub fn durability_counters(&self) -> Option<&DurabilityCounters> {
        self.durability.as_ref().map(|d| &d.counters)
    }

    /// Degradation state: read-only mode, snapshot staleness, recovery
    /// actions taken.
    pub fn health(&self) -> &Health {
        &self.health
    }

    /// Probe whether the write path works again and, if so, re-enter
    /// read-write mode. Before this existed, read-only was terminal: an
    /// ENOSPC that an operator later cleared still required a full reopen.
    ///
    /// On a durable server the probe writes, fsyncs, and removes a small
    /// scratch file in the durability directory (consulting the
    /// [`FaultSite::WalAppend`] injection point first, so tests drive the
    /// outcome); a WAL-sized obstacle like a full disk fails the probe and
    /// the server stays read-only. A non-durable server has no disk
    /// contract left to verify, so it resumes optimistically — the next
    /// apply re-enters read-only if the underlying failure persists.
    ///
    /// Returns `true` when the server is writable on exit (including when
    /// it already was). Successful transitions increment
    /// [`Health::writes_resumed`] and surface in the registry as
    /// `slfe_health_writes_resumed_total`.
    pub fn try_resume_writes(&mut self) -> bool {
        if !self.health.is_read_only() {
            return true;
        }
        if let Some(d) = self.durability.as_ref() {
            if self.probe_write(&d.config.dir).is_err() {
                return false;
            }
        }
        self.health.resume_writes();
        true
    }

    /// One resume probe: a 4 KiB write + fsync + unlink in `dir`, gated by
    /// the WAL-append fault site so injection plans cover it.
    fn probe_write(&self, dir: &std::path::Path) -> io::Result<()> {
        if let Some(action) = self.faults.on_io(FaultSite::WalAppend) {
            return match action {
                FaultAction::Error(e) => Err(e),
                FaultAction::ShortIo => Err(io::Error::other("short write on resume probe")),
            };
        }
        use std::io::Write as _;
        let path = dir.join("resume.probe");
        let mut file = std::fs::File::create(&path)?;
        file.write_all(&[0u8; 4096])?;
        file.sync_all()?;
        drop(file);
        std::fs::remove_file(&path)?;
        Ok(())
    }

    /// The fault injector every disk touchpoint of this server consults.
    /// Tests arm it mid-serving with [`FaultInjector::arm`]; it is disarmed
    /// (and injects nothing) unless a [`ServerConfig::fault_plan`] or a test
    /// armed it.
    pub fn fault_injector(&self) -> &Arc<FaultInjector> {
        &self.faults
    }

    /// Cumulative injected-fault and recovery counters (retries,
    /// quarantines, poisoned runs) across the serving lifetime.
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.counters()
    }

    /// Sequence number of the last WAL-logged batch, when durable.
    pub fn wal_seq(&self) -> Option<u64> {
        self.durability.as_ref().map(|d| d.seq)
    }

    /// The stable vertex → node assignment shared by every graph version.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// The current graph version's chunk layout (patched, not rebuilt).
    pub fn layout(&self) -> &GlobalChunkLayout {
        &self.layout
    }

    /// The current graph version's out-of-core segment store (patched per
    /// batch), when the server runs in that mode.
    pub fn storage(&self) -> Option<&Arc<GraphStorage>> {
        self.storage.as_ref()
    }

    /// Cumulative serving statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The server's persistent worker pool (shared with every engine it builds).
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Everything the telemetry hub has collected over the serving lifetime:
    /// spans (batch, WAL append, guidance repair, warm restarts, engine
    /// iterations, segment faults) and latency histograms. Empty when
    /// [`EngineConfig::telemetry`] is off.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// The live telemetry hub, shared with the serving front end so reader
    /// threads can record query latency into the same histograms.
    pub(crate) fn telemetry_hub(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// A point-in-time metrics registry over every layer the server drives:
    /// pool worker busy/idle/barrier-wait fractions, buffer-pool hit/miss/
    /// eviction rates, WAL and snapshot counters, storage byte health, and
    /// cumulative serving statistics. Always populated — the registry reads
    /// counters that are maintained regardless of the telemetry switch.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();

        let activity = self.pool.activity();
        let busy = activity.busy_fractions();
        let idle = activity.idle_fractions();
        for (worker, (b, i)) in busy.iter().zip(idle.iter()).enumerate() {
            let label = worker.to_string();
            reg.gauge_with(
                "slfe_pool_worker_busy_fraction",
                &[("worker", &label)],
                "Fraction of the pool's lifetime this worker spent executing tasks",
                *b,
            );
            reg.gauge_with(
                "slfe_pool_worker_idle_fraction",
                &[("worker", &label)],
                "Fraction of the pool's lifetime this worker spent idle",
                *i,
            );
        }
        reg.gauge(
            "slfe_pool_barrier_wait_fraction",
            "Fraction of the pool's lifetime the coordinator spent waiting at phase barriers",
            activity.barrier_wait_fraction(),
        );
        reg.gauge(
            "slfe_pool_average_concurrency",
            "Mean number of simultaneously busy workers over the pool's lifetime",
            activity.average_concurrency(),
        );
        reg.counter(
            "slfe_pool_phases_total",
            "Parallel phases the pool has executed",
            activity.phases as f64,
        );

        if let Some(storage) = &self.storage {
            let pool = storage.pool();
            let c = pool.counters();
            reg.counter(
                "slfe_storage_segment_hits_total",
                "Buffer-pool gets served from a resident frame",
                c.segment_hits as f64,
            );
            reg.counter(
                "slfe_storage_segments_faulted_total",
                "Buffer-pool gets that read a segment from disk",
                c.segments_faulted as f64,
            );
            reg.counter(
                "slfe_storage_segments_evicted_total",
                "Frames evicted by the clock sweep to stay inside the budget",
                c.segments_evicted as f64,
            );
            reg.counter(
                "slfe_storage_segment_bytes_read_total",
                "Bytes read from the segment files",
                c.segment_bytes_read as f64,
            );
            reg.gauge(
                "slfe_storage_pool_hit_rate",
                "Buffer-pool hit rate (hits / gets); NaN before the first get",
                c.hit_rate().unwrap_or(f64::NAN),
            );
            reg.gauge(
                "slfe_storage_pool_resident_bytes",
                "Bytes currently resident in the buffer pool",
                pool.resident_bytes() as f64,
            );
            reg.gauge(
                "slfe_storage_pool_peak_resident_bytes",
                "High-water mark of resident buffer-pool bytes",
                pool.peak_resident_bytes() as f64,
            );
            reg.gauge(
                "slfe_storage_pool_budget_bytes",
                "Configured buffer-pool byte budget",
                pool.budget_bytes() as f64,
            );
            reg.gauge(
                "slfe_storage_live_bytes",
                "Backing-file bytes the current graph version references",
                storage.footprint_bytes() as f64,
            );
            reg.gauge(
                "slfe_storage_dead_bytes",
                "Backing-file bytes of superseded segment versions awaiting compaction",
                storage.dead_bytes() as f64,
            );
        }

        if let Some(d) = &self.durability {
            let c = &d.counters;
            reg.counter(
                "slfe_wal_entries_appended_total",
                "Update batches appended to the write-ahead log",
                c.wal_entries_appended as f64,
            );
            reg.counter(
                "slfe_wal_bytes_appended_total",
                "Bytes those WAL appends wrote, frame headers included",
                c.wal_bytes_appended as f64,
            );
            reg.counter(
                "slfe_wal_fsyncs_total",
                "fsync calls issued by WAL appends",
                c.wal_fsyncs as f64,
            );
            reg.counter(
                "slfe_wal_entries_replayed_total",
                "Batches re-applied from the WAL during recovery",
                c.wal_entries_replayed as f64,
            );
            reg.counter(
                "slfe_wal_bytes_truncated_total",
                "Torn or corrupt WAL tail bytes discarded on open",
                c.wal_bytes_truncated as f64,
            );
            reg.counter(
                "slfe_snapshots_written_total",
                "Fixpoint snapshots written",
                c.snapshots_written as f64,
            );
            reg.counter(
                "slfe_snapshot_bytes_written_total",
                "Bytes of snapshot files written",
                c.snapshot_bytes_written as f64,
            );
            reg.counter(
                "slfe_storage_compactions_total",
                "Segment-file compactions performed on the snapshot path",
                c.compactions as f64,
            );
            reg.counter(
                "slfe_storage_compaction_bytes_reclaimed_total",
                "Dead backing-file bytes compactions reclaimed",
                c.compaction_bytes_reclaimed as f64,
            );
        }

        reg.gauge(
            "slfe_partition_imbalance",
            "Vertex-count imbalance (max/mean node load) of the stable partitioning",
            self.partitioning.imbalance(),
        );
        reg.counter(
            "slfe_server_batches_applied_total",
            "Update batches the server has applied",
            self.stats.batches_applied as f64,
        );
        reg.counter(
            "slfe_server_work_total",
            "Counted re-convergence work across all batches",
            self.stats.total_work as f64,
        );
        reg.counter(
            "slfe_server_distribution_messages_total",
            "Simulated batch-distribution messages",
            self.stats.total_distribution_messages as f64,
        );
        reg.counter(
            "slfe_server_full_recomputes_total",
            "Batches that fell back to a from-scratch run",
            self.stats.full_recomputes as f64,
        );
        reg.counter(
            "slfe_server_guidance_regenerations_total",
            "Guidance updates that fell back to full regeneration",
            self.stats.guidance_regenerations as f64,
        );

        let fc = self.fault_counters();
        for (kind, value) in [
            ("transient", fc.injected_transient),
            ("permanent", fc.injected_permanent),
            ("short_io", fc.injected_short_io),
            ("disk_full", fc.injected_disk_full),
        ] {
            reg.counter_with(
                "slfe_faults_injected_total",
                &[("kind", kind)],
                "Faults the deterministic injector delivered to disk touchpoints",
                value as f64,
            );
        }
        reg.counter(
            "slfe_io_retries_total",
            "I/O attempts retried after a failure (bounded exponential backoff)",
            fc.io_retries as f64,
        );
        reg.counter(
            "slfe_io_retry_successes_total",
            "I/O operations that succeeded on a retry after failing at least once",
            fc.io_retry_successes as f64,
        );
        reg.counter(
            "slfe_segments_quarantined_total",
            "Unreadable segments quarantined and rebuilt from the in-memory graph",
            fc.segments_quarantined as f64,
        );
        reg.counter(
            "slfe_poisoned_runs_total",
            "Engine runs discarded because segment reads failed beyond recovery",
            fc.poisoned_runs as f64,
        );
        reg.gauge(
            "slfe_health_read_only",
            "1 when the update side is disabled after an unrecoverable write failure",
            self.health.is_read_only() as u64 as f64,
        );
        reg.gauge(
            "slfe_health_degraded",
            "1 when any serving guarantee is currently weakened",
            self.health.is_degraded() as u64 as f64,
        );
        reg.counter(
            "slfe_snapshot_failures_total",
            "Snapshot attempts that failed (the server keeps serving; the WAL grows)",
            self.health.snapshot_failures() as f64,
        );
        reg.counter(
            "slfe_wal_trim_failures_total",
            "WAL trims after a successful snapshot that failed (harmless: replay skips)",
            self.health.wal_trim_failures() as f64,
        );
        reg.counter(
            "slfe_storage_rebuilds_total",
            "Full segment-store rebuilds after a patch failure or poisoned run",
            self.health.storage_rebuilds() as f64,
        );
        reg.counter(
            "slfe_health_writes_resumed_total",
            "ReadOnly -> ReadWrite transitions after a successful resume probe",
            self.health.writes_resumed() as f64,
        );
        reg
    }

    /// The serving configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }
}

impl<P, F> DeltaServer<P, F>
where
    P: GraphProgram,
    P::Value: SnapshotValue,
    F: Fn(&Graph) -> P,
{
    /// Apply one edge-update batch durably: append it to the write-ahead log
    /// and fsync *first*, then run [`DeltaServer::apply_committed`], then
    /// snapshot (and possibly compact the segment files) if the cadence says
    /// so. On a non-durable server this is exactly `apply_committed`.
    ///
    /// Unrecoverable write-side failure panics — use
    /// [`DeltaServer::try_apply`] for the typed graceful-degradation
    /// contract. A failed *snapshot* never fails the apply on either entry
    /// point: the batch is durable in the WAL, so the server keeps serving
    /// with [`BatchOutcome::degraded`] set and the WAL growing until a later
    /// snapshot lands.
    pub fn apply(&mut self, batch: &UpdateBatch) -> BatchOutcome {
        self.try_apply(batch)
            .unwrap_or_else(|e| panic!("failed to apply a batch: {e}"))
    }

    /// [`DeltaServer::apply`] with the graceful-degradation contract:
    ///
    /// * Transient I/O faults are absorbed by bounded retries — the outcome
    ///   is bit-identical to a fault-free apply.
    /// * A WAL append that cannot complete within the retry budget (or hits
    ///   ENOSPC) means the durability contract is broken: the batch is
    ///   rejected, the server flips read-only, and queries keep answering
    ///   from the last published version.
    /// * An unrecoverable segment-store failure likewise rejects the batch
    ///   read-only, still serving the previous version.
    /// * A failed snapshot or compaction is absorbed: the batch succeeds
    ///   with [`BatchOutcome::degraded`] set.
    ///
    /// Once read-only, every subsequent call returns
    /// [`ApplyError::ReadOnly`] without touching the WAL.
    pub fn try_apply(&mut self, batch: &UpdateBatch) -> Result<BatchOutcome, ApplyError> {
        if self.health.is_read_only() {
            return Err(ApplyError::ReadOnly {
                reason: self
                    .health
                    .read_only_reason()
                    .unwrap_or("unknown")
                    .to_string(),
            });
        }
        let telemetry = Arc::clone(&self.telemetry);
        let mut wal_fsync_seconds = 0.0;
        if let Some(d) = self.durability.as_mut() {
            let seq = d.seq + 1;
            let append_span = telemetry.begin();
            let append = match d.wal.append(seq, batch) {
                Ok(a) => a,
                Err(e) => {
                    telemetry.end(append_span, "wal_append", "server", 0);
                    let cause = if is_disk_full(&e) {
                        "disk full (ENOSPC) on WAL append"
                    } else {
                        "WAL append failed"
                    };
                    self.health.enter_read_only(format!("{cause}: {e}"));
                    return Err(ApplyError::WalAppend(e));
                }
            };
            telemetry.end(append_span, "wal_append", "server", 0);
            telemetry.record_ns(HIST_WAL_FSYNC, append.fsync_nanos);
            wal_fsync_seconds = append.fsync_nanos as f64 * 1e-9;
            d.seq = seq;
            d.counters.wal_entries_appended += 1;
            d.counters.wal_bytes_appended += append.frame_bytes;
            d.counters.wal_fsyncs += 1;
        }
        let mut outcome = self.try_apply_committed(batch)?;
        outcome.wal_fsync_seconds = wal_fsync_seconds;
        if let Err(e) = self.maybe_snapshot() {
            // The batch is durable (WAL) and applied (memory): a failed
            // snapshot only means the recovery point is going stale.
            self.health.note_snapshot_failure(&e);
            outcome.degraded = true;
        }
        Ok(outcome)
    }

    /// Snapshot now if the cadence (batches since the last snapshot, or WAL
    /// bytes) says one is due. No-op on a non-durable server.
    fn maybe_snapshot(&mut self) -> io::Result<()> {
        let Some(d) = self.durability.as_ref() else {
            return Ok(());
        };
        let due = d.seq - d.snapshot_seq >= d.config.snapshot_every_batches
            || d.wal.bytes() >= d.config.snapshot_wal_bytes;
        if due {
            self.snapshot()?;
        }
        Ok(())
    }

    /// Write a fixpoint snapshot of the current served state (atomic temp +
    /// rename), compact the out-of-core segment files first when their
    /// dead-byte fraction exceeds [`DurabilityConfig::max_dead_fraction`],
    /// then trim the WAL — every logged batch is now covered by the snapshot.
    /// A trim failure is absorbed (replay skips covered entries); a snapshot
    /// write failure is returned and leaves the previous snapshot intact.
    ///
    /// Panics when called on a server without durability state.
    pub fn snapshot(&mut self) -> io::Result<()> {
        assert!(
            self.durability.is_some(),
            "snapshot() requires a durable server (create_durable/open)"
        );
        let snapshot_span = self.telemetry.begin();
        // The snapshot stores the guidance, so bring it up to date: recovery
        // then restores rulers identical to what a cold run would need.
        self.sync_guidance();
        // Physical-layout policy rides the snapshot path too: the WAL is
        // about to be trimmed, so every logged external-id batch is folded in
        // before the id space is renamed, and the snapshot below records the
        // new layout plus its bijection.
        if self.durability.as_ref().unwrap().config.remap_on_snapshot {
            if let Err(e) = self.remap_now() {
                self.telemetry.end(snapshot_span, "snapshot", "server", 0);
                return Err(e);
            }
        }
        // Compaction rides the snapshot path: rewrite live segments into a
        // fresh generation when too much of the backing files is dead bytes.
        let max_dead = self.durability.as_ref().unwrap().config.max_dead_fraction;
        let needs_compaction = self
            .storage
            .as_ref()
            .is_some_and(|s| s.dead_fraction() > max_dead);
        if needs_compaction {
            let storage = self.storage.as_ref().unwrap();
            let before = storage.file_bytes();
            let compacted = storage.compacted(&self.graph)?;
            let reclaimed = before.saturating_sub(compacted.file_bytes());
            self.storage = Some(Arc::new(compacted));
            let d = self.durability.as_mut().unwrap();
            d.counters.compactions += 1;
            d.counters.compaction_bytes_reclaimed += reclaimed;
        }
        let d = self.durability.as_mut().unwrap();
        let write = durability::write_snapshot(
            &d.config,
            &SnapshotState {
                seq: d.seq,
                stats: self.stats,
                graph: &self.graph,
                values: &self.result.values,
                guidance: &self.rrg,
                owners: self.partitioning.owners(),
                num_parts: self.partitioning.num_parts(),
            },
            Some(&self.faults),
        );
        let bytes = match write {
            Ok(bytes) => bytes,
            Err(e) => {
                self.telemetry.end(snapshot_span, "snapshot", "server", 0);
                return Err(e);
            }
        };
        d.counters.snapshots_written += 1;
        d.counters.snapshot_bytes_written += bytes;
        d.snapshot_seq = d.seq;
        self.health.note_snapshot_success();
        // Safe even if we die — or the trim fails — before this lands:
        // replay skips entries at or below the snapshot's sequence number,
        // so a failed trim costs replay time, never correctness.
        if d.wal.truncate_all().is_err() {
            self.health.note_wal_trim_failure();
        }
        self.telemetry.end(snapshot_span, "snapshot", "server", 0);
        Ok(())
    }

    /// Build a fresh durable server: run [`DeltaServer::new`], then write the
    /// initial snapshot so [`DeltaServer::open`] always finds one.
    pub fn create_durable(
        graph: Graph,
        make_program: F,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> io::Result<Self> {
        std::fs::create_dir_all(&durability.dir)?;
        let mut server = Self::try_new(graph, make_program, config)?;
        let (wal, _) = Wal::open_with(
            &durability.wal_path(),
            Some(Arc::clone(&server.faults)),
            durability.retry,
        )?;
        let mut state = DurabilityState {
            config: durability,
            wal,
            seq: 0,
            snapshot_seq: 0,
            counters: DurabilityCounters::zero(),
        };
        // A fresh server supersedes whatever a previous life logged here.
        state.wal.truncate_all()?;
        server.durability = Some(state);
        server.snapshot()?;
        Ok(server)
    }

    /// Recover a durable server from its snapshot plus WAL suffix: load the
    /// snapshot (graph, fixpoint values, guidance, partitioning, stats),
    /// rebuild the runtime artifacts (pool, layout, segment files), then
    /// replay every WAL entry past the snapshot's sequence number through the
    /// identical warm apply path. The recovered values are bit-identical to
    /// an uninterrupted run's — for min/max and arithmetic programs alike.
    ///
    /// A torn or corrupt WAL tail is truncated silently (those batches were
    /// never acknowledged); a corrupt snapshot is a structured error, never a
    /// panic.
    pub fn open(
        make_program: F,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<Self, DurabilityError> {
        let faults = match &config.fault_plan {
            Some(plan) => FaultInjector::armed(plan.clone()),
            None => FaultInjector::disabled(),
        };
        let snap = durability::read_snapshot::<P::Value>(&durability, Some(&faults))?;
        if snap.num_parts != config.cluster.num_nodes {
            return Err(DurabilityError::CorruptSnapshot {
                reason: "snapshot partitioning does not match the cluster config",
            });
        }
        let graph = Arc::new(snap.graph);
        let n = graph.num_vertices();
        let pool = Arc::new(WorkerPool::new(config.cluster.total_workers()));
        let program = make_program(&graph);
        let partitioning = Arc::new(Partitioning::from_owners(snap.owners, snap.num_parts));
        let cluster =
            Cluster::with_shared_partitioning(Arc::clone(&partitioning), config.cluster.clone());
        let layout = cluster.build_layout(&graph);
        drop(cluster);
        let storage = match config.engine.storage_config() {
            Some(sc) => {
                let mut s =
                    GraphStorage::build_with_faults(&graph, &sc, Some(Arc::clone(&faults)))?;
                s.set_recovery(&graph);
                Some(Arc::new(s))
            }
            None => None,
        };
        // The fixpoint values are the snapshot's; the run-shaped metadata is
        // zeroed (warm restarts read only the values).
        let result = ProgramResult {
            values: snap.values,
            stats: ExecutionStats::new("slfe", program.name()),
            last_changed_iter: vec![0; n],
            per_node_worker_work: vec![
                vec![0; config.cluster.workers_per_node];
                config.cluster.num_nodes
            ],
            converged: true,
        };
        let (wal, replay) = Wal::open_with(
            &durability.wal_path(),
            Some(Arc::clone(&faults)),
            durability.retry,
        )?;
        let mut counters = DurabilityCounters::zero();
        counters.wal_bytes_truncated += replay.bytes_truncated;
        let config_telemetry = config.engine.telemetry;
        let mut server = Self {
            make_program,
            program,
            graph,
            config,
            rrg: snap.guidance,
            pool,
            partitioning,
            layout,
            storage,
            result,
            external_values: None,
            stats: snap.stats,
            pending_guidance_dirty: Vec::new(),
            durability: None,
            telemetry: Arc::new(Telemetry::new(config_telemetry)),
            faults,
            health: Health::new(),
        };
        // A snapshot of a remapped server restores its bijection with the
        // graph; queries must answer in external order from the first read.
        server.refresh_external_values();
        // Re-drive the unacknowledged suffix through the exact same path the
        // live server used. Entries at or below the snapshot's sequence are
        // already folded in (the process died between the snapshot rename
        // and the WAL trim) — skipping them is what makes replay idempotent.
        let mut seq = snap.seq;
        for (entry_seq, batch) in replay.entries {
            if entry_seq <= snap.seq {
                continue;
            }
            server
                .try_apply_committed(&batch)
                .map_err(|e| DurabilityError::Io(io::Error::other(e.to_string())))?;
            counters.wal_entries_replayed += 1;
            seq = entry_seq;
        }
        server.durability = Some(DurabilityState {
            config: durability,
            wal,
            seq,
            snapshot_seq: snap.seq,
            counters,
        });
        // Replay may have pushed the cadence past its trigger; snapshotting
        // *after* the loop (never mid-replay) keeps the WAL intact until
        // every entry is re-applied. A failed snapshot here degrades health
        // instead of failing the open — the WAL still covers every entry.
        if let Err(e) = server.maybe_snapshot() {
            server.health.note_snapshot_failure(&e);
        }
        Ok(server)
    }

    /// Open the durable server at `durability.dir` if a snapshot exists
    /// there, otherwise build a fresh one from `make_graph()`.
    pub fn open_or_create(
        make_graph: impl FnOnce() -> Graph,
        make_program: F,
        config: ServerConfig,
        durability: DurabilityConfig,
    ) -> Result<Self, DurabilityError> {
        if durability.snapshot_path().exists() {
            Self::open(make_program, config, durability)
        } else {
            Ok(Self::create_durable(
                make_graph(),
                make_program,
                config,
                durability,
            )?)
        }
    }
}

impl<P, F> DeltaServer<P, F>
where
    P: GraphProgram,
    P::Value: PartialOrd,
    F: Fn(&Graph) -> P,
{
    /// The `k` largest values (PageRank-style ranking queries). For distance
    /// programs, rank with [`DeltaServer::top_k_by`] and a reversed comparator.
    pub fn top_k(&self, k: usize) -> Vec<(VertexId, P::Value)> {
        self.top_k_by(k, |a, b| {
            a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_apps::pagerank::PageRankProgram;
    use slfe_apps::sssp::SsspProgram;
    use slfe_core::RedundancyMode;
    use slfe_graph::rng::SplitMix64;
    use slfe_graph::{generators, stats};

    fn sssp_server(
        graph: Graph,
        root: VertexId,
        config: ServerConfig,
    ) -> DeltaServer<SsspProgram, impl Fn(&Graph) -> SsspProgram> {
        DeltaServer::new(graph, move |_| SsspProgram { root }, config)
    }

    fn mixed_batch(graph: &Graph, seed: u64, ops: usize) -> UpdateBatch {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let n = graph.num_vertices() as u32;
        let mut batch = UpdateBatch::new();
        for _ in 0..ops {
            let src = rng.range_u32(0, n);
            if rng.next_f64() < 0.7 {
                batch.insert(src, rng.range_u32(0, n), rng.range_f32(1.0, 10.0));
            } else if let Some(&dst) = graph.out_neighbors(src).first() {
                batch.delete(src, dst);
            }
        }
        batch
    }

    #[test]
    fn served_sssp_stays_identical_to_from_scratch_across_batches() {
        let graph = generators::rmat(600, 4200, 0.57, 0.19, 0.19, 11);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, ServerConfig::default());
        let mut current = graph;
        for round in 0..4u64 {
            let batch = mixed_batch(&current, round + 70, 25);
            let outcome = server.apply(&batch);
            assert!(outcome.converged);
            current = current.apply_batch(&batch).0;
            let oracle = SlfeEngine::build(
                &current,
                ServerConfig::default().cluster,
                EngineConfig::default(),
            )
            .run(&SsspProgram { root });
            assert_eq!(
                server
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                oracle
                    .values
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "round {round}: served values diverge from a from-scratch run"
            );
            // The maintained guidance matches regeneration on the current graph.
            assert!(server
                .guidance()
                .guidance_eq(&RrGuidance::generate(&current)));
        }
        assert_eq!(server.stats().batches_applied, 4);
    }

    #[test]
    fn served_pagerank_tracks_the_exact_fixpoint() {
        let graph = generators::rmat(300, 2100, 0.57, 0.19, 0.19, 23);
        // Ruler-free engine: the oracle below is then the exact fixpoint.
        let config = ServerConfig {
            engine: EngineConfig::default()
                .with_redundancy(RedundancyMode::Disabled)
                .with_max_iterations(300),
            ..ServerConfig::default()
        };
        let mut server = DeltaServer::new(
            graph.clone(),
            |g: &Graph| PageRankProgram::new(g.num_vertices()),
            config.clone(),
        );
        let batch = mixed_batch(&graph, 5, 20);
        let outcome = server.apply(&batch);
        assert!(outcome.converged);
        let mutated = graph.apply_batch(&batch).0;
        let oracle = SlfeEngine::build(&mutated, config.cluster.clone(), config.engine.clone())
            .run(&PageRankProgram::new(mutated.num_vertices()));
        for v in 0..mutated.num_vertices() {
            assert!(
                (server.values()[v] - oracle.values[v]).abs() < 1e-5,
                "vertex {v}: served {} vs oracle {}",
                server.values()[v],
                oracle.values[v]
            );
        }
        // Warm restart converges in fewer iterations than the cold oracle run.
        assert!(outcome.iterations <= oracle.stats.iterations);
    }

    #[test]
    fn point_and_top_k_queries_answer_from_the_current_fixpoint() {
        let graph = generators::layered(6, 30, 4, 9);
        let mut server = sssp_server(graph, 0, ServerConfig::default());
        assert_eq!(server.value(0), Some(0.0));
        assert!(server.value(10_000).is_none());
        // Nearest vertices: smallest finite distances first.
        let nearest = server.top_k_by(5, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        assert_eq!(nearest.len(), 5);
        assert_eq!(nearest[0], (0, 0.0));
        assert!(nearest.windows(2).all(|w| w[0].1 <= w[1].1));

        // After inserting a zero-ish cost shortcut the target joins the top.
        let far = (server.graph().num_vertices() - 1) as VertexId;
        let mut batch = UpdateBatch::new();
        batch.insert(0, far, 0.001);
        server.apply(&batch);
        let nearest = server.top_k_by(2, |a, b| {
            b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
        });
        assert_eq!(nearest[1].0, far);
    }

    #[test]
    fn oversized_batches_fall_back_to_full_recompute() {
        let graph = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 31);
        let config = ServerConfig {
            full_recompute_dirty_fraction: 0.0, // force the fallback
            ..ServerConfig::default()
        };
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, config);
        let batch = mixed_batch(&graph, 3, 10);
        let outcome = server.apply(&batch);
        assert!(outcome.full_recompute);
        assert_eq!(server.stats().full_recomputes, 1);
        let mutated = graph.apply_batch(&batch).0;
        let oracle = SlfeEngine::build(
            &mutated,
            ServerConfig::default().cluster,
            EngineConfig::default(),
        )
        .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn batch_distribution_traffic_is_accounted() {
        let graph = generators::rmat(400, 2400, 0.57, 0.19, 0.19, 17);
        let mut server = sssp_server(graph.clone(), 0, ServerConfig::default());
        let batch = mixed_batch(&graph, 8, 30);
        let outcome = server.apply(&batch);
        // With two nodes and dozens of random dirty endpoints, some must be
        // remote to the ingest node.
        assert!(outcome.distribution_messages > 0);
        assert!(outcome.distribution_messages <= outcome.effect.dirty.len() as u64);
        assert_eq!(
            server.stats().total_distribution_messages,
            outcome.distribution_messages
        );
    }

    /// Applying a batch must *patch* the chunk layout — touching only the
    /// dirty endpoints' owner nodes — and the patched layout must equal a
    /// from-scratch derivation over the server's stable partitioning, batch
    /// after batch.
    #[test]
    fn applying_batches_patches_the_layout_instead_of_rebuilding() {
        let graph = generators::rmat(4000, 24_000, 0.57, 0.19, 0.19, 97);
        let config = ServerConfig {
            cluster: ClusterConfig::new(8, 1),
            ..ServerConfig::default()
        };
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph, root, config);
        let initial_chunks = server.layout().chunks().len();
        assert!(initial_chunks > 8, "need a real chunk population");

        for round in 0..4u64 {
            // A two-edge batch between two vertices: at most 4 dirty
            // endpoints, so at most 4 owner nodes may be rebuilt.
            let n = server.graph().num_vertices() as u32;
            let mut rng = SplitMix64::seed_from_u64(round + 500);
            let mut batch = UpdateBatch::new();
            batch
                .insert(rng.range_u32(0, n), rng.range_u32(0, n), 1.5)
                .insert(rng.range_u32(0, n), rng.range_u32(0, n), 2.5);
            let outcome = server.apply(&batch);
            assert!(outcome.converged);

            // Patch locality: only dirty-endpoint owners were re-derived,
            // and their owned vertices bound the patch's counted work.
            assert!(
                outcome.layout_patch.nodes_rebuilt <= outcome.effect.dirty.len().min(8),
                "round {round}: rebuilt {} nodes for {} dirty endpoints",
                outcome.layout_patch.nodes_rebuilt,
                outcome.effect.dirty.len()
            );
            assert!(
                outcome.layout_patch.vertices_scanned < server.graph().num_vertices(),
                "round {round}: patch scanned the whole graph"
            );
            assert!(outcome.layout_patch.chunks_reused > 0);

            // Patch correctness: bit-equal to the from-scratch layout over
            // the same (stable) partitioning.
            let owned: Vec<&[slfe_graph::VertexId]> = (0..8)
                .map(|node| server.partitioning().vertices_of(node))
                .collect();
            let scratch = slfe_cluster::GlobalChunkLayout::build(
                server.graph(),
                &owned,
                server.config().cluster.chunk_size,
            );
            assert_eq!(
                *server.layout(),
                scratch,
                "round {round}: patched layout diverges from a from-scratch build"
            );
        }
    }

    /// The stable partitioning grows with appended vertices and keeps serving
    /// correct values (the from-scratch oracle uses its own partitioning, so
    /// equality here also proves values are partitioning-independent).
    #[test]
    fn appended_vertices_join_the_stable_partitioning() {
        let graph = generators::rmat(500, 3000, 0.57, 0.19, 0.19, 77);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, ServerConfig::default());
        let n = graph.num_vertices() as u32;
        let mut batch = UpdateBatch::new();
        batch.insert(root, n + 3, 1.0).insert(n + 3, n + 7, 2.0);
        let outcome = server.apply(&batch);
        assert!(outcome.converged);
        assert_eq!(server.partitioning().num_vertices(), n as usize + 8);
        // Every node's list stays ascending no matter which node received
        // which appended id.
        for node in 0..server.config().cluster.num_nodes {
            let owned = server.partitioning().vertices_of(node);
            assert!(owned.windows(2).all(|w| w[0] < w[1]));
        }
        let (mutated, _) = graph.apply_batch(&batch);
        let oracle = SlfeEngine::build(
            &mutated,
            ServerConfig::default().cluster,
            EngineConfig::default(),
        )
        .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    /// Growth-skew regression: sustained append-heavy batches must keep the
    /// stable partitioning's node loads bounded (the old code piled every
    /// grown vertex onto the last node, unboundedly) while serving stays
    /// bit-correct against a from-scratch oracle.
    #[test]
    fn sustained_growth_batches_keep_node_loads_bounded() {
        let graph = generators::rmat(400, 2400, 0.57, 0.19, 0.19, 53);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let config = ServerConfig {
            cluster: ClusterConfig::new(4, 1),
            ..ServerConfig::default()
        };
        let mut server = sssp_server(graph.clone(), root, config);
        let spread = |p: &Partitioning| {
            let c = p.vertex_counts();
            c.iter().max().unwrap() - c.iter().min().unwrap()
        };
        let initial_spread = spread(server.partitioning());
        let mut current = graph;
        for round in 0..10u64 {
            // Each batch appends 6 fresh vertices hanging off existing ones.
            let n = current.num_vertices() as u32;
            let mut rng = SplitMix64::seed_from_u64(round + 900);
            let mut batch = UpdateBatch::new();
            for k in 0..6u32 {
                batch.insert(rng.range_u32(0, n), n + k, rng.range_f32(1.0, 4.0));
            }
            let outcome = server.apply(&batch);
            assert!(outcome.converged);
            current = current.apply_batch(&batch).0;
            assert!(
                spread(server.partitioning()) <= initial_spread.max(1),
                "round {round}: node loads {:?} diverged",
                server.partitioning().vertex_counts()
            );
        }
        // All 60 appended vertices were assigned (and, per the loop above,
        // without widening the vertex-count spread).
        let counts = server.partitioning().vertex_counts();
        assert_eq!(counts.iter().sum::<usize>(), current.num_vertices());
        let oracle = SlfeEngine::build(&current, ClusterConfig::new(4, 1), EngineConfig::default())
            .run(&SsspProgram { root });
        assert_eq!(
            server
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            oracle
                .values
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
        );
    }

    /// Out-of-core serving: a server whose engine streams disk segments must
    /// serve bit-identical values to an in-memory one across mixed batches,
    /// while patching only the dirty segments per batch.
    #[test]
    fn out_of_core_server_matches_in_memory_and_patches_segments() {
        let graph = generators::rmat(600, 4200, 0.57, 0.19, 0.19, 19);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let oocore = ServerConfig {
            engine: EngineConfig::default()
                .with_storage_budget(24 << 10)
                .with_storage_segment_bytes(2 << 10),
            ..ServerConfig::default()
        };
        let mut server = sssp_server(graph.clone(), root, oocore);
        let mut reference = sssp_server(graph.clone(), root, ServerConfig::default());
        assert!(server.storage().is_some());
        let total_segments = {
            let s = server.storage().unwrap();
            s.out_store().num_segments() + s.in_store().num_segments()
        };
        let mut current = graph;
        for round in 0..3u64 {
            let batch = mixed_batch(&current, round + 31, 15);
            let outcome = server.apply(&batch);
            let ref_outcome = reference.apply(&batch);
            assert!(outcome.converged && ref_outcome.converged);
            assert!(outcome.segments_rewritten > 0);
            assert!(
                outcome.segments_rewritten < total_segments as u64,
                "round {round}: batch rewrote all {total_segments} segments"
            );
            assert_eq!(ref_outcome.segments_rewritten, 0);
            current = current.apply_batch(&batch).0;
            assert_eq!(
                server
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                reference
                    .values()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "round {round}: out-of-core serving diverges from in-memory"
            );
        }
        let pool = server.storage().unwrap().pool();
        assert!(pool.counters().segments_faulted > 0);
        assert!(pool.peak_resident_bytes() <= pool.budget_bytes());
    }

    fn durable_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("slfe-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bits(values: &[f32]) -> Vec<u32> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    /// A durable server re-opened after a clean drop (snapshot + WAL suffix
    /// on disk) serves values bit-identical to an uninterrupted server, and
    /// its cumulative stats line up.
    #[test]
    fn reopened_durable_server_is_bit_identical_to_an_uninterrupted_one() {
        let dir = durable_dir("reopen");
        let graph = generators::rmat(500, 3500, 0.57, 0.19, 0.19, 61);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let make = move |_: &Graph| SsspProgram { root };
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(3);
        let mut durable = DeltaServer::create_durable(
            graph.clone(),
            make,
            ServerConfig::default(),
            durability.clone(),
        )
        .unwrap();
        let mut witness = sssp_server(graph.clone(), root, ServerConfig::default());
        let mut current = graph;
        for round in 0..5u64 {
            let batch = mixed_batch(&current, round + 400, 20);
            durable.apply(&batch);
            witness.apply(&batch);
            current = current.apply_batch(&batch).0;
        }
        let expected_stats = *durable.stats();
        drop(durable);

        let mut reopened = DeltaServer::open(make, ServerConfig::default(), durability).unwrap();
        assert_eq!(bits(reopened.values()), bits(witness.values()));
        assert_eq!(*reopened.stats(), expected_stats);
        // Snapshot at seq 3, entries 4 and 5 replayed from the WAL.
        assert_eq!(
            reopened.durability_counters().unwrap().wal_entries_replayed,
            2
        );
        // The restored guidance keeps the maintenance invariant.
        assert!(reopened
            .guidance()
            .guidance_eq(&RrGuidance::generate(&current)));
        std::fs::remove_dir_all(reopened.durability_counters().map(|_| &dir).unwrap()).unwrap();
    }

    /// Replay skips WAL entries the snapshot already covers — the state a
    /// crash between the snapshot rename and the WAL trim leaves behind.
    #[test]
    fn replay_skips_entries_the_snapshot_already_covers() {
        let dir = durable_dir("idempotent");
        let graph = generators::rmat(300, 2000, 0.57, 0.19, 0.19, 67);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let make = move |_: &Graph| SsspProgram { root };
        // Cadence high enough that nothing snapshots on its own.
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(100);
        let mut server = DeltaServer::create_durable(
            graph.clone(),
            make,
            ServerConfig::default(),
            durability.clone(),
        )
        .unwrap();
        let mut current = graph;
        for round in 0..3u64 {
            let batch = mixed_batch(&current, round + 40, 15);
            server.apply(&batch);
            current = current.apply_batch(&batch).0;
        }
        let expected = bits(server.values());
        // Freeze the WAL as it stands, snapshot (which trims it), then put
        // the stale WAL back: every entry is now ≤ the snapshot's sequence.
        let stale_wal = std::fs::read(durability.wal_path()).unwrap();
        server.snapshot().unwrap();
        std::fs::write(durability.wal_path(), &stale_wal).unwrap();
        drop(server);

        let reopened = DeltaServer::open(make, ServerConfig::default(), durability).unwrap();
        assert_eq!(
            reopened.durability_counters().unwrap().wal_entries_replayed,
            0,
            "entries covered by the snapshot must not be re-applied"
        );
        assert_eq!(bits(reopened.values()), expected);
        assert_eq!(reopened.stats().batches_applied, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A torn WAL tail (the write the kill interrupted) rolls back to the
    /// last fully logged batch — recovery serves that prefix's exact values.
    #[test]
    fn torn_wal_tail_recovers_the_last_fully_logged_batch() {
        let dir = durable_dir("torn");
        let graph = generators::rmat(300, 2000, 0.57, 0.19, 0.19, 71);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let make = move |_: &Graph| SsspProgram { root };
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(100);
        let mut server = DeltaServer::create_durable(
            graph.clone(),
            make,
            ServerConfig::default(),
            durability.clone(),
        )
        .unwrap();
        let mut witness = sssp_server(graph.clone(), root, ServerConfig::default());
        let mut current = graph;
        let mut wal_after = Vec::new();
        for round in 0..4u64 {
            let batch = mixed_batch(&current, round + 4000, 12);
            server.apply(&batch);
            current = current.apply_batch(&batch).0;
            if round < 3 {
                witness.apply(&batch);
            }
            wal_after.push(std::fs::metadata(durability.wal_path()).unwrap().len());
        }
        drop(server);
        // Tear the 4th entry: keep a strict prefix of its frame.
        let full = std::fs::read(durability.wal_path()).unwrap();
        std::fs::write(
            durability.wal_path(),
            &full[..(wal_after[2] as usize + 5).min(full.len())],
        )
        .unwrap();

        let reopened = DeltaServer::open(make, ServerConfig::default(), durability).unwrap();
        assert_eq!(bits(reopened.values()), bits(witness.values()));
        assert_eq!(reopened.stats().batches_applied, 3);
        assert!(reopened.durability_counters().unwrap().wal_bytes_truncated > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Warm batches must not pay for guidance repair: the repair runs lazily
    /// when something reads the rulers, and it then matches regeneration.
    #[test]
    fn warm_batches_defer_guidance_repair_entirely() {
        let graph = generators::rmat(500, 3500, 0.57, 0.19, 0.19, 83);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let mut server = sssp_server(graph.clone(), root, ServerConfig::default());
        let mut current = graph;
        for round in 0..3u64 {
            let batch = mixed_batch(&current, round + 640, 20);
            let outcome = server.apply(&batch);
            current = current.apply_batch(&batch).0;
            assert!(!outcome.full_recompute, "round {round} must stay warm");
            assert_eq!(
                outcome.guidance.work, 0,
                "round {round}: the warm path paid for guidance repair"
            );
            assert!(!outcome.guidance.regenerated);
        }
        assert!(server.pending_guidance_vertices() > 0);
        // First read pays the deferred repair and lands on regeneration.
        assert!(server
            .guidance()
            .guidance_eq(&RrGuidance::generate(&current)));
        assert_eq!(server.pending_guidance_vertices(), 0);
    }

    /// Out-of-core durable serving: snapshots compact the segment files past
    /// the configured dead-byte bound, and compaction never perturbs values.
    #[test]
    fn snapshots_compact_the_segment_files_past_the_dead_byte_bound() {
        let dir = durable_dir("compact");
        let graph = generators::rmat(600, 4200, 0.57, 0.19, 0.19, 89);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let make = move |_: &Graph| SsspProgram { root };
        let oocore = ServerConfig {
            engine: EngineConfig::default()
                .with_storage_budget(24 << 10)
                .with_storage_segment_bytes(2 << 10),
            ..ServerConfig::default()
        };
        let durability = DurabilityConfig::new(&dir)
            .with_snapshot_every(2)
            .with_max_dead_fraction(0.15);
        let mut server =
            DeltaServer::create_durable(graph.clone(), make, oocore, durability.clone()).unwrap();
        let mut witness = sssp_server(graph.clone(), root, ServerConfig::default());
        let mut current = graph;
        for round in 0..8u64 {
            let batch = mixed_batch(&current, round + 7000, 25);
            let outcome = server.apply(&batch);
            witness.apply(&batch);
            current = current.apply_batch(&batch).0;
            assert_eq!(bits(server.values()), bits(witness.values()));
            // Byte health is reported per batch.
            assert!(outcome.storage_live_bytes > 0);
            // Right after a snapshot the dead fraction sits at or below the
            // bound (a fresh compaction leaves it at zero).
            if server.wal_seq() == Some(round + 1) && (round + 1) % 2 == 0 {
                let s = server.storage().unwrap();
                assert!(
                    s.dead_fraction() <= durability.max_dead_fraction,
                    "round {round}: dead fraction {} above the bound",
                    s.dead_fraction()
                );
            }
        }
        let counters = server.durability_counters().unwrap();
        assert!(counters.compactions >= 1, "no snapshot ever compacted");
        assert!(counters.compaction_bytes_reclaimed > 0);
        assert!(counters.snapshots_written >= 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Corruption surfaces as structured errors, never a panic.
    #[test]
    fn corrupt_or_missing_snapshots_are_structured_errors() {
        let dir = durable_dir("corrupt");
        let make = |_: &Graph| SsspProgram { root: 0 };
        let durability = DurabilityConfig::new(&dir);
        match DeltaServer::open(make, ServerConfig::default(), durability.clone()) {
            Err(crate::DurabilityError::MissingSnapshot(_)) => {}
            other => panic!(
                "expected MissingSnapshot, got {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
        let graph = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 97);
        let server =
            DeltaServer::create_durable(graph, make, ServerConfig::default(), durability.clone())
                .unwrap();
        drop(server);
        // Flip one byte in the middle of the snapshot: checksum must catch it.
        let mut bytes = std::fs::read(durability.snapshot_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(durability.snapshot_path(), &bytes).unwrap();
        match DeltaServer::open(make, ServerConfig::default(), durability) {
            Err(crate::DurabilityError::CorruptSnapshot { .. }) => {}
            other => panic!(
                "expected CorruptSnapshot, got {:?}",
                other.err().map(|e| e.to_string())
            ),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A durable, out-of-core, telemetry-on server surfaces fsync / batch /
    /// segment-fault latency histograms, server spans, and a fully populated
    /// metrics registry.
    #[test]
    fn durable_server_telemetry_collects_spans_histograms_and_metrics() {
        let dir = durable_dir("telemetry");
        let graph = generators::rmat(400, 2800, 0.57, 0.19, 0.19, 13);
        let root = stats::highest_out_degree_vertex(&graph).unwrap();
        let make = move |_: &Graph| SsspProgram { root };
        let config = ServerConfig {
            engine: EngineConfig::default()
                .with_telemetry(true)
                .with_storage_budget(24 << 10)
                .with_storage_segment_bytes(2 << 10),
            ..ServerConfig::default()
        };
        let durability = DurabilityConfig::new(&dir).with_snapshot_every(2);
        let mut server =
            DeltaServer::create_durable(graph.clone(), make, config, durability).unwrap();
        let mut current = graph;
        for round in 0..3u64 {
            let batch = mixed_batch(&current, round + 150, 15);
            let outcome = server.apply(&batch);
            assert!(outcome.converged);
            assert!(
                outcome.wal_fsync_seconds > 0.0,
                "round {round}: durable apply must report its fsync latency"
            );
            current = current.apply_batch(&batch).0;
        }
        let snap = server.telemetry();
        for hist in [
            slfe_metrics::HIST_WAL_FSYNC,
            slfe_metrics::HIST_BATCH_APPLY,
            slfe_metrics::HIST_ITERATION_WALL,
            slfe_metrics::HIST_SEGMENT_FAULT,
        ] {
            let h = snap
                .histogram(hist)
                .unwrap_or_else(|| panic!("histogram {hist} missing"));
            assert!(!h.is_empty(), "histogram {hist} recorded nothing");
            assert!(h.percentile(0.99).unwrap() >= h.percentile(0.5).unwrap());
        }
        assert_eq!(
            snap.histogram(slfe_metrics::HIST_WAL_FSYNC)
                .unwrap()
                .count(),
            3
        );
        for span in ["batch", "wal_append", "snapshot", "iteration", "execute"] {
            assert!(
                snap.spans.iter().any(|s| s.name == span),
                "span {span} never recorded"
            );
        }
        // The trace document round-trips through the real JSON parser.
        let doc = snap.chrome_trace();
        let parsed = slfe_metrics::json::parse(&doc).unwrap();
        assert!(!parsed
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        let reg = server.metrics_registry();
        assert_eq!(reg.get("slfe_wal_fsyncs_total").unwrap().value, 3.0);
        assert_eq!(
            reg.get("slfe_server_batches_applied_total").unwrap().value,
            3.0
        );
        assert!(
            reg.get("slfe_storage_segments_faulted_total")
                .unwrap()
                .value
                > 0.0
        );
        assert!(reg.get("slfe_storage_live_bytes").unwrap().value > 0.0);
        let workers = server.config().cluster.total_workers();
        for w in 0..workers {
            let label = w.to_string();
            let busy = reg
                .get_with("slfe_pool_worker_busy_fraction", &[("worker", &label)])
                .unwrap()
                .value;
            assert!((0.0..=1.0).contains(&busy));
        }
        let text = reg.prometheus_text();
        assert!(text.contains("# TYPE slfe_wal_fsyncs_total counter"));
        assert!(text.contains("slfe_pool_worker_busy_fraction{worker=\"0\"}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// With telemetry off (the default) the hub stays empty while the metrics
    /// registry — which reads always-on counters — remains fully usable.
    #[test]
    fn telemetry_off_server_collects_nothing_but_still_reports_metrics() {
        let graph = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 29);
        let mut server = sssp_server(graph.clone(), 0, ServerConfig::default());
        let outcome = server.apply(&mixed_batch(&graph, 9, 10));
        assert_eq!(outcome.wal_fsync_seconds, 0.0);
        let snap = server.telemetry();
        assert!(snap.spans.is_empty());
        assert!(snap.histograms.is_empty());
        let reg = server.metrics_registry();
        assert_eq!(
            reg.get("slfe_server_batches_applied_total").unwrap().value,
            1.0
        );
        assert!(reg.get("slfe_pool_phases_total").unwrap().value > 0.0);
        assert!(reg.get("slfe_wal_fsyncs_total").is_none(), "not durable");
        assert!(reg.get("slfe_storage_live_bytes").is_none(), "in-memory");
    }

    #[test]
    fn empty_batches_cost_nothing() {
        let graph = generators::rmat(150, 900, 0.57, 0.19, 0.19, 41);
        let mut server = sssp_server(graph, 0, ServerConfig::default());
        let before = server.values().to_vec();
        let outcome = server.apply(&UpdateBatch::new());
        assert!(outcome.effect.is_noop());
        assert_eq!(outcome.work, 0);
        assert_eq!(outcome.iterations, 0);
        assert_eq!(outcome.distribution_messages, 0);
        assert_eq!(server.values(), before.as_slice());
    }
}
