//! Criterion benchmarks backing Table 2 / Figure 2 / Figure 9: the cost of running
//! the redundancy-heavy applications with and without redundancy reduction.

use criterion::{criterion_group, criterion_main, Criterion};
use slfe_bench::{runner, EngineKind};
use slfe_apps::AppKind;
use slfe_cluster::ClusterConfig;
use slfe_graph::{datasets::Dataset, generators};

fn bench_redundancy(c: &mut Criterion) {
    let cluster = ClusterConfig::new(8, 4);

    // Table 2 / Figure 9 workload: SSSP with and without RR on a deep layered graph
    // (the regime where "start late" has redundancy to remove) and on the ST proxy.
    let layered = generators::layered(24, 400, 8, 11);
    let st = Dataset::STwitter.load_scaled(16_000);
    let mut group = c.benchmark_group("fig9_sssp_redundancy");
    group.sample_size(10);
    group.bench_function("layered_with_rr", |b| {
        b.iter(|| runner::run_app(EngineKind::Slfe, AppKind::Sssp, &layered, cluster.clone()))
    });
    group.bench_function("layered_without_rr", |b| {
        b.iter(|| runner::run_app(EngineKind::SlfeNoRr, AppKind::Sssp, &layered, cluster.clone()))
    });
    group.bench_function("st_with_rr", |b| {
        b.iter(|| runner::run_app(EngineKind::Slfe, AppKind::Sssp, &st, cluster.clone()))
    });
    group.finish();

    // Figure 2 workload: PageRank early convergence on the DI proxy.
    let di = Dataset::Delicious.load_scaled(32_000);
    let mut group = c.benchmark_group("fig2_pagerank_finish_early");
    group.sample_size(10);
    group.bench_function("with_rr", |b| {
        b.iter(|| runner::run_app(EngineKind::Slfe, AppKind::PageRank, &di, cluster.clone()))
    });
    group.bench_function("without_rr", |b| {
        b.iter(|| runner::run_app(EngineKind::SlfeNoRr, AppKind::PageRank, &di, cluster.clone()))
    });
    group.finish();
}

criterion_group!(benches, bench_redundancy);
criterion_main!(benches);
