/root/repo/target/debug/deps/experiments-4d4cabfe1cdddd95.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/libexperiments-4d4cabfe1cdddd95.rmeta: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
