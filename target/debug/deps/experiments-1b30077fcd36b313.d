/root/repo/target/debug/deps/experiments-1b30077fcd36b313.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-1b30077fcd36b313: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
