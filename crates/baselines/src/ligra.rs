//! Ligra-style baseline: shared-memory, direction-optimizing frontier engine.
//!
//! Ligra runs on a single machine and switches between sparse (push) and dense
//! (pull) frontier traversal — the same direction optimisation Gemini adopted — but
//! performs no redundancy reduction. It is modelled as the SLFE engine without RR,
//! confined to a single node with all workers, which is how the paper frames the
//! single-machine comparison of Figure 6.

use crate::{BaselineEngine, BaselineKind};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::Graph;

/// The Ligra-like engine.
#[derive(Debug)]
pub struct LigraEngine<'g> {
    inner: SlfeEngine<'g>,
}

impl<'g> LigraEngine<'g> {
    /// Build a Ligra-like engine with `workers` shared-memory threads.
    pub fn build(graph: &'g Graph, workers: usize) -> Self {
        let cluster = ClusterConfig::new(1, workers.max(1));
        Self {
            inner: SlfeEngine::build(graph, cluster, EngineConfig::without_rr()),
        }
    }

    /// Access the wrapped engine.
    pub fn engine(&self) -> &SlfeEngine<'g> {
        &self.inner
    }
}

impl BaselineEngine for LigraEngine<'_> {
    fn kind(&self) -> BaselineKind {
        BaselineKind::Ligra
    }

    fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        let mut result = self.inner.run(program);
        result.stats.engine = self.kind().name().to_string();
        result.stats.phases.preprocessing_seconds = 0.0;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_apps::cc;
    use slfe_graph::datasets::Dataset;

    #[test]
    fn runs_on_a_single_node_and_sends_no_messages() {
        let g = cc::symmetrize(&Dataset::Pokec.load_scaled(64_000));
        let engine = LigraEngine::build(&g, 4);
        let result = engine.run(&cc::CcProgram::for_graph(&g));
        assert_eq!(result.stats.num_nodes, 1);
        assert_eq!(result.stats.totals.messages_sent, 0);
        assert_eq!(result.stats.engine, "ligra");
        assert_eq!(result.values, cc::reference(&g));
    }

    #[test]
    fn agrees_with_slfe_and_stays_in_the_same_work_envelope() {
        // On laptop-scale proxies the CC diameter is tiny, so the redundancy that
        // "start late" removes is small; the check here is that Ligra (no RR)
        // produces identical labels and does not do *less* work than SLFE by more
        // than a small margin (the RR flush/extra-iteration overhead bound).
        let g = cc::symmetrize(&Dataset::LiveJournal.load_scaled(96_000));
        let ligra = LigraEngine::build(&g, 4);
        let slfe = SlfeEngine::build(&g, ClusterConfig::new(1, 4), EngineConfig::default());
        let a = ligra.run(&cc::CcProgram::default());
        let b = slfe.run(&cc::CcProgram::default());
        assert_eq!(a.values, b.values);
        assert!(
            (b.stats.totals.work() as f64) < 1.5 * a.stats.totals.work() as f64,
            "SLFE work {} should stay within 1.5x of Ligra work {}",
            b.stats.totals.work(),
            a.stats.totals.work()
        );
    }
}
