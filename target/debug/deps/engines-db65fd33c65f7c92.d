/root/repo/target/debug/deps/engines-db65fd33c65f7c92.d: crates/bench/benches/engines.rs Cargo.toml

/root/repo/target/debug/deps/libengines-db65fd33c65f7c92.rmeta: crates/bench/benches/engines.rs Cargo.toml

crates/bench/benches/engines.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
