//! Old↔new vertex-id bijections ([`IdRemap`]) — the physical-layout layer.
//!
//! A graph's *external* ids are the ones clients speak: stable, dense, only
//! ever growing. Its *physical* ids are whatever order the in-memory CSR/CSC
//! (and the on-disk segments derived from them) happen to store vertices in.
//! The seed layout makes the two coincide; a **remap** renames physical ids —
//! to cluster hubs into few hot segments, or to migrate vertices between
//! partitions — without clients ever noticing, because every API boundary
//! translates through the graph's cumulative [`IdRemap`].
//!
//! The representation is a dense forward permutation (`old → new`) plus its
//! inverse, with an [`IdRemap::Identity`] fast path that costs nothing to
//! store or apply. Ids at or beyond the permutation's length map to
//! themselves, which is what lets a grown graph (batches append vertices)
//! keep its remap unchanged: appended ids are identity by construction.
//!
//! The invariant the rest of the workspace leans on: remapping is
//! **value-transparent**. Adjacency lists stay sorted by the *external* id of
//! the neighbor (a remap renames list entries without reordering them), so
//! every order-sensitive float fold — the pull gathers of arithmetic programs
//! — visits contributions in the same order as the unremapped run and
//! produces bit-identical values.

use crate::bitset::Bitset;
use crate::types::VertexId;

/// Which physical reorder the layout policy applies within each partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderPolicy {
    /// Keep the current physical order (no reorder remap is generated).
    #[default]
    None,
    /// Order each partition's vertices by descending out+in degree, ties by
    /// external id ascending — hubs cluster at the front of each partition's
    /// contiguous physical range, so the hot working set spans few segments.
    DegreeDescending,
}

/// A bijection between two vertex-id spaces, `old → new`.
///
/// Composable across versions ([`IdRemap::then`]) and invertible
/// ([`IdRemap::inverted`]); ids `>= len()` map to themselves in both
/// directions, so the bijection covers the whole (growing) id space.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum IdRemap {
    /// Every id maps to itself. Costs nothing: no tables, no indirection.
    #[default]
    Identity,
    /// An explicit permutation of `0..forward.len()`.
    Permutation {
        /// `forward[old] = new`.
        forward: Vec<VertexId>,
        /// `inverse[new] = old`; always consistent with `forward`.
        inverse: Vec<VertexId>,
    },
}

impl IdRemap {
    /// The identity remap.
    pub fn identity() -> Self {
        IdRemap::Identity
    }

    /// Build a remap from its forward table (`forward[old] = new`).
    ///
    /// Panics unless `forward` is a permutation of `0..forward.len()`.
    /// An identity table collapses to the [`IdRemap::Identity`] fast path, so
    /// equality and `is_identity` never depend on how a remap was built.
    pub fn from_forward(forward: Vec<VertexId>) -> Self {
        let n = forward.len();
        let mut inverse = vec![VertexId::MAX; n];
        let mut is_identity = true;
        for (old, &new) in forward.iter().enumerate() {
            assert!(
                (new as usize) < n,
                "forward[{old}] = {new} out of range for {n} ids"
            );
            assert!(
                inverse[new as usize] == VertexId::MAX,
                "forward maps both {} and {old} to {new}",
                inverse[new as usize]
            );
            inverse[new as usize] = old as VertexId;
            is_identity &= new as usize == old;
        }
        if is_identity {
            IdRemap::Identity
        } else {
            IdRemap::Permutation { forward, inverse }
        }
    }

    /// `true` for the identity fast path.
    pub fn is_identity(&self) -> bool {
        matches!(self, IdRemap::Identity)
    }

    /// Length of the explicit permutation (0 for identity). Ids at or beyond
    /// this map to themselves.
    pub fn len(&self) -> usize {
        match self {
            IdRemap::Identity => 0,
            IdRemap::Permutation { forward, .. } => forward.len(),
        }
    }

    /// `true` when no id is explicitly mapped (identity).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map an old id forward to its new id.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        match self {
            IdRemap::Identity => old,
            IdRemap::Permutation { forward, .. } => {
                forward.get(old as usize).copied().unwrap_or(old)
            }
        }
    }

    /// Map a new id back to its old id.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        match self {
            IdRemap::Identity => new,
            IdRemap::Permutation { inverse, .. } => {
                inverse.get(new as usize).copied().unwrap_or(new)
            }
        }
    }

    /// The inverse bijection (`new → old`).
    pub fn inverted(&self) -> Self {
        match self {
            IdRemap::Identity => IdRemap::Identity,
            IdRemap::Permutation { forward, inverse } => IdRemap::Permutation {
                forward: inverse.clone(),
                inverse: forward.clone(),
            },
        }
    }

    /// Compose two remaps: apply `self`, then `next`. The result maps
    /// straight from `self`'s old space to `next`'s new space, so a chain of
    /// per-version remaps collapses into one table.
    pub fn then(&self, next: &IdRemap) -> Self {
        if self.is_identity() {
            return next.clone();
        }
        if next.is_identity() {
            return self.clone();
        }
        let n = self.len().max(next.len());
        let forward = (0..n as VertexId)
            .map(|old| next.to_new(self.to_new(old)))
            .collect();
        Self::from_forward(forward)
    }

    /// Permute a per-vertex value array: `new[to_new(i)] = old[i]`. Entries
    /// at or beyond the permutation's length keep their index (identity
    /// tail), so the slice may be longer than the remap.
    pub fn permuted_values<T: Clone>(&self, old: &[T]) -> Vec<T> {
        match self {
            IdRemap::Identity => old.to_vec(),
            IdRemap::Permutation { forward, .. } => {
                let mut new = old.to_vec();
                for (i, &p) in forward.iter().enumerate() {
                    if i < old.len() && (p as usize) < new.len() {
                        new[p as usize] = old[i].clone();
                    }
                }
                new
            }
        }
    }

    /// Permute a [`Bitset`] frontier: bit `to_new(i)` of the result equals
    /// bit `i` of the input. Preserves popcount and (translated) membership.
    pub fn permuted_bitset(&self, old: &Bitset) -> Bitset {
        match self {
            IdRemap::Identity => old.clone(),
            IdRemap::Permutation { .. } => {
                let mut new = Bitset::new(old.len());
                for i in old.iter_ones() {
                    new.set(self.to_new(i as VertexId) as usize);
                }
                new
            }
        }
    }

    /// Rewrite a list of vertex ids in place through the forward map.
    pub fn map_ids(&self, ids: &mut [VertexId]) {
        if let IdRemap::Permutation { .. } = self {
            for id in ids {
                *id = self.to_new(*id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    /// A seeded random permutation of `0..n` (Fisher–Yates over SplitMix64).
    fn random_permutation(n: usize, seed: u64) -> Vec<VertexId> {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut perm: Vec<VertexId> = (0..n as VertexId).collect();
        for i in (1..n).rev() {
            let j = rng.range_u32(0, i as u32 + 1) as usize;
            perm.swap(i, j);
        }
        perm
    }

    #[test]
    fn identity_round_trips_and_costs_nothing() {
        let id = IdRemap::identity();
        assert!(id.is_identity());
        assert_eq!(id.len(), 0);
        for v in [0u32, 5, 1000, VertexId::MAX - 1] {
            assert_eq!(id.to_new(v), v);
            assert_eq!(id.to_old(v), v);
        }
        assert_eq!(id.inverted(), id);
        assert_eq!(id.then(&id), id);
        let values = vec![1.0f32, 2.0, 3.0];
        assert_eq!(id.permuted_values(&values), values);
    }

    #[test]
    fn identity_table_collapses_to_the_fast_path() {
        let r = IdRemap::from_forward((0..64).collect());
        assert!(r.is_identity());
        assert_eq!(r, IdRemap::Identity);
    }

    #[test]
    fn forward_and_inverse_round_trip() {
        for seed in 0..10u64 {
            let n = 97;
            let r = IdRemap::from_forward(random_permutation(n, seed));
            for v in 0..n as VertexId {
                assert_eq!(r.to_old(r.to_new(v)), v);
                assert_eq!(r.to_new(r.to_old(v)), v);
            }
            // Beyond the permutation both directions are identity.
            assert_eq!(r.to_new(n as VertexId + 7), n as VertexId + 7);
            assert_eq!(r.to_old(n as VertexId + 7), n as VertexId + 7);
            // Inversion swaps the directions.
            let inv = r.inverted();
            for v in 0..n as VertexId {
                assert_eq!(inv.to_new(v), r.to_old(v));
                assert_eq!(inv.to_old(v), r.to_new(v));
            }
            // A permutation composed with its inverse is the identity.
            assert!(r.then(&inv).is_identity());
            assert!(inv.then(&r).is_identity());
        }
    }

    #[test]
    fn composition_across_three_versions_equals_the_direct_map() {
        for seed in 0..8u64 {
            let n = 120;
            let a = IdRemap::from_forward(random_permutation(n, seed * 3 + 1));
            let b = IdRemap::from_forward(random_permutation(n, seed * 3 + 2));
            let c = IdRemap::from_forward(random_permutation(n, seed * 3 + 3));
            let chained = a.then(&b).then(&c);
            let chained_right = a.then(&b.then(&c));
            assert_eq!(chained, chained_right, "composition must associate");
            for v in 0..n as VertexId {
                let direct = c.to_new(b.to_new(a.to_new(v)));
                assert_eq!(chained.to_new(v), direct);
                assert_eq!(chained.to_old(direct), v);
            }
        }
    }

    #[test]
    fn composition_of_different_lengths_extends_with_identity() {
        // A short remap then a longer one: the short one's tail is identity.
        let short = IdRemap::from_forward(vec![1, 0]);
        let long = IdRemap::from_forward(vec![0, 2, 1, 3]);
        let composed = short.then(&long);
        assert_eq!(composed.to_new(0), 2); // 0 -> 1 -> 2
        assert_eq!(composed.to_new(1), 0); // 1 -> 0 -> 0
        assert_eq!(composed.to_new(2), 1); // 2 -> 2 -> 1
        assert_eq!(composed.to_new(3), 3);
        assert_eq!(composed.to_new(9), 9);
    }

    #[test]
    fn permuted_values_place_old_entries_at_new_indices() {
        let r = IdRemap::from_forward(vec![2, 0, 1]);
        let old = vec![10, 20, 30];
        let new = r.permuted_values(&old);
        assert_eq!(new, vec![20, 30, 10]); // new[2]=old[0], new[0]=old[1], new[1]=old[2]
                                           // Longer slices keep their identity tail.
        let old = vec![10, 20, 30, 40, 50];
        assert_eq!(r.permuted_values(&old), vec![20, 30, 10, 40, 50]);
    }

    #[test]
    fn bitset_permutation_preserves_popcount_and_membership() {
        for seed in 0..8u64 {
            let n = 200;
            let r = IdRemap::from_forward(random_permutation(n, seed + 40));
            let mut rng = SplitMix64::seed_from_u64(seed);
            let old = Bitset::from_fn(n, |_| rng.next_f64() < 0.3);
            let new = r.permuted_bitset(&old);
            assert_eq!(new.count_ones(), old.count_ones());
            for i in 0..n {
                assert_eq!(
                    new.get(r.to_new(i as VertexId) as usize),
                    old.get(i),
                    "membership of {i} must survive translation"
                );
            }
        }
    }

    #[test]
    fn map_ids_rewrites_in_place() {
        let r = IdRemap::from_forward(vec![1, 2, 0]);
        let mut ids = vec![0, 1, 2, 7];
        r.map_ids(&mut ids);
        assert_eq!(ids, vec![1, 2, 0, 7]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_forward_entry_panics() {
        let _ = IdRemap::from_forward(vec![0, 5]);
    }

    #[test]
    #[should_panic(expected = "maps both")]
    fn duplicate_forward_entry_panics() {
        let _ = IdRemap::from_forward(vec![1, 1]);
    }
}
