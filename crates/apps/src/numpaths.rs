//! NumPaths: the number of distinct paths from a root vertex, on a DAG.
//!
//! `paths(root) = 1` and `paths(v) = Σ_{u -> v} paths(u)` — a pure `sum()`
//! aggregation (Table 1). On a DAG the synchronous iteration stabilises once every
//! upstream vertex has stabilised, after at most `depth` iterations. The application
//! is only meaningful on acyclic graphs; on cyclic inputs the count diverges, so the
//! `run` helper checks nothing but the documentation (and the reference) assume a
//! DAG such as [`slfe_graph::generators::layered`] or a tree.
//!
//! **Redundancy-reduction caveat.** NumPaths is *source-seeded*: a vertex far from
//! the root legitimately sits at 0 for many iterations before its count arrives.
//! The paper's "finish early" rule declares a vertex early-converged after it has
//! been stable for `last_iter` iterations, and because the guidance's propagation
//! level can be shorter than the root's distance (other in-degree-0 vertices also
//! act as guidance roots), such a vertex can be frozen at 0. This is inherent to
//! the heuristic, not to this implementation — run NumPaths with
//! [`slfe_core::EngineConfig::without_rr`] when exact counts matter, as the
//! benchmark harness does.

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};

/// NumPaths as a [`GraphProgram`]; the vertex property is the path count (f32, so
/// counts are exact up to 2^24).
#[derive(Debug, Clone, Copy)]
pub struct NumPathsProgram {
    /// The path-counting source.
    pub root: VertexId,
}

impl GraphProgram for NumPathsProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::Arithmetic
    }

    fn name(&self) -> &'static str {
        "numpaths"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
        if v == self.root {
            1.0
        } else {
            0.0
        }
    }

    fn initial_active(&self, _v: VertexId, _degrees: &Degrees) -> bool {
        true
    }

    fn identity(&self) -> f32 {
        0.0
    }

    fn edge_contribution(
        &self,
        _src: VertexId,
        src_value: f32,
        _weight: EdgeWeight,
    ) -> Option<f32> {
        (src_value > 0.0).then_some(src_value)
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a + b
    }

    fn apply(&self, dst: VertexId, _old: f32, gathered: f32) -> f32 {
        // The root's count is fixed at 1 regardless of incoming edges.
        if dst == self.root {
            1.0
        } else {
            gathered
        }
    }

    fn changed(&self, old: f32, new: f32, tolerance: f64) -> bool {
        (old - new).abs() as f64 > tolerance
    }
}

/// Run NumPaths from `root` on a DAG.
pub fn run(engine: &SlfeEngine<'_>, root: VertexId) -> ProgramResult<f32> {
    engine.run(&NumPathsProgram { root })
}

/// Sequential reference: topological-order accumulation of path counts.
/// Panics if the graph has a cycle reachable from anywhere (Kahn's algorithm fails).
pub fn reference(graph: &Graph, root: VertexId) -> Vec<f32> {
    let n = graph.num_vertices();
    let mut in_degree: Vec<usize> = graph.vertices().map(|v| graph.in_degree(v)).collect();
    let mut queue: Vec<VertexId> = graph
        .vertices()
        .filter(|&v| in_degree[v as usize] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &u in graph.out_neighbors(v) {
            in_degree[u as usize] -= 1;
            if in_degree[u as usize] == 0 {
                queue.push(u);
            }
        }
    }
    assert_eq!(order.len(), n, "NumPaths reference requires a DAG");

    let mut paths = vec![0.0f32; n];
    paths[root as usize] = 1.0;
    for &v in &order {
        if paths[v as usize] == 0.0 {
            continue;
        }
        for &u in graph.out_neighbors(v) {
            if u != root {
                paths[u as usize] += paths[v as usize];
            }
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{generators, GraphBuilder};

    #[test]
    fn diamond_has_two_paths_to_the_sink() {
        let mut b = GraphBuilder::new();
        b.extend_unweighted([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, 0);
        assert_eq!(result.values, vec![1.0, 1.0, 1.0, 2.0]);
        assert_eq!(reference(&g, 0), result.values);
    }

    #[test]
    fn binary_tree_has_exactly_one_path_to_every_node() {
        let g = generators::binary_tree(5);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = run(&engine, 0);
        assert!(result.values.iter().all(|&c| c == 1.0));
    }

    #[test]
    fn matches_reference_on_a_layered_dag_without_rr() {
        let g = generators::layered(8, 20, 3, 77);
        let expected = reference(&g, 0);
        let engine = SlfeEngine::build(
            &g,
            ClusterConfig::new(4, 2),
            EngineConfig::without_rr().with_tolerance(0.0),
        );
        let result = run(&engine, 0);
        assert_eq!(result.values, expected);
    }

    #[test]
    fn finish_early_heuristic_can_only_underestimate_source_seeded_counts() {
        // With RR the "finish early" rule may freeze a distant vertex at an
        // intermediate (lower) count — the caveat documented in the module docs.
        // It must never overestimate, and near-root vertices stay exact.
        let g = generators::layered(8, 20, 3, 77);
        let expected = reference(&g, 0);
        let engine = SlfeEngine::build(
            &g,
            ClusterConfig::new(4, 2),
            EngineConfig::default().with_tolerance(0.0),
        );
        let result = run(&engine, 0);
        for v in g.vertices() {
            assert!(
                result.values[v as usize] <= expected[v as usize] + 1e-6,
                "vertex {v}: RR count {} exceeds exact count {}",
                result.values[v as usize],
                expected[v as usize]
            );
        }
        // Layer 0 and layer 1 counts are reached in the very first iteration and
        // therefore cannot be frozen early.
        for v in 0..40u32 {
            assert_eq!(
                result.values[v as usize], expected[v as usize],
                "vertex {v}"
            );
        }
    }

    #[test]
    fn vertices_not_reachable_from_the_root_count_zero() {
        let mut b = GraphBuilder::new();
        b.extend_unweighted([(0, 1), (2, 3)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, 0);
        assert_eq!(result.values, vec![1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "requires a DAG")]
    fn reference_rejects_cycles() {
        let g = generators::cycle(4);
        let _ = reference(&g, 0);
    }
}
