//! Wall-clock benchmark backing Figure 8: the cost of generating the
//! redundancy-reduction guidance (Algorithm 1) — sequentially and on the parallel
//! frontier pass — relative to one SSSP execution.

use slfe_bench::timing::{report, time_best_of};
use slfe_cluster::ClusterConfig;
use slfe_core::{EngineConfig, RrGuidance, SlfeEngine};
use slfe_graph::datasets::Dataset;

fn main() {
    let runs = 5;
    println!("== fig8_rrg_overhead ==");
    for dataset in [Dataset::Pokec, Dataset::LiveJournal, Dataset::Friendster] {
        let graph = dataset.load_scaled(16_000);
        let ab = dataset.abbreviation();
        report(
            &format!("rrg_generation_{ab}"),
            time_best_of(runs, || RrGuidance::generate(&graph)),
        );
        report(
            &format!("rrg_generation_parallel4_{ab}"),
            time_best_of(runs, || RrGuidance::generate_parallel(&graph, 4)),
        );
        let engine = SlfeEngine::build(&graph, ClusterConfig::new(8, 4), EngineConfig::default());
        let root = slfe_graph::stats::highest_out_degree_vertex(&graph).unwrap_or(0);
        report(
            &format!("sssp_execution_{ab}"),
            time_best_of(runs, || slfe_apps::sssp::run(&engine, root)),
        );
    }
}
