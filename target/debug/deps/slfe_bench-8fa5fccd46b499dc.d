/root/repo/target/debug/deps/slfe_bench-8fa5fccd46b499dc.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libslfe_bench-8fa5fccd46b499dc.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libslfe_bench-8fa5fccd46b499dc.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/timing.rs:
