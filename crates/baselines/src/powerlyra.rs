//! PowerLyra-style baseline: hybrid-cut GAS.
//!
//! PowerLyra differentiates high-degree vertices (treated like PowerGraph, with
//! replicas on many nodes) from low-degree vertices (kept local, edge-cut style), so
//! its communication volume sits between PowerGraph and Gemini — which is exactly
//! where Table 5 places its runtime.

use crate::gas::{GasConfig, GasEngine, Placement, ReplicationModel};
use crate::{BaselineEngine, BaselineKind};
use slfe_cluster::ClusterConfig;
use slfe_core::{GraphProgram, ProgramResult};
use slfe_graph::Graph;

/// Default multiple of the average degree above which a vertex is "high degree".
pub const HIGH_DEGREE_FACTOR: f64 = 4.0;

/// The PowerLyra-like engine.
#[derive(Debug)]
pub struct PowerLyraEngine<'g> {
    inner: GasEngine<'g>,
}

impl<'g> PowerLyraEngine<'g> {
    /// Build a PowerLyra-like engine over `graph`.
    pub fn build(graph: &'g Graph, cluster: ClusterConfig) -> Self {
        let threshold = (graph.average_degree() * HIGH_DEGREE_FACTOR)
            .ceil()
            .max(1.0) as usize;
        let config = GasConfig {
            placement: Placement::Hash,
            replication: ReplicationModel::HybridCut {
                high_degree_threshold: threshold,
            },
            frontier: true,
            per_vertex_overhead: 3,
            // Same GAS framework family as PowerGraph but with the hybrid-cut
            // optimisations; calibrated slightly cheaper per edge (see powergraph.rs
            // and DESIGN.md for the calibration rationale).
            seconds_per_work_unit: 60.0e-9,
            ..GasConfig::base(BaselineKind::PowerLyra.name())
        };
        Self {
            inner: GasEngine::build(graph, cluster, config),
        }
    }

    /// Access the underlying GAS engine.
    pub fn engine(&self) -> &GasEngine<'g> {
        &self.inner
    }
}

impl BaselineEngine for PowerLyraEngine<'_> {
    fn kind(&self) -> BaselineKind {
        BaselineKind::PowerLyra
    }

    fn run<P: GraphProgram>(&self, program: &P) -> ProgramResult<P::Value> {
        self.inner.run(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::powergraph::PowerGraphEngine;
    use slfe_apps::sssp;
    use slfe_graph::datasets::Dataset;

    #[test]
    fn sssp_matches_reference() {
        let g = Dataset::STwitter.load_scaled(32_000);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let engine = PowerLyraEngine::build(&g, ClusterConfig::new(8, 2));
        let result = engine.run(&sssp::SsspProgram { root });
        let expected = sssp::reference(&g, root);
        for (&x, &y) in result.values.iter().zip(&expected) {
            assert!((x.is_infinite() && y.is_infinite()) || (x - y).abs() < 1e-3);
        }
        assert_eq!(result.stats.engine, "powerlyra");
    }

    #[test]
    fn communicates_less_than_powergraph() {
        // The paper's Table 5 consistently ranks PowerLyra faster than PowerGraph;
        // in this model the difference comes from the hybrid cut's message savings.
        let g = Dataset::Orkut.load_scaled(64_000);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let pl = PowerLyraEngine::build(&g, ClusterConfig::new(8, 2));
        let pg = PowerGraphEngine::build(&g, ClusterConfig::new(8, 2));
        let a = pl.run(&sssp::SsspProgram { root });
        let b = pg.run(&sssp::SsspProgram { root });
        assert!(a.stats.totals.messages_sent < b.stats.totals.messages_sent);
        assert!(a.stats.phases.execution_seconds <= b.stats.phases.execution_seconds);
    }
}
