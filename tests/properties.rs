//! Property-based tests over the core data structures and the Theorem-1 invariant
//! (redundancy reduction never changes an application's fixpoint).

use proptest::prelude::*;
use slfe::prelude::*;

/// Strategy: a random weighted edge list over up to `max_v` vertices.
fn edge_list(max_v: u32, max_e: usize) -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    prop::collection::vec(
        (0..max_v, 0..max_v, 1.0f32..10.0).prop_map(|(s, d, w)| (s, d, w)),
        0..max_e,
    )
}

fn build(edges: &[(u32, u32, f32)], min_vertices: usize) -> slfe::graph::Graph {
    let mut b = GraphBuilder::new().with_vertices(min_vertices).drop_self_loops(true).deduplicate(true);
    for &(s, d, w) in edges {
        b.add_edge(s, d, w);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// CSR/CSC consistency: the two adjacency views always describe the same edges.
    #[test]
    fn graph_csr_and_csc_stay_consistent(edges in edge_list(64, 300)) {
        let g = build(&edges, 1);
        prop_assert!(g.validate().is_ok());
        let out_sum: usize = g.vertices().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.vertices().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.num_edges());
        prop_assert_eq!(in_sum, g.num_edges());
    }

    /// Every partitioner assigns every vertex exactly once, for any part count.
    #[test]
    fn partitioners_always_cover_the_graph(edges in edge_list(96, 400), parts in 1usize..12) {
        let g = build(&edges, 4);
        for partitioning in [
            ChunkingPartitioner::default().partition(&g, parts),
            slfe::partition::HashPartitioner::new().partition(&g, parts),
        ] {
            prop_assert!(partitioning.validate(&g).is_ok());
            let total: usize = partitioning.vertex_counts().iter().sum();
            prop_assert_eq!(total, g.num_vertices());
        }
    }

    /// The RR guidance never exceeds the vertex count in level and never blocks
    /// unreached vertices (their level stays 0).
    #[test]
    fn rr_guidance_levels_are_bounded(edges in edge_list(64, 250)) {
        let g = build(&edges, 2);
        let rrg = slfe::core::RrGuidance::generate(&g);
        prop_assert_eq!(rrg.num_vertices(), g.num_vertices());
        prop_assert!(rrg.max_level() as usize <= g.num_vertices());
        for v in g.vertices() {
            prop_assert!(rrg.last_iter(v) <= rrg.max_level());
        }
        prop_assert!(rrg.generation_work() <= g.num_edges() as u64);
    }

    /// Theorem 1 (empirical): SSSP with redundancy reduction converges to the same
    /// distances as the unoptimised engine and as Dijkstra.
    #[test]
    fn sssp_rr_matches_dijkstra_on_random_graphs(edges in edge_list(48, 220), root in 0u32..48) {
        let g = build(&edges, 48);
        let oracle = slfe::apps::sssp::reference(&g, root);
        for config in [EngineConfig::default(), EngineConfig::without_rr()] {
            let engine = SlfeEngine::build(&g, ClusterConfig::new(3, 2), config);
            let result = slfe::apps::sssp::run(&engine, root);
            for v in 0..g.num_vertices() {
                let (a, b) = (result.values[v], oracle[v]);
                prop_assert!(
                    (a.is_infinite() && b.is_infinite()) || (a - b).abs() < 1e-3,
                    "vertex {} with rr={:?}: {} vs {}", v, engine.config().redundancy, a, b
                );
            }
        }
    }

    /// Connected components with RR equals union-find on arbitrary symmetrised graphs.
    #[test]
    fn cc_rr_matches_union_find_on_random_graphs(edges in edge_list(40, 150)) {
        let g = slfe::apps::cc::symmetrize(&build(&edges, 40));
        let oracle = slfe::apps::cc::reference(&g);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = slfe::apps::cc::run(&engine);
        prop_assert_eq!(result.values, oracle);
    }

    /// The mini-chunk scheduler conserves work, and the stealing (greedy) schedule
    /// obeys the classic list-scheduling bound: makespan <= mean load + max chunk.
    #[test]
    fn work_stealing_conserves_work_and_bounds_the_makespan(costs in prop::collection::vec(0u64..1000, 1..200), workers in 1usize..9) {
        let scheduler = slfe::cluster::ChunkScheduler::new(workers, 1);
        let static_outcome =
            scheduler.simulate(costs.len(), slfe::cluster::SchedulingPolicy::StaticBlocks, |c| costs[c]);
        let stealing_outcome =
            scheduler.simulate(costs.len(), slfe::cluster::SchedulingPolicy::WorkStealing, |c| costs[c]);
        prop_assert_eq!(static_outcome.total_work, stealing_outcome.total_work);
        let total = stealing_outcome.total_work;
        let max_chunk = costs.iter().copied().max().unwrap_or(0);
        let bound = total / workers as u64 + max_chunk;
        prop_assert!(
            stealing_outcome.makespan() <= bound,
            "makespan {} exceeds list-scheduling bound {}", stealing_outcome.makespan(), bound
        );
    }

    /// PageRank rank mass stays bounded and non-negative on arbitrary graphs.
    #[test]
    fn pagerank_ranks_are_non_negative_and_bounded(edges in edge_list(40, 200)) {
        let g = build(&edges, 8);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 2), EngineConfig::default());
        let result = slfe::apps::pagerank::run(&engine);
        let ranks = slfe::apps::pagerank::ranks(&g, &result.values);
        let total: f32 = ranks.iter().sum();
        prop_assert!(ranks.iter().all(|r| *r >= 0.0 && r.is_finite()));
        // Sinks leak rank mass, so the total is at most ~1 (plus float slack).
        prop_assert!(total <= 1.05);
    }
}
