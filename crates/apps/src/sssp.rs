//! Single Source Shortest Path (paper Algorithm 4).
//!
//! The vertex property is the shortest known distance from the root; the edge
//! contribution is `dist[src] + weight`; the aggregation is `min()`. Unreached
//! vertices hold `f32::INFINITY`. SSSP is the canonical "start late" beneficiary:
//! a vertex keeps receiving better intermediate distances until its last
//! propagation level, and every update before that level is redundant (§2.2).

use slfe_core::{AggregationKind, GraphProgram, ProgramResult, SlfeEngine};
use slfe_graph::{Degrees, EdgeWeight, Graph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// SSSP as a [`GraphProgram`].
#[derive(Debug, Clone, Copy)]
pub struct SsspProgram {
    /// The source vertex.
    pub root: VertexId,
}

impl GraphProgram for SsspProgram {
    type Value = f32;

    fn aggregation(&self) -> AggregationKind {
        AggregationKind::MinMax
    }

    fn name(&self) -> &'static str {
        "sssp"
    }

    fn initial_value(&self, v: VertexId, _degrees: &Degrees) -> f32 {
        if v == self.root {
            0.0
        } else {
            f32::INFINITY
        }
    }

    fn initial_active(&self, v: VertexId, _degrees: &Degrees) -> bool {
        v == self.root
    }

    fn identity(&self) -> f32 {
        f32::INFINITY
    }

    fn edge_contribution(&self, _src: VertexId, src_value: f32, weight: EdgeWeight) -> Option<f32> {
        src_value.is_finite().then_some(src_value + weight)
    }

    fn combine(&self, a: f32, b: f32) -> f32 {
        a.min(b)
    }

    fn apply(&self, _dst: VertexId, old: f32, gathered: f32) -> f32 {
        old.min(gathered)
    }

    /// `dist + w` strictly increases for the positive weights every loader and
    /// generator in this workspace produces, so warm-start invalidation may
    /// prune at still-derivable vertices. Feed zero-weight edges and this must
    /// be turned off.
    fn strictly_monotonic(&self) -> bool {
        true
    }
}

/// Run SSSP from `root` on an already-built engine. The returned
/// [`ProgramResult::values`] are the shortest distances (`INFINITY` = unreachable).
pub fn run(engine: &SlfeEngine<'_>, root: VertexId) -> ProgramResult<f32> {
    engine.run(&SsspProgram { root })
}

/// Sequential Dijkstra reference used as the correctness oracle.
pub fn reference(graph: &Graph, root: VertexId) -> Vec<f32> {
    let mut dist = vec![f32::INFINITY; graph.num_vertices()];
    if graph.num_vertices() == 0 {
        return dist;
    }
    dist[root as usize] = 0.0;
    let mut heap: BinaryHeap<Reverse<(OrderedF32, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((OrderedF32(0.0), root)));
    while let Some(Reverse((OrderedF32(d), v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for (u, w) in graph.out_edges(v) {
            let candidate = d + w;
            if candidate < dist[u as usize] {
                dist[u as usize] = candidate;
                heap.push(Reverse((OrderedF32(candidate), u)));
            }
        }
    }
    dist
}

/// Total-order wrapper so finite `f32` distances can live in a binary heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrderedF32(pub f32);

impl Eq for OrderedF32 {}

impl PartialOrd for OrderedF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Compare two distance vectors treating infinities as equal and finite values with
/// a tolerance; used by the traversal applications' test suites.
#[cfg(test)]
pub(crate) fn distances_match(a: &[f32], b: &[f32], tolerance: f32) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            (x.is_infinite() && y.is_infinite() && x.signum() == y.signum())
                || (x - y).abs() <= tolerance
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_cluster::ClusterConfig;
    use slfe_core::EngineConfig;
    use slfe_graph::{datasets::Dataset, generators};

    fn engine_pair(graph: &Graph) -> (SlfeEngine<'_>, SlfeEngine<'_>) {
        (
            SlfeEngine::build(graph, ClusterConfig::new(4, 2), EngineConfig::default()),
            SlfeEngine::build(graph, ClusterConfig::new(4, 2), EngineConfig::without_rr()),
        )
    }

    #[test]
    fn matches_dijkstra_on_an_rmat_proxy() {
        let g = Dataset::Pokec.load_scaled(16_000);
        let root = slfe_graph::stats::highest_out_degree_vertex(&g).unwrap();
        let expected = reference(&g, root);
        let (with_rr, without_rr) = engine_pair(&g);
        let a = run(&with_rr, root);
        let b = run(&without_rr, root);
        assert!(
            distances_match(&a.values, &expected, 1e-3),
            "RR run diverges from Dijkstra"
        );
        assert!(
            distances_match(&b.values, &expected, 1e-3),
            "non-RR run diverges from Dijkstra"
        );
    }

    #[test]
    fn matches_dijkstra_on_a_layered_dag() {
        let g = generators::layered(10, 40, 5, 3);
        let expected = reference(&g, 0);
        let (with_rr, _) = engine_pair(&g);
        let result = run(&with_rr, 0);
        assert!(distances_match(&result.values, &expected, 1e-3));
        assert!(result.converged);
    }

    #[test]
    fn unreachable_vertices_stay_infinite() {
        // Two disjoint paths; root on the first one.
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (1, 2), (3, 4)]);
        let g = b.build();
        let engine = SlfeEngine::build(&g, ClusterConfig::single_node(), EngineConfig::default());
        let result = run(&engine, 0);
        assert_eq!(result.values[0], 0.0);
        assert!(result.values[3].is_infinite());
        assert!(result.values[4].is_infinite());
    }

    #[test]
    fn rr_reduces_updates_per_vertex_on_a_deep_graph() {
        let g = generators::layered(14, 50, 6, 9);
        let (with_rr, without_rr) = engine_pair(&g);
        let a = run(&with_rr, 0);
        let b = run(&without_rr, 0);
        assert!(
            a.stats.updates_per_vertex() <= b.stats.updates_per_vertex() + 1e-9,
            "RR should not increase updates/vertex ({} vs {})",
            a.stats.updates_per_vertex(),
            b.stats.updates_per_vertex()
        );
    }

    #[test]
    fn root_distance_is_zero_and_stats_name_is_sssp() {
        let g = generators::rmat(100, 600, 0.57, 0.19, 0.19, 11);
        let engine = SlfeEngine::build(&g, ClusterConfig::new(2, 1), EngineConfig::default());
        let result = run(&engine, 5);
        assert_eq!(result.values[5], 0.0);
        assert_eq!(result.stats.application, "sssp");
    }

    #[test]
    fn ordered_f32_sorts_like_floats() {
        let mut v = vec![OrderedF32(3.0), OrderedF32(1.0), OrderedF32(2.5)];
        v.sort();
        assert_eq!(v, vec![OrderedF32(1.0), OrderedF32(2.5), OrderedF32(3.0)]);
    }

    #[test]
    fn distances_match_helper_handles_infinities() {
        assert!(distances_match(
            &[1.0, f32::INFINITY],
            &[1.0, f32::INFINITY],
            1e-6
        ));
        assert!(!distances_match(&[1.0, f32::INFINITY], &[1.0, 2.0], 1e-6));
        assert!(!distances_match(&[1.0], &[1.0, 2.0], 1e-6));
    }
}
