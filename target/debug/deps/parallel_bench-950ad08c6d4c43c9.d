/root/repo/target/debug/deps/parallel_bench-950ad08c6d4c43c9.d: crates/bench/src/bin/parallel_bench.rs Cargo.toml

/root/repo/target/debug/deps/libparallel_bench-950ad08c6d4c43c9.rmeta: crates/bench/src/bin/parallel_bench.rs Cargo.toml

crates/bench/src/bin/parallel_bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
