//! Degree statistics and structural summaries used by the partitioner and the
//! evaluation harness (Table 4 of the paper reports |V|, |E| and average degree).

use crate::graph::Graph;
use crate::types::VertexId;

/// Summary statistics of a graph's degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Number of directed edges.
    pub num_edges: usize,
    /// Average out-degree.
    pub average_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of vertices with no outgoing edges (sinks).
    pub num_sinks: usize,
    /// Number of vertices with no incoming edges (sources).
    pub num_sources: usize,
    /// Number of completely isolated vertices.
    pub num_isolated: usize,
}

/// Compute [`DegreeStats`] for a graph.
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let mut max_out = 0usize;
    let mut max_in = 0usize;
    let mut sinks = 0usize;
    let mut sources = 0usize;
    let mut isolated = 0usize;
    for v in graph.vertices() {
        let od = graph.out_degree(v);
        let id = graph.in_degree(v);
        max_out = max_out.max(od);
        max_in = max_in.max(id);
        if od == 0 {
            sinks += 1;
        }
        if id == 0 {
            sources += 1;
        }
        if od == 0 && id == 0 {
            isolated += 1;
        }
    }
    DegreeStats {
        num_vertices: graph.num_vertices(),
        num_edges: graph.num_edges(),
        average_degree: graph.average_degree(),
        max_out_degree: max_out,
        max_in_degree: max_in,
        num_sinks: sinks,
        num_sources: sources,
        num_isolated: isolated,
    }
}

/// Out-degree histogram: `hist[d]` = number of vertices with out-degree `d`,
/// truncated at `max_bucket` (larger degrees all land in the last bucket).
pub fn out_degree_histogram(graph: &Graph, max_bucket: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_bucket + 1];
    for v in graph.vertices() {
        let d = graph.out_degree(v).min(max_bucket);
        hist[d] += 1;
    }
    hist
}

/// Gini coefficient of the out-degree distribution — a scalar skewness measure.
/// 0.0 means perfectly uniform degrees, values approaching 1.0 mean a few hubs own
/// nearly all edges (the power-law regime the paper's graphs live in).
pub fn degree_gini(graph: &Graph) -> f64 {
    let n = graph.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mut degrees: Vec<usize> = graph.vertices().map(|v| graph.out_degree(v)).collect();
    degrees.sort_unstable();
    let total: usize = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut weighted = 0.0;
    for (i, &d) in degrees.iter().enumerate() {
        weighted += (i as f64 + 1.0) * d as f64;
    }
    (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Number of vertices reachable from `root` following outgoing edges (including the
/// root itself). Used by tests to characterise generated graphs and by the harness
/// to pick SSSP roots with large reachable sets.
pub fn reachable_from(graph: &Graph, root: VertexId) -> usize {
    let mut visited = vec![false; graph.num_vertices()];
    let mut stack = vec![root];
    visited[root as usize] = true;
    let mut count = 0usize;
    while let Some(v) = stack.pop() {
        count += 1;
        for &u in graph.out_neighbors(v) {
            if !visited[u as usize] {
                visited[u as usize] = true;
                stack.push(u);
            }
        }
    }
    count
}

/// Pick the vertex with the largest out-degree; a sensible default SSSP/BFS root for
/// skewed graphs (mirrors the paper's practice of rooting traversals at a hub).
pub fn highest_out_degree_vertex(graph: &Graph) -> Option<VertexId> {
    // Degree ties break on the *external* id so the choice is independent of
    // the physical layout (on an unremapped graph this is exactly the old
    // "last maximal vertex" behavior of a bare `max_by_key(out_degree)`).
    graph
        .vertices()
        .max_by_key(|&v| (graph.out_degree(v), graph.external_id(v)))
        .filter(|_| graph.num_vertices() > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn stats_of_a_star() {
        let g = generators::star(9);
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 9);
        assert_eq!(s.max_out_degree, 9);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.num_sources, 1);
        assert_eq!(s.num_sinks, 9);
        assert_eq!(s.num_isolated, 0);
    }

    #[test]
    fn histogram_buckets_truncate() {
        let g = generators::star(9);
        let hist = out_degree_histogram(&g, 4);
        assert_eq!(hist[0], 9); // leaves
        assert_eq!(hist[4], 1); // hub truncated into last bucket
    }

    #[test]
    fn gini_is_zero_for_uniform_degrees() {
        let g = generators::cycle(10);
        assert!(degree_gini(&g).abs() < 1e-9);
    }

    #[test]
    fn gini_is_high_for_a_star() {
        let g = generators::star(50);
        assert!(degree_gini(&g) > 0.9);
    }

    #[test]
    fn rmat_is_more_skewed_than_erdos_renyi() {
        let rmat = generators::rmat(512, 4096, 0.57, 0.19, 0.19, 2);
        let er = generators::erdos_renyi(512, 4096, 2);
        assert!(degree_gini(&rmat) > degree_gini(&er));
    }

    #[test]
    fn reachability_on_a_path() {
        let g = generators::path(20);
        assert_eq!(reachable_from(&g, 0), 20);
        assert_eq!(reachable_from(&g, 10), 10);
        assert_eq!(reachable_from(&g, 19), 1);
    }

    #[test]
    fn highest_degree_vertex_of_star_is_center() {
        let g = generators::star(5);
        assert_eq!(highest_out_degree_vertex(&g), Some(0));
    }

    #[test]
    fn empty_graph_stats() {
        let g = crate::Graph::from_edges(0, vec![]);
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.average_degree, 0.0);
        assert_eq!(degree_gini(&g), 0.0);
        assert_eq!(highest_out_degree_vertex(&g), None);
    }
}
