//! Redundancy-Reduction Guidance (RRG) generation — paper Algorithm 1.
//!
//! The guidance records, for every vertex, `last_iter`: the last propagation level
//! (unit-weight BFS level + 1) at which the vertex can still receive a value from an
//! active in-neighbor. During execution:
//!
//! * **start late** (min/max apps): computations on a vertex before iteration
//!   `last_iter` can be skipped — every input the vertex will ever need has not all
//!   arrived yet, so intermediate results would be recomputed anyway.
//! * **finish early** (arithmetic apps): once a vertex's value has been stable for
//!   `last_iter` consecutive iterations it is declared early-converged and skipped.
//!
//! Algorithm 1 as printed iterates destination vertices and scans *incoming* edges
//! every round, which is `O(|E| * levels)`. The frontier formulation used here —
//! scan the *outgoing* edges of the vertices visited in the previous round, with a
//! `visited` flag so each vertex propagates exactly once — touches each edge `O(1)`
//! times, which is what makes the preprocessing overhead negligible (§4.4,
//! Figure 8). The trade-off: a vertex propagates the level of its *first* reach
//! (its unit-weight BFS level), so on graphs where a vertex is reachable both by a
//! short path and a longer chain, `last_iter` is a **lower bound** of Algorithm 1's
//! fixpoint. A lower bound is always *safe* — it only means fewer skipped
//! computations, never a skipped final value — and the engine's coverage tracking
//! (Algorithm 3's flush push) independently guarantees delivery.

use slfe_cluster::pool::SendPtr;
use slfe_cluster::WorkerPool;
use slfe_graph::{AtomicBitset, Bitset, Graph, VertexId};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Frontier chunk granularity of the parallel generation pass. Coarser than the
/// engine's 256-vertex mini-chunks because each frontier entry fans out over its
/// whole out-neighborhood.
const FRONTIER_CHUNK: usize = 512;

/// Marker level of a vertex the guidance BFS never reached.
pub const UNREACHED: u32 = u32::MAX;

/// Default dirty fraction past which [`RrGuidance::repair`] regenerates instead of
/// patching: once a quarter of the graph is affected, the repair pass's boundary
/// gathers cost about as much as the straight-line regeneration BFS.
pub const DEFAULT_REPAIR_FALLBACK_FRACTION: f64 = 0.25;

/// How a guidance-repair request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairReport {
    /// `true` when the repair fell back to full regeneration (dirty fraction over
    /// the threshold, fallback-root graphs, or a root set that vanished).
    pub regenerated: bool,
    /// Vertices whose guidance was recomputed.
    pub affected_vertices: usize,
    /// Counted work (edges traversed) of the repair or regeneration pass.
    pub work: u64,
}

/// Per-vertex redundancy-reduction guidance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrGuidance {
    last_iter: Vec<u32>,
    /// First-reach BFS level of every vertex ([`UNREACHED`] if never visited).
    /// `last_iter` is derivable from these levels (`max` over visited in-neighbors
    /// of `level + 1`), which is what makes incremental repair possible.
    level: Vec<u32>,
    max_level: u32,
    work: u64,
    /// `true` when the graph had no in-degree-0 vertex and the BFS seeded from the
    /// highest-out-degree hub instead. Repair always regenerates in that case: the
    /// fallback root is a global property a local patch cannot preserve.
    used_fallback_root: bool,
}

impl RrGuidance {
    /// Run the preprocessing pass over `graph` and produce the guidance, on the
    /// calling thread.
    ///
    /// Roots are the vertices with no incoming edges (they can never receive an
    /// update, so their propagation level is 0). Graphs with no such vertex (e.g. a
    /// single strongly connected component) fall back to using the highest
    /// out-degree vertex as the root, which still yields usable levels; vertices the
    /// BFS never reaches keep `last_iter = 0` and are therefore never skipped.
    pub fn generate(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut last_iter = vec![0u32; n];
        let mut level = vec![UNREACHED; n];
        let mut visited = vec![false; n];
        let mut work: u64 = 0;

        let (mut frontier, used_fallback_root) = Self::roots(graph);
        for &root in &frontier {
            visited[root as usize] = true;
            level[root as usize] = 0;
        }

        let mut iter: u32 = 1;
        let mut max_level = 0u32;
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &src in &frontier {
                for &dst in graph.out_neighbors(src) {
                    work += 1;
                    // The destination sits at a later propagation level than the
                    // cached one: remember the latest level at which it can still
                    // receive a fresh value.
                    if last_iter[dst as usize] < iter {
                        last_iter[dst as usize] = iter;
                        max_level = max_level.max(iter);
                    }
                    if !visited[dst as usize] {
                        visited[dst as usize] = true;
                        level[dst as usize] = iter;
                        next.push(dst);
                    }
                }
            }
            frontier = next;
            iter += 1;
        }

        Self {
            last_iter,
            level,
            max_level,
            work,
            used_fallback_root,
        }
    }

    /// The BFS seed set — vertices with no incoming edges, or the highest
    /// out-degree vertex when none exists — plus whether the fallback was used.
    fn roots(graph: &Graph) -> (Vec<VertexId>, bool) {
        let frontier: Vec<VertexId> = graph
            .vertices()
            .filter(|&v| graph.in_degree(v) == 0)
            .collect();
        if frontier.is_empty() && graph.num_vertices() > 0 {
            let mut fallback = Vec::new();
            if let Some(hub) = slfe_graph::stats::highest_out_degree_vertex(graph) {
                fallback.push(hub);
            }
            (fallback, true)
        } else {
            (frontier, false)
        }
    }

    /// Run the preprocessing pass on up to `workers` real threads.
    ///
    /// Stands up a transient [`WorkerPool`]; the engine and the delta server
    /// pass their long-lived pool to [`RrGuidance::generate_parallel_on`]
    /// instead, so preprocessing spawns no threads of its own.
    pub fn generate_parallel(graph: &Graph, workers: usize) -> Self {
        if workers <= 1 {
            return Self::generate(graph);
        }
        Self::generate_parallel_on(graph, &WorkerPool::new(workers))
    }

    /// Run the preprocessing pass on an existing worker pool — one pool phase
    /// per BFS round.
    ///
    /// The BFS stays level-synchronous, so the result is **identical** to
    /// [`RrGuidance::generate`] for every worker count: within a round, every
    /// reached destination receives the same level (the round number) no matter
    /// which worker touches it first, `last_iter` updates go through an atomic
    /// `fetch_max`, and the `visited` claim is an [`AtomicBitset`] `fetch_or` with
    /// exactly one winner. The per-round frontier *order* may differ across runs,
    /// which is invisible in the output; the counted `generation_work` is the total
    /// out-degree of all visited vertices and therefore also identical. This is
    /// what keeps the §4.4 claim honest at scale: preprocessing parallelises just
    /// like an execution iteration does.
    pub fn generate_parallel_on(graph: &Graph, pool: &WorkerPool) -> Self {
        let workers = pool.threads();
        if workers <= 1 {
            return Self::generate(graph);
        }
        let n = graph.num_vertices();
        let last_iter: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
        // The claim winner of a vertex stores its level; every potential winner in
        // a round would store the same round number, so the value is deterministic.
        let level: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
        let visited = AtomicBitset::new(n);
        let mut work: u64 = 0;

        let (mut frontier, used_fallback_root) = Self::roots(graph);
        for &root in &frontier {
            visited.insert_shared(root as usize);
            level[root as usize].store(0, Ordering::Relaxed);
        }

        let mut iter: u32 = 1;
        while !frontier.is_empty() {
            let num_chunks = frontier.len().div_ceil(FRONTIER_CHUNK);
            if num_chunks == 1 {
                // A small frontier is not worth a thread round trip.
                let mut next = Vec::new();
                for &src in &frontier {
                    for &dst in graph.out_neighbors(src) {
                        work += 1;
                        last_iter[dst as usize].fetch_max(iter, Ordering::Relaxed);
                        if visited.insert_shared(dst as usize) {
                            level[dst as usize].store(iter, Ordering::Relaxed);
                            next.push(dst);
                        }
                    }
                }
                frontier = next;
            } else {
                // One pool phase per BFS round: workers claim frontier chunks
                // from the shared cursor and collect their discoveries into
                // per-worker slots merged (in worker order) at the barrier.
                let cursor = AtomicUsize::new(0);
                let mut round: Vec<(Vec<VertexId>, u64)> =
                    (0..workers).map(|_| (Vec::new(), 0u64)).collect();
                let slots = SendPtr::new(&mut round);
                {
                    let frontier = &frontier;
                    let visited = &visited;
                    let last_iter = &last_iter;
                    let level = &level;
                    pool.run(&|worker| {
                        // Safety: one slot per worker id.
                        let (local_next, local_work) = unsafe { slots.slot_mut(worker) };
                        loop {
                            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                            let start = chunk * FRONTIER_CHUNK;
                            if start >= frontier.len() {
                                break;
                            }
                            let end = (start + FRONTIER_CHUNK).min(frontier.len());
                            for &src in &frontier[start..end] {
                                for &dst in graph.out_neighbors(src) {
                                    *local_work += 1;
                                    last_iter[dst as usize].fetch_max(iter, Ordering::Relaxed);
                                    if visited.insert_shared(dst as usize) {
                                        level[dst as usize].store(iter, Ordering::Relaxed);
                                        local_next.push(dst);
                                    }
                                }
                            }
                        }
                    });
                }
                let mut next = Vec::new();
                for (local_next, local_work) in round {
                    next.extend(local_next);
                    work += local_work;
                }
                frontier = next;
            }
            iter += 1;
        }

        let last_iter: Vec<u32> = last_iter.into_iter().map(AtomicU32::into_inner).collect();
        let level: Vec<u32> = level.into_iter().map(AtomicU32::into_inner).collect();
        let max_level = last_iter.iter().copied().max().unwrap_or(0);
        Self {
            last_iter,
            level,
            max_level,
            work,
            used_fallback_root,
        }
    }

    /// Incrementally patch the guidance after an edge-update batch, using the
    /// default fallback threshold ([`DEFAULT_REPAIR_FALLBACK_FRACTION`]).
    ///
    /// `graph` is the **mutated** graph and `dirty` the endpoints of every changed
    /// edge (ascending, as [`slfe_graph::BatchEffect::dirty`] provides them). The
    /// result is equal — level for level, `last_iter` for `last_iter` — to
    /// regenerating from scratch on the mutated graph
    /// ([`RrGuidance::guidance_eq`]), the property the test suite proves.
    pub fn repair(
        &self,
        graph: &Graph,
        dirty: &[VertexId],
        workers: usize,
    ) -> (Self, RepairReport) {
        self.repair_with_threshold(graph, dirty, workers, DEFAULT_REPAIR_FALLBACK_FRACTION)
    }

    /// [`RrGuidance::repair`] running any regeneration fallback on an existing
    /// worker pool (the serving path: the delta server's pool outlives every
    /// graph version, so even a fallback regeneration spawns no threads).
    pub fn repair_on(
        &self,
        graph: &Graph,
        dirty: &[VertexId],
        pool: &WorkerPool,
    ) -> (Self, RepairReport) {
        self.repair_impl(graph, dirty, DEFAULT_REPAIR_FALLBACK_FRACTION, &|| {
            Self::generate_parallel_on(graph, pool)
        })
    }

    /// [`RrGuidance::repair`] with an explicit changed-fraction threshold in
    /// `[0, 1]`; when more than `threshold * |V|` vertices actually move, the
    /// pass aborts and falls back to [`RrGuidance::generate_parallel`].
    ///
    /// Why repair works: `level` is the unit-weight BFS distance from the root
    /// set (in-degree-0 vertices) and `last_iter(v)` is `max(level(u) + 1)` over
    /// `v`'s visited in-neighbors — so patching the levels patches everything.
    /// Levels are repaired with the classic two-phase dynamic-SSSP scheme
    /// (Ramalingam–Reps, specialised to unit weights):
    ///
    /// 1. **Invalidation.** A vertex's level is *supported* if it is a root at
    ///    level 0 or has an in-neighbor one level up. Deletions (and lost root
    ///    status) can only break support at the dirty endpoints, so those are
    ///    rechecked; each vertex that lost support is reset to unreached and the
    ///    check cascades along its out-neighbors that used it as support —
    ///    exactly the region whose level may grow.
    /// 2. **Re-relaxation.** A unit-weight Dijkstra (bucket queue) re-derives
    ///    the invalidated region from its intact in-boundary and propagates any
    ///    *improvements* (insertions, new roots) seeded at the dirty endpoints.
    ///    Untouched vertices act as settled sources; a relaxation stops the
    ///    moment it fails to beat an existing level, so the pass touches only
    ///    the vertices whose level genuinely changes (plus their frontier).
    ///
    /// `last_iter` is then re-gathered for the dirty endpoints and the
    /// out-neighbors of every level-changed vertex — the only places it can
    /// move. The result equals regeneration level-for-level (the property the
    /// test suite proves), at a cost proportional to the disturbed region
    /// instead of `O(|E|)`.
    pub fn repair_with_threshold(
        &self,
        graph: &Graph,
        dirty: &[VertexId],
        workers: usize,
        threshold: f64,
    ) -> (Self, RepairReport) {
        self.repair_impl(graph, dirty, threshold, &|| {
            Self::generate_parallel(graph, workers)
        })
    }

    /// Shared repair body; `regen` supplies the full-regeneration fallback
    /// (sized-pool vs borrowed-pool variants).
    fn repair_impl(
        &self,
        graph: &Graph,
        dirty: &[VertexId],
        threshold: f64,
        regen: &dyn Fn() -> Self,
    ) -> (Self, RepairReport) {
        let n = graph.num_vertices();
        let old_n = self.last_iter.len();
        let regenerate = |extra_work: u64| {
            let fresh = regen();
            let work = fresh.work + extra_work;
            (
                fresh,
                RepairReport {
                    regenerated: true,
                    affected_vertices: n,
                    work,
                },
            )
        };
        // A hub-seeded guidance (no natural roots) depends on a global argmax the
        // patch cannot maintain; same if the mutation created or destroyed the
        // *entire* root set. Regenerate in those cases.
        if self.used_fallback_root || n == 0 || old_n == 0 {
            return regenerate(0);
        }
        if !graph.vertices().any(|v| graph.in_degree(v) == 0) {
            return regenerate(0);
        }
        let touched_limit = ((threshold * n as f64) as usize).max(16);
        // Competitive guard: regeneration costs ~|E| traversals, so a repair
        // that has already spent that much is losing — abort and regenerate.
        let work_limit = (graph.num_edges() as u64).max(64);
        let mut work: u64 = 0;

        let mut level: Vec<u32> = (0..n)
            .map(|v| if v < old_n { self.level[v] } else { UNREACHED })
            .collect();
        let seeds = || {
            dirty
                .iter()
                .copied()
                .chain((old_n as VertexId)..(n as VertexId))
        };

        // Phase 1: cascade support loss from the dirty endpoints. `invalid`
        // vertices pend re-derivation in phase 2.
        let mut invalid = Bitset::new(n);
        let mut queue: VecDeque<VertexId> = seeds().collect();
        let mut invalid_count = 0usize;
        while let Some(v) = queue.pop_front() {
            let vi = v as usize;
            if invalid.get(vi) || level[vi] == UNREACHED {
                continue;
            }
            if graph.in_degree(v) == 0 {
                continue; // a root's level 0 is intrinsically supported
            }
            let old = level[vi];
            let mut supported = false;
            for &u in graph.in_neighbors(v) {
                work += 1;
                if !invalid.get(u as usize) && level[u as usize] != UNREACHED {
                    // Note `level[u] + 1 < old` is impossible while `u` is
                    // valid: improvements are handled in phase 2, and phase 1
                    // only ever *removes* support.
                    if level[u as usize] + 1 == old {
                        supported = true;
                        break;
                    }
                }
            }
            if supported {
                continue;
            }
            invalid.set(vi);
            invalid_count += 1;
            if invalid_count > touched_limit || work > work_limit {
                return regenerate(work);
            }
            level[vi] = UNREACHED;
            for &y in graph.out_neighbors(v) {
                work += 1;
                // Only out-neighbors whose level this vertex supported.
                if !invalid.get(y as usize) && level[y as usize] == old + 1 {
                    queue.push_back(y);
                }
            }
        }

        // Phase 2: unit-weight Dijkstra over the disturbed region. Seeds: the
        // invalidated vertices (re-derived from their intact in-boundary), the
        // dirty endpoints (where an inserted edge or fresh root status may
        // *improve* a level), and everything the batch appended.
        let mut buckets: Vec<Vec<VertexId>> = Vec::new();
        let push = |buckets: &mut Vec<Vec<VertexId>>, lvl: u32, v: VertexId| {
            let lvl = lvl as usize;
            if buckets.len() <= lvl {
                buckets.resize_with(lvl + 1, Vec::new);
            }
            buckets[lvl].push(v);
        };
        let mut changed: Vec<VertexId> = Vec::new();
        {
            let mut seed_candidate =
                |v: VertexId, level: &mut [u32], buckets: &mut Vec<Vec<VertexId>>| {
                    let mut candidate = UNREACHED;
                    if graph.in_degree(v) == 0 {
                        candidate = 0;
                    } else {
                        for &u in graph.in_neighbors(v) {
                            work += 1;
                            if !invalid.get(u as usize) && level[u as usize] != UNREACHED {
                                candidate = candidate.min(level[u as usize] + 1);
                            }
                        }
                    }
                    if candidate < level[v as usize] {
                        level[v as usize] = candidate;
                        push(buckets, candidate, v);
                    }
                };
            for v in invalid.iter_ones() {
                seed_candidate(v as VertexId, &mut level, &mut buckets);
            }
            for v in seeds() {
                if !invalid.get(v as usize) {
                    seed_candidate(v, &mut level, &mut buckets);
                }
            }
        }
        let mut settled = Bitset::new(n);
        let mut settled_count = 0usize;
        let mut lvl = 0usize;
        while lvl < buckets.len() {
            while let Some(v) = buckets[lvl].pop() {
                let vi = v as usize;
                if settled.get(vi) || level[vi] != lvl as u32 {
                    continue; // stale entry, superseded by a shorter reach
                }
                settled.set(vi);
                settled_count += 1;
                if settled_count > touched_limit || work > work_limit {
                    return regenerate(work);
                }
                let old = if vi < old_n {
                    self.level[vi]
                } else {
                    UNREACHED
                };
                if level[vi] != old {
                    changed.push(v);
                }
                for &y in graph.out_neighbors(v) {
                    work += 1;
                    let yi = y as usize;
                    if !settled.get(yi) && level[yi] > lvl as u32 + 1 {
                        level[yi] = lvl as u32 + 1;
                        push(&mut buckets, lvl as u32 + 1, y);
                    }
                }
            }
            lvl += 1;
        }
        // Invalidated vertices the Dijkstra never re-reached are unreachable
        // now; their level change must still propagate to `last_iter` below.
        for v in invalid.iter_ones() {
            if level[v] == UNREACHED && (v >= old_n || self.level[v] != UNREACHED) {
                changed.push(v as VertexId);
            }
        }

        // `last_iter` moves only where an in-edge changed (the dirty endpoints —
        // regathered in full, since the repair does not know which individual
        // edges moved) or where an in-neighbor's level moved. The latter is
        // maintained incrementally: a *raised* in-level can only push the max up
        // (no gather needed), while a *dropped* in-level forces a regather only
        // if the old level attained the max — it may have been the sole support.
        let mut last_iter: Vec<u32> = (0..n)
            .map(|v| if v < old_n { self.last_iter[v] } else { 0 })
            .collect();
        let mut regather = Bitset::new(n);
        let mut targets: Vec<VertexId> = Vec::new();
        for v in seeds() {
            if regather.insert(v as usize) {
                targets.push(v);
            }
        }
        let mut raises: Vec<(VertexId, u32)> = Vec::new();
        for &v in &changed {
            let vi = v as usize;
            let old = if vi < old_n {
                self.level[vi]
            } else {
                UNREACHED
            };
            let new = level[vi];
            for &y in graph.out_neighbors(v) {
                work += 1;
                let yi = y as usize;
                if regather.get(yi) {
                    continue;
                }
                if old != UNREACHED && old + 1 == last_iter[yi] && (new == UNREACHED || new < old) {
                    // The dropped level attained y's max: it may have been the
                    // only in-neighbor doing so.
                    regather.set(yi);
                    targets.push(y);
                } else if new != UNREACHED && new + 1 > last_iter[yi] {
                    raises.push((y, new + 1));
                }
            }
        }
        let mut max_dropped = false;
        let mut touched_max = 0u32;
        for &v in &targets {
            let mut last = 0u32;
            for &u in graph.in_neighbors(v) {
                work += 1;
                let lu = level[u as usize];
                if lu != UNREACHED {
                    last = last.max(lu + 1);
                }
            }
            let vi = v as usize;
            if last_iter[vi] == self.max_level && last < last_iter[vi] {
                max_dropped = true;
            }
            last_iter[vi] = last;
            touched_max = touched_max.max(last);
        }
        for &(y, candidate) in &raises {
            let yi = y as usize;
            if !regather.get(yi) {
                last_iter[yi] = last_iter[yi].max(candidate);
                touched_max = touched_max.max(last_iter[yi]);
            }
        }
        // The global maximum can only drop if a vertex that attained it was
        // recomputed downward; only then is a full rescan needed.
        let max_level = if max_dropped {
            last_iter.iter().copied().max().unwrap_or(0)
        } else {
            self.max_level.max(touched_max)
        };

        let affected_vertices = invalid_count.max(settled_count).max(changed.len());
        let repaired = Self {
            last_iter,
            level,
            max_level,
            // The repaired guidance carries the *repair* cost as its generation
            // work — the honest preprocessing charge for a warm engine build.
            work,
            used_fallback_root: false,
        };
        let report = RepairReport {
            regenerated: false,
            affected_vertices,
            work,
        };
        (repaired, report)
    }

    /// `true` when two guidances schedule identically: same per-vertex levels and
    /// `last_iter`s. Ignores the counted generation work, which legitimately
    /// differs between a from-scratch pass and a repair.
    pub fn guidance_eq(&self, other: &Self) -> bool {
        self.last_iter == other.last_iter
            && self.level == other.level
            && self.max_level == other.max_level
    }

    /// The first-reach BFS level of every vertex ([`UNREACHED`] = never visited).
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    /// The last propagation level of vertex `v` (0 for roots and unreached
    /// vertices, meaning "never skip").
    pub fn last_iter(&self, v: VertexId) -> u32 {
        self.last_iter[v as usize]
    }

    /// The full per-vertex guidance array.
    pub fn last_iters(&self) -> &[u32] {
        &self.last_iter
    }

    /// The largest `last_iter` over all vertices — the depth of the propagation
    /// structure, and the earliest iteration by which every vertex has started.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.last_iter.len()
    }

    /// Counted work (edges traversed) spent generating the guidance; the Figure 8
    /// overhead metric.
    pub fn generation_work(&self) -> u64 {
        self.work
    }

    /// Histogram of `last_iter` values, used by the harness to show how much
    /// "start late" head-room a graph offers.
    pub fn level_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_level as usize + 1];
        for &l in &self.last_iter {
            hist[l as usize] += 1;
        }
        hist
    }

    /// `true` when the generation BFS seeded from the highest-out-degree hub
    /// because the graph had no in-degree-0 root. Persisted by snapshots:
    /// repair must keep regenerating after a restore exactly as it did before.
    pub fn used_fallback_root(&self) -> bool {
        self.used_fallback_root
    }

    /// Reassemble a guidance from its stored parts — the snapshot-restore
    /// path. The arrays must come from (or be shaped like) a real guidance:
    /// `last_iter` and `level` parallel, `max_level` their actual maximum.
    pub fn from_parts(
        last_iter: Vec<u32>,
        level: Vec<u32>,
        max_level: u32,
        work: u64,
        used_fallback_root: bool,
    ) -> Self {
        assert_eq!(last_iter.len(), level.len());
        Self {
            last_iter,
            level,
            max_level,
            work,
            used_fallback_root,
        }
    }

    /// Pad the guidance to cover `n >= num_vertices()` vertices without
    /// recomputing anything: appended vertices get `level = UNREACHED` and
    /// `last_iter = 0` ("never skip" — always safe). This is the lazy-
    /// maintenance stopgap that lets warm engine runs proceed against a grown
    /// graph with *stale* guidance; the appended ids must be in the dirty set
    /// of the next [`RrGuidance::repair`] so a later sync reproduces exactly
    /// what regeneration would (repair's seeding then discovers any appended
    /// in-degree-0 vertex as a level-0 root).
    pub fn extended_to(&self, n: usize) -> Self {
        assert!(n >= self.num_vertices(), "the id space only grows");
        let mut padded = self.clone();
        padded.last_iter.resize(n, 0);
        padded.level.resize(n, UNREACHED);
        padded
    }

    /// Carry the guidance across a physical id remap: per-vertex arrays are
    /// permuted by `step` (old-physical → new-physical), the scalar summary
    /// (`max_level`, `work`, `used_fallback_root`) is unchanged. Sound because
    /// generation and repair are permutation-equivariant — BFS levels and
    /// `last_iter` depend only on the graph's structure, never on the id order
    /// — so `generate(g.remapped(step))` equals
    /// `generate(g).permuted(step)` guidance-for-guidance.
    pub fn permuted(&self, step: &slfe_graph::IdRemap) -> Self {
        Self {
            last_iter: step.permuted_values(&self.last_iter),
            level: step.permuted_values(&self.level),
            max_level: self.max_level,
            work: self.work,
            used_fallback_root: self.used_fallback_root,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slfe_graph::generators;

    #[test]
    fn path_levels_increase_along_the_chain() {
        let g = generators::path(6);
        let rrg = RrGuidance::generate(&g);
        // Vertex 0 is the root (level 0); vertex k is reached at level k.
        assert_eq!(rrg.last_iters(), &[0, 1, 2, 3, 4, 5]);
        assert_eq!(rrg.max_level(), 5);
    }

    #[test]
    fn diamond_takes_the_latest_incoming_level() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 0 -> 3: vertex 3 hears from level-1 vertices in
        // iteration 2, so its last_iter must be 2 even though it is first reached in
        // iteration 1.
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3)]);
        let g = b.build();
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.last_iter(0), 0);
        assert_eq!(rrg.last_iter(1), 1);
        assert_eq!(rrg.last_iter(2), 1);
        assert_eq!(rrg.last_iter(3), 2);
    }

    #[test]
    fn star_has_a_single_level() {
        let g = generators::star(20);
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.last_iter(0), 0);
        for leaf in 1..21 {
            assert_eq!(rrg.last_iter(leaf), 1);
        }
        assert_eq!(rrg.max_level(), 1);
        assert_eq!(rrg.level_histogram(), vec![1, 20]);
    }

    #[test]
    fn cycle_without_roots_falls_back_and_never_blocks() {
        let g = generators::cycle(5);
        let rrg = RrGuidance::generate(&g);
        // A root was chosen arbitrarily; every vertex still gets a finite level and
        // the unreached-vertex guarantee (level 0 = never skipped) holds trivially.
        assert!(rrg.max_level() <= 5);
        assert_eq!(rrg.num_vertices(), 5);
    }

    #[test]
    fn generation_work_is_linear_in_edges() {
        let g = generators::rmat(500, 4000, 0.57, 0.19, 0.19, 3);
        let rrg = RrGuidance::generate(&g);
        // The frontier formulation touches each out-edge of each visited vertex
        // exactly once, so work is bounded by |E|.
        assert!(rrg.generation_work() <= g.num_edges() as u64);
        assert!(rrg.generation_work() > 0);
    }

    #[test]
    fn unreachable_vertices_keep_level_zero() {
        // 0 -> 1 plus an isolated 2-cycle (2 <-> 3) that no root reaches.
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (2, 3), (3, 2)]);
        let g = b.build();
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.last_iter(2), 0);
        assert_eq!(rrg.last_iter(3), 0);
        assert_eq!(rrg.last_iter(1), 1);
    }

    #[test]
    fn empty_graph_generates_empty_guidance() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let rrg = RrGuidance::generate(&g);
        assert_eq!(rrg.num_vertices(), 0);
        assert_eq!(rrg.max_level(), 0);
        assert_eq!(rrg.generation_work(), 0);
    }

    #[test]
    fn guidance_is_deterministic() {
        let g = generators::rmat(200, 1500, 0.57, 0.19, 0.19, 8);
        let a = RrGuidance::generate(&g);
        let b = RrGuidance::generate(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_generation_is_identical_to_sequential() {
        for (graph, label) in [
            (generators::rmat(800, 8000, 0.57, 0.19, 0.19, 5), "rmat"),
            (generators::layered(10, 300, 5, 2), "layered"),
            (generators::path(2000), "path"),
            (generators::cycle(50), "cycle"),
        ] {
            let sequential = RrGuidance::generate(&graph);
            for workers in [2usize, 4] {
                let parallel = RrGuidance::generate_parallel(&graph, workers);
                assert_eq!(sequential, parallel, "{label} with {workers} workers");
            }
        }
    }

    #[test]
    fn parallel_generation_with_one_worker_is_the_sequential_pass() {
        let g = generators::rmat(300, 2400, 0.57, 0.19, 0.19, 13);
        assert_eq!(
            RrGuidance::generate(&g),
            RrGuidance::generate_parallel(&g, 1)
        );
    }

    #[test]
    fn parallel_generation_handles_the_empty_graph() {
        let g = slfe_graph::Graph::from_edges(0, vec![]);
        let rrg = RrGuidance::generate_parallel(&g, 4);
        assert_eq!(rrg.num_vertices(), 0);
        assert_eq!(rrg.max_level(), 0);
    }

    #[test]
    fn levels_record_first_reach_and_unreached_marker() {
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (0, 2), (1, 3), (2, 3), (0, 3), (4, 5), (5, 4)]);
        let g = b.build();
        let rrg = RrGuidance::generate(&g);
        assert_eq!(&rrg.levels()[..4], &[0, 1, 1, 1]); // 3 first reached via 0 -> 3
        assert_eq!(rrg.levels()[4], UNREACHED);
        assert_eq!(rrg.levels()[5], UNREACHED);
        assert_eq!(rrg.last_iter(3), 2); // but it can still hear from level-1 vertices
    }

    use slfe_graph::UpdateBatch;

    /// Apply `batch`, repair the old guidance, and check it equals regeneration.
    fn check_repair(graph: &slfe_graph::Graph, batch: &UpdateBatch) -> RepairReport {
        let old = RrGuidance::generate(graph);
        let (mutated, effect) = graph.apply_batch(batch);
        let (repaired, report) = old.repair(&mutated, &effect.dirty, 2);
        let fresh = RrGuidance::generate(&mutated);
        assert!(
            repaired.guidance_eq(&fresh),
            "repaired guidance diverges from regeneration (regenerated={})",
            report.regenerated
        );
        report
    }

    #[test]
    fn repair_matches_regeneration_on_single_edits() {
        let g = generators::layered(8, 40, 4, 3);
        // Insert a shortcut across layers, delete a spine edge, append a vertex.
        let mut insert = UpdateBatch::new();
        insert.insert(0, 7 * 40, 1.0);
        check_repair(&g, &insert);

        let mut delete = UpdateBatch::new();
        delete.delete(0, 40);
        check_repair(&g, &delete);

        let mut append = UpdateBatch::new();
        append.insert(3, g.num_vertices() as u32 + 2, 1.0);
        check_repair(&g, &append);
    }

    #[test]
    fn repair_matches_regeneration_on_random_batches() {
        for seed in 0..8u64 {
            let g = generators::rmat(400, 2600, 0.57, 0.19, 0.19, seed + 50);
            let mut rng = slfe_graph::rng::SplitMix64::seed_from_u64(seed);
            let mut batch = UpdateBatch::new();
            for _ in 0..25 {
                let src = rng.range_u32(0, g.num_vertices() as u32);
                let dst = rng.range_u32(0, g.num_vertices() as u32 + 4);
                if rng.next_f64() < 0.6 {
                    batch.insert(src, dst, rng.range_f32(1.0, 10.0));
                } else if let Some(&t) = g.out_neighbors(src).first() {
                    batch.delete(src, t);
                }
            }
            check_repair(&g, &batch);
        }
    }

    #[test]
    fn repair_handles_root_status_flips() {
        // 0 -> 1 -> 2: inserting 3 -> 0 demotes root 0; deleting 0 -> 1 promotes 1.
        let mut b = slfe_graph::GraphBuilder::new();
        b.extend_unweighted([(0, 1), (1, 2)]);
        let g = b.build();
        let mut batch = UpdateBatch::new();
        batch.insert(3, 0, 1.0);
        check_repair(&g, &batch);

        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        check_repair(&g, &batch);
    }

    #[test]
    fn repair_falls_back_when_most_of_the_graph_is_dirty() {
        let g = generators::path(50);
        let old = RrGuidance::generate(&g);
        // Deleting the first spine edge dirties a region that reaches everything.
        let mut batch = UpdateBatch::new();
        batch.delete(0, 1);
        let (mutated, effect) = g.apply_batch(&batch);
        let (repaired, report) = old.repair_with_threshold(&mutated, &effect.dirty, 2, 0.1);
        assert!(report.regenerated);
        assert!(repaired.guidance_eq(&RrGuidance::generate(&mutated)));
    }

    #[test]
    fn repair_regenerates_for_fallback_root_graphs() {
        let g = generators::cycle(6);
        let old = RrGuidance::generate(&g);
        let mut batch = UpdateBatch::new();
        batch.insert(2, 4, 1.0);
        let (mutated, effect) = g.apply_batch(&batch);
        let (repaired, report) = old.repair(&mutated, &effect.dirty, 2);
        assert!(report.regenerated);
        assert!(repaired.guidance_eq(&RrGuidance::generate(&mutated)));
    }

    #[test]
    fn repair_work_is_less_than_regeneration_for_small_batches() {
        let g = generators::rmat(2000, 16000, 0.57, 0.19, 0.19, 77);
        let old = RrGuidance::generate(&g);
        // A leaf-ward insertion touching a shallow region.
        let deep = (0..g.num_vertices() as u32)
            .max_by_key(|&v| old.last_iter(v))
            .unwrap();
        let mut batch = UpdateBatch::new();
        batch.insert(deep, g.num_vertices() as u32, 2.0);
        let (mutated, effect) = g.apply_batch(&batch);
        let (repaired, report) = old.repair(&mutated, &effect.dirty, 1);
        let fresh = RrGuidance::generate(&mutated);
        assert!(repaired.guidance_eq(&fresh));
        if !report.regenerated {
            assert!(
                report.work < fresh.generation_work(),
                "repair ({}) should beat regeneration ({})",
                report.work,
                fresh.generation_work()
            );
        }
    }

    #[test]
    fn from_parts_round_trips_through_the_getters() {
        let g = generators::rmat(200, 1200, 0.57, 0.19, 0.19, 5);
        let rrg = RrGuidance::generate(&g);
        let rebuilt = RrGuidance::from_parts(
            rrg.last_iters().to_vec(),
            rrg.levels().to_vec(),
            rrg.max_level(),
            rrg.generation_work(),
            rrg.used_fallback_root(),
        );
        assert_eq!(rebuilt, rrg);
        assert!(rebuilt.guidance_eq(&rrg));
    }

    #[test]
    fn extended_guidance_repairs_to_regeneration_with_appended_dirty() {
        // The lazy-maintenance contract: pad stale guidance across a growing
        // batch, defer the repair, then sync with a dirty set that includes
        // the appended id range — the result must equal regeneration,
        // including for appended *isolated* vertices (id-space gap fills),
        // which regeneration seeds as level-0 roots.
        let g = generators::rmat(300, 2000, 0.57, 0.19, 0.19, 31);
        let old = RrGuidance::generate(&g);
        let old_n = g.num_vertices();
        let mut batch = UpdateBatch::new();
        batch.insert(3, old_n as u32 + 9, 2.0); // leaves old_n..old_n+9 isolated
        batch.insert(7, 11, 4.0);
        batch.delete(2, *g.out_neighbors(2).first().unwrap_or(&3));
        let (mutated, effect) = g.apply_batch(&batch);
        let padded = old.extended_to(mutated.num_vertices());
        assert_eq!(padded.num_vertices(), mutated.num_vertices());
        assert_eq!(padded.last_iter(old_n as u32), 0, "padding never skips");
        let mut dirty: Vec<u32> = effect.dirty.clone();
        dirty.extend(old_n as u32..mutated.num_vertices() as u32);
        dirty.sort_unstable();
        dirty.dedup();
        let (synced, _) = padded.repair(&mutated, &dirty, 2);
        assert!(synced.guidance_eq(&RrGuidance::generate(&mutated)));
    }
}
