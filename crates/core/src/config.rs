//! Engine configuration: redundancy reduction, scheduling, tracing and cost model.

use slfe_cluster::SchedulingPolicy;
use slfe_metrics::TelemetryConfig;

/// Whether the engine applies the paper's redundancy-reduction guidance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RedundancyMode {
    /// Apply "start late" (min/max apps) and "finish early" (arithmetic apps).
    #[default]
    Enabled,
    /// Ignore the guidance — process every vertex every iteration, like the
    /// baseline systems. Used for the w/o-RR curves of Figure 9 and the ablations.
    Disabled,
}

impl RedundancyMode {
    /// `true` when redundancy reduction is active.
    pub fn is_enabled(self) -> bool {
        matches!(self, RedundancyMode::Enabled)
    }
}

/// Deterministic cost model that converts counted work into simulated seconds.
///
/// The experiments report *simulated* time = `work_units * seconds_per_work_unit`
/// (plus network seconds from the cluster's communication model), so results are
/// machine-independent and reproducible; wall-clock time is still measured and kept
/// alongside in [`slfe_metrics::ExecutionStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Simulated seconds per counted work unit (one edge computation or one vertex
    /// update). The default, 5 ns, approximates a few cache-resident arithmetic
    /// operations plus an update on the paper's Knights-Landing cores.
    pub seconds_per_work_unit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            seconds_per_work_unit: 5.0e-9,
        }
    }
}

impl CostModel {
    /// Simulated seconds for `work` counted units.
    pub fn seconds(&self, work: u64) -> f64 {
        work as f64 * self.seconds_per_work_unit
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Redundancy-reduction mode (default: enabled).
    pub redundancy: RedundancyMode,
    /// Intra-node scheduling policy (default: work stealing, as in §3.6).
    pub scheduling: SchedulingPolicy,
    /// Record a per-iteration trace (needed by the Figure 4/9 experiments).
    pub trace: bool,
    /// Hard iteration cap. Min/max applications normally terminate on an empty
    /// active set well before this; arithmetic applications iterate until no vertex
    /// changes or the cap is reached.
    pub max_iterations: u32,
    /// Convergence tolerance for arithmetic applications: a vertex is "unchanged"
    /// when `|new - old| <= tolerance`. Zero reproduces the paper's exact-equality
    /// stability test.
    pub tolerance: f64,
    /// Simulated compute cost model.
    pub cost: CostModel,
    /// Fraction of edges that must be active for the engine to prefer pull over
    /// push (Gemini's direction-switching heuristic; the paper inherits it).
    pub pull_threshold: f64,
    /// Push-mode scratch representation switch: when the active-vertex fraction
    /// of a push phase is below this threshold, workers fold contributions into
    /// compact open-addressed maps (memory proportional to the touched
    /// destinations) instead of dense `O(n)` gather buffers. Values and
    /// counters are bit-identical either way — the knob trades per-edge probe
    /// cost against footprint and zeroing overhead. `0.0` forces dense scratch
    /// everywhere; anything `> 1.0` forces sparse scratch everywhere (useful
    /// for the equivalence tests).
    pub sparse_push_density: f64,
    /// Out-of-core execution: when set, the engine writes the graph's CSR/CSC
    /// to disk in segments at build time and every traversal phase streams
    /// them through a clock buffer pool holding at most this many bytes
    /// resident (both directions share the pool). `None` (the default) keeps
    /// the historical in-memory execution. Values are **bit-identical** either
    /// way — the segments store the same sorted lists the in-memory structure
    /// holds — and skipped chunks fault zero segments, so the activity
    /// summaries double as the I/O planner. The budget must comfortably
    /// exceed `total_workers × storage_segment_bytes` (each worker's cursor
    /// pins one segment).
    pub storage_budget_bytes: Option<u64>,
    /// Target on-disk bytes per segment of the out-of-core store (ignored
    /// when `storage_budget_bytes` is `None`).
    pub storage_segment_bytes: usize,
    /// Directory for the out-of-core backing files; a process-unique
    /// directory under the system temp dir when `None`. Files are removed
    /// when the last store generation drops.
    pub storage_dir: Option<std::path::PathBuf>,
    /// Telemetry (span tracing + latency histograms). Off by default; an off
    /// run is bit-identical in values, counters and messages to an
    /// un-instrumented run (pinned by `tests/telemetry.rs`).
    pub telemetry: TelemetryConfig,
    /// Physical layout policy for the serving layer's id-remap pass
    /// ([`slfe_graph::ReorderPolicy`]). The engine itself never remaps — it
    /// runs on whatever layout its graph has, and remapped runs are
    /// value-transparent (bit-identical served values) by construction — but
    /// `DeltaServer` reads this knob to decide how to reorder on its snapshot
    /// path. `None` (the default) leaves the layout alone.
    pub reorder: slfe_graph::ReorderPolicy,
    /// Partition-migration trigger for the serving layer: when the
    /// vertex-count imbalance (max/mean over nodes) exceeds this threshold,
    /// the id-remap pass first migrates vertices from the most- to the
    /// least-loaded node. `None` (the default) never migrates.
    pub migration_imbalance_threshold: Option<f64>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            redundancy: RedundancyMode::Enabled,
            scheduling: SchedulingPolicy::WorkStealing,
            trace: true,
            max_iterations: 200,
            tolerance: 1.0e-7,
            cost: CostModel::default(),
            pull_threshold: 0.05,
            sparse_push_density: 0.02,
            storage_budget_bytes: None,
            storage_segment_bytes: 64 << 10,
            storage_dir: None,
            telemetry: TelemetryConfig::off(),
            reorder: slfe_graph::ReorderPolicy::None,
            migration_imbalance_threshold: None,
        }
    }
}

impl EngineConfig {
    /// Configuration with redundancy reduction disabled (baseline-style execution).
    pub fn without_rr() -> Self {
        Self {
            redundancy: RedundancyMode::Disabled,
            ..Self::default()
        }
    }

    /// Builder-style override of the redundancy mode.
    pub fn with_redundancy(mut self, mode: RedundancyMode) -> Self {
        self.redundancy = mode;
        self
    }

    /// Builder-style override of the scheduling policy.
    pub fn with_scheduling(mut self, policy: SchedulingPolicy) -> Self {
        self.scheduling = policy;
        self
    }

    /// Builder-style override of the iteration cap.
    pub fn with_max_iterations(mut self, max: u32) -> Self {
        assert!(max >= 1, "need at least one iteration");
        self.max_iterations = max;
        self
    }

    /// Builder-style override of the arithmetic convergence tolerance.
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        self.tolerance = tolerance;
        self
    }

    /// Builder-style toggle for tracing.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Builder-style override of the sparse-push density threshold.
    pub fn with_sparse_push_density(mut self, density: f64) -> Self {
        assert!(density >= 0.0, "density threshold must be non-negative");
        self.sparse_push_density = density;
        self
    }

    /// Builder-style switch to out-of-core execution with the given buffer
    /// pool byte budget.
    pub fn with_storage_budget(mut self, budget_bytes: u64) -> Self {
        assert!(budget_bytes > 0, "storage budget must be positive");
        self.storage_budget_bytes = Some(budget_bytes);
        self
    }

    /// Builder-style override of the out-of-core segment size.
    pub fn with_storage_segment_bytes(mut self, segment_bytes: usize) -> Self {
        assert!(segment_bytes > 0, "segment size must be positive");
        self.storage_segment_bytes = segment_bytes;
        self
    }

    /// Builder-style toggle for telemetry (span tracing + latency
    /// histograms).
    pub fn with_telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = TelemetryConfig { enabled };
        self
    }

    /// Builder-style override of the out-of-core backing-file directory.
    pub fn with_storage_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.storage_dir = Some(dir.into());
        self
    }

    /// Builder-style override of the serving layer's physical reorder policy.
    pub fn with_reorder(mut self, policy: slfe_graph::ReorderPolicy) -> Self {
        self.reorder = policy;
        self
    }

    /// Builder-style override of the serving layer's migration trigger
    /// (max/mean vertex-count imbalance; must be `>= 1.0`).
    pub fn with_migration_imbalance_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold >= 1.0, "imbalance threshold is a max/mean ratio");
        self.migration_imbalance_threshold = Some(threshold);
        self
    }

    /// The out-of-core storage parameters this configuration requests, if any.
    pub fn storage_config(&self) -> Option<slfe_graph::StorageConfig> {
        self.storage_budget_bytes
            .map(|budget_bytes| slfe_graph::StorageConfig {
                budget_bytes,
                segment_bytes: self.storage_segment_bytes,
                dir: self.storage_dir.clone(),
                retry: slfe_graph::RetryPolicy::default(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enables_rr_and_stealing() {
        let c = EngineConfig::default();
        assert!(c.redundancy.is_enabled());
        assert_eq!(c.scheduling, SchedulingPolicy::WorkStealing);
        assert!(c.trace);
        assert!(c.max_iterations >= 100);
    }

    #[test]
    fn without_rr_flips_only_the_redundancy_mode() {
        let c = EngineConfig::without_rr();
        assert!(!c.redundancy.is_enabled());
        assert_eq!(c.scheduling, EngineConfig::default().scheduling);
    }

    #[test]
    fn builders_override_individual_fields() {
        let c = EngineConfig::default()
            .with_redundancy(RedundancyMode::Disabled)
            .with_scheduling(SchedulingPolicy::StaticBlocks)
            .with_max_iterations(10)
            .with_tolerance(0.0)
            .with_trace(false);
        assert!(!c.redundancy.is_enabled());
        assert_eq!(c.scheduling, SchedulingPolicy::StaticBlocks);
        assert_eq!(c.max_iterations, 10);
        assert_eq!(c.tolerance, 0.0);
        assert!(!c.trace);
        let c = c.with_sparse_push_density(2.0);
        assert_eq!(c.sparse_push_density, 2.0);
        assert!(!c.telemetry.enabled, "telemetry must default off");
        let c = c.with_telemetry(true);
        assert!(c.telemetry.enabled);
        assert_eq!(c.reorder, slfe_graph::ReorderPolicy::None);
        assert!(c.migration_imbalance_threshold.is_none());
        let c = c
            .with_reorder(slfe_graph::ReorderPolicy::DegreeDescending)
            .with_migration_imbalance_threshold(1.25);
        assert_eq!(c.reorder, slfe_graph::ReorderPolicy::DegreeDescending);
        assert_eq!(c.migration_imbalance_threshold, Some(1.25));
    }

    #[test]
    fn cost_model_converts_work_to_seconds() {
        let m = CostModel {
            seconds_per_work_unit: 1e-6,
        };
        assert!((m.seconds(2_000_000) - 2.0).abs() < 1e-9);
        assert_eq!(CostModel::default().seconds(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_cap_panics() {
        let _ = EngineConfig::default().with_max_iterations(0);
    }
}
