/root/repo/target/release/deps/slfe_bench-81501efa4b8e7797.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libslfe_bench-81501efa4b8e7797.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libslfe_bench-81501efa4b8e7797.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/runner.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/runner.rs:
crates/bench/src/timing.rs:
