//! Mini-chunk work-stealing scheduler (paper §3.6).
//!
//! Each node's vertex set is split into mini-chunks of [`DEFAULT_CHUNK_SIZE`]
//! (256) vertices. Workers first drain their originally assigned chunks and then
//! steal remaining chunks from busy peers; the shared cursor is an atomic, exactly
//! like the `__sync_fetch_and_*` counters the paper describes.
//!
//! Two execution policies are provided:
//!
//! * [`SchedulingPolicy::StaticBlocks`] — no stealing: each worker is statically
//!   handed an equal share of chunks regardless of how much work each chunk holds.
//!   This is the "w/o Stealing" baseline of Figure 10(a).
//! * [`SchedulingPolicy::WorkStealing`] — chunks are claimed one at a time from a
//!   shared cursor, so a worker that finishes early keeps taking work. In the
//!   deterministic simulation this is modelled as greedy
//!   least-loaded-worker-takes-the-next-chunk, which is what chunk-grained stealing
//!   converges to; the threaded executor uses a real atomic cursor.
//!
//! Both the deterministic simulation ([`ChunkScheduler::simulate`]) and the real
//! threaded executor ([`ChunkScheduler::execute_threaded`]) report per-worker busy
//! work, which the Figure 10(a) and Figure 6 experiments turn into imbalance and
//! scalability numbers.
//!
//! Since PR 3 the threaded paths execute on a persistent [`WorkerPool`] (parked
//! threads, phase-barrier protocol) instead of spawning fresh threads per phase
//! via `std::thread::scope` — see [`crate::pool`] for the protocol.

use crate::pool::{SendPtr, WorkerPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The paper's mini-chunk size: 256 vertices per chunk.
pub const DEFAULT_CHUNK_SIZE: usize = 256;

/// Which scheduling policy to use when distributing chunks over workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingPolicy {
    /// Equal number of chunks per worker, assigned up front (no stealing).
    StaticBlocks,
    /// Chunks claimed dynamically; idle workers steal remaining chunks.
    WorkStealing,
}

/// Result of scheduling one batch of chunks.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleOutcome {
    /// Work units accumulated by each worker.
    pub per_worker_work: Vec<u64>,
    /// Total work across workers.
    pub total_work: u64,
}

impl ScheduleOutcome {
    /// The simulated parallel makespan: the busiest worker's load.
    pub fn makespan(&self) -> u64 {
        self.per_worker_work.iter().copied().max().unwrap_or(0)
    }

    /// Parallel speedup implied by this schedule (total work / makespan).
    pub fn speedup(&self) -> f64 {
        let makespan = self.makespan();
        if makespan == 0 {
            1.0
        } else {
            self.total_work as f64 / makespan as f64
        }
    }

    /// max/mean imbalance across workers (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        if self.per_worker_work.is_empty() || self.total_work == 0 {
            return 1.0;
        }
        let mean = self.total_work as f64 / self.per_worker_work.len() as f64;
        self.makespan() as f64 / mean
    }
}

/// Splits an item range into mini-chunks and distributes them over workers.
#[derive(Debug, Clone)]
pub struct ChunkScheduler {
    num_workers: usize,
    chunk_size: usize,
}

impl ChunkScheduler {
    /// Create a scheduler for `num_workers` workers and `chunk_size`-item chunks.
    pub fn new(num_workers: usize, chunk_size: usize) -> Self {
        assert!(num_workers >= 1, "need at least one worker");
        assert!(chunk_size >= 1, "chunk size must be positive");
        Self {
            num_workers,
            chunk_size,
        }
    }

    /// Number of chunks needed to cover `num_items` items.
    pub fn num_chunks(&self, num_items: usize) -> usize {
        num_items.div_ceil(self.chunk_size)
    }

    /// The half-open item range covered by chunk `chunk` out of `num_items` items.
    pub fn chunk_range(&self, chunk: usize, num_items: usize) -> std::ops::Range<usize> {
        let start = chunk * self.chunk_size;
        let end = ((chunk + 1) * self.chunk_size).min(num_items);
        start..end
    }

    /// Deterministically simulate scheduling `num_items` items whose per-chunk cost
    /// is given by `chunk_cost(chunk_index) -> work units`.
    ///
    /// With [`SchedulingPolicy::WorkStealing`] each chunk goes to the currently
    /// least-loaded worker (ties broken by worker id); with
    /// [`SchedulingPolicy::StaticBlocks`] chunk `i` goes to worker
    /// `i * num_workers / num_chunks` (contiguous equal-count blocks).
    pub fn simulate(
        &self,
        num_items: usize,
        policy: SchedulingPolicy,
        mut chunk_cost: impl FnMut(usize) -> u64,
    ) -> ScheduleOutcome {
        let num_chunks = self.num_chunks(num_items);
        let mut per_worker = vec![0u64; self.num_workers];
        let mut total = 0u64;
        for chunk in 0..num_chunks {
            let cost = chunk_cost(chunk);
            total += cost;
            let worker = match policy {
                SchedulingPolicy::StaticBlocks => {
                    // The loop guarantees num_chunks > 0 here.
                    (chunk * self.num_workers)
                        .checked_div(num_chunks)
                        .unwrap_or(0)
                }
                SchedulingPolicy::WorkStealing => {
                    // Greedy least-loaded assignment approximates chunk-grained
                    // stealing: an idle worker always takes the next chunk.
                    let (idx, _) = per_worker
                        .iter()
                        .enumerate()
                        .min_by_key(|(i, &w)| (w, *i))
                        .expect("at least one worker");
                    idx
                }
            };
            per_worker[worker] += cost;
        }
        ScheduleOutcome {
            per_worker_work: per_worker,
            total_work: total,
        }
    }

    /// Execute `process_chunk(chunk_index)` for every chunk covering `num_items`
    /// items on real threads. Workers claim chunks from a shared atomic cursor
    /// (work stealing); the closure returns the work units it performed and must be
    /// safe to call concurrently for distinct chunks.
    ///
    /// Convenience wrapper that stands up a transient [`WorkerPool`]; hot paths
    /// hold a long-lived pool and call [`ChunkScheduler::run_workers`] instead.
    pub fn execute_threaded<F>(&self, num_items: usize, process_chunk: F) -> ScheduleOutcome
    where
        F: Fn(usize) -> u64 + Sync,
    {
        let pool = WorkerPool::new(self.num_workers);
        let mut states = vec![(); self.num_workers];
        self.run_workers(
            &pool,
            num_items,
            SchedulingPolicy::WorkStealing,
            &mut states,
            |_, chunk| process_chunk(chunk),
        )
    }

    /// The chunk ids statically assigned to `worker` under
    /// [`SchedulingPolicy::StaticBlocks`]: the contiguous block `i` with
    /// `i * num_workers / num_chunks == worker`, matching the deterministic
    /// [`ChunkScheduler::simulate`] assignment exactly.
    fn static_block(&self, worker: usize, num_chunks: usize) -> std::ops::Range<usize> {
        if num_chunks == 0 {
            return 0..0;
        }
        // Smallest i with (i * W) / C == w is ceil(w * C / W).
        let start = (worker * num_chunks).div_ceil(self.num_workers);
        let end = ((worker + 1) * num_chunks).div_ceil(self.num_workers);
        start..end.min(num_chunks)
    }

    /// Run every chunk covering `num_items` items on the persistent worker
    /// `pool`, with one mutable state per worker — the engine hot loop's
    /// executor. One call is one phase of the pool's barrier protocol; no
    /// threads are spawned.
    ///
    /// * [`SchedulingPolicy::WorkStealing`]: workers claim chunks one at a time
    ///   from a shared atomic cursor, so an idle worker keeps taking work (§3.6).
    ///   Which worker processes which chunk is nondeterministic, but every chunk is
    ///   processed exactly once.
    /// * [`SchedulingPolicy::StaticBlocks`]: worker `w` processes the same
    ///   contiguous chunk block the deterministic simulation assigns it.
    ///
    /// `process(state, chunk_index)` returns the work units performed and may
    /// freely mutate its worker-local state (frontier buffers, counters, scratch);
    /// the caller merges the states after this barrier. With a single worker (or a
    /// single chunk) everything runs inline on the calling thread, and chunks are
    /// processed in ascending order, which keeps single-worker runs bit-for-bit
    /// identical to the old sequential loop. The pool must have at least
    /// `states.len()` threads; extra pool workers idle through the phase.
    pub fn run_workers<S, F>(
        &self,
        pool: &WorkerPool,
        num_items: usize,
        policy: SchedulingPolicy,
        states: &mut [S],
        process: F,
    ) -> ScheduleOutcome
    where
        S: Send,
        F: Fn(&mut S, usize) -> u64 + Sync,
    {
        assert_eq!(states.len(), self.num_workers, "one state per worker");
        assert!(
            pool.threads() >= self.num_workers,
            "pool of {} threads cannot host {} workers",
            pool.threads(),
            self.num_workers
        );
        let num_chunks = self.num_chunks(num_items);
        let mut per_worker = vec![0u64; self.num_workers];

        if self.num_workers == 1 || num_chunks <= 1 {
            let mut local = 0u64;
            if let Some(state) = states.first_mut() {
                for chunk in 0..num_chunks {
                    local += process(state, chunk);
                }
            }
            per_worker[0] = local;
            let total = local;
            return ScheduleOutcome {
                per_worker_work: per_worker,
                total_work: total,
            };
        }

        let cursor = AtomicUsize::new(0);
        let num_workers = self.num_workers;
        let states_ptr = SendPtr::new(states);
        let loads_ptr = SendPtr::new(&mut per_worker);
        pool.run(&|worker| {
            if worker >= num_workers {
                return;
            }
            // Safety: every worker id in 0..num_workers occurs exactly once per
            // phase, so each state/load slot has a single writer.
            let state = unsafe { &mut *states_ptr.slot(worker) };
            let mut local = 0u64;
            match policy {
                SchedulingPolicy::WorkStealing => loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= num_chunks {
                        break;
                    }
                    local += process(state, chunk);
                },
                SchedulingPolicy::StaticBlocks => {
                    for chunk in self.static_block(worker, num_chunks) {
                        local += process(state, chunk);
                    }
                }
            }
            unsafe { *loads_ptr.slot(worker) = local };
        });
        let total = per_worker.iter().sum();
        ScheduleOutcome {
            per_worker_work: per_worker,
            total_work: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_all_items_exactly_once() {
        let s = ChunkScheduler::new(4, 256);
        let n = 1000;
        assert_eq!(s.num_chunks(n), 4);
        let mut covered = vec![false; n];
        for c in 0..s.num_chunks(n) {
            for i in s.chunk_range(c, n) {
                assert!(!covered[i], "item {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.into_iter().all(|c| c));
    }

    #[test]
    fn last_chunk_is_truncated() {
        let s = ChunkScheduler::new(2, 256);
        assert_eq!(s.chunk_range(3, 1000), 768..1000);
    }

    #[test]
    fn stealing_balances_skewed_chunk_costs() {
        let s = ChunkScheduler::new(4, 1);
        // One expensive chunk, many cheap ones.
        let costs = |c: usize| if c == 0 { 100 } else { 1 };
        let static_outcome = s.simulate(16, SchedulingPolicy::StaticBlocks, costs);
        let stealing_outcome = s.simulate(16, SchedulingPolicy::WorkStealing, costs);
        assert_eq!(static_outcome.total_work, stealing_outcome.total_work);
        assert!(stealing_outcome.makespan() <= static_outcome.makespan());
        assert!(stealing_outcome.imbalance() <= static_outcome.imbalance());
    }

    #[test]
    fn uniform_costs_are_balanced_under_both_policies() {
        let s = ChunkScheduler::new(4, 1);
        let uniform = |_c: usize| 10u64;
        let a = s.simulate(16, SchedulingPolicy::StaticBlocks, uniform);
        let b = s.simulate(16, SchedulingPolicy::WorkStealing, uniform);
        assert!((a.imbalance() - 1.0).abs() < 1e-9);
        assert!((b.imbalance() - 1.0).abs() < 1e-9);
        assert!((a.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_scales_with_worker_count_for_uniform_work() {
        // The Figure 6 shape: more workers, proportionally smaller makespan.
        let costs = |_c: usize| 5u64;
        let mut prev_speedup = 0.0;
        for workers in [1usize, 2, 4, 8] {
            let s = ChunkScheduler::new(workers, 256);
            let outcome = s.simulate(256 * 64, SchedulingPolicy::WorkStealing, costs);
            let speedup = outcome.speedup();
            assert!(speedup > prev_speedup, "speedup should grow with workers");
            assert!((speedup - workers as f64).abs() < 0.2);
            prev_speedup = speedup;
        }
    }

    #[test]
    fn threaded_executor_visits_every_chunk_once() {
        use std::sync::atomic::AtomicU64;
        let s = ChunkScheduler::new(4, 16);
        let n = 1000;
        let visited = AtomicU64::new(0);
        let outcome = s.execute_threaded(n, |chunk| {
            let len = s.chunk_range(chunk, n).len() as u64;
            visited.fetch_add(len, Ordering::Relaxed);
            len
        });
        assert_eq!(visited.load(Ordering::Relaxed), n as u64);
        assert_eq!(outcome.total_work, n as u64);
        assert_eq!(outcome.per_worker_work.len(), 4);
    }

    #[test]
    fn empty_input_produces_empty_outcome() {
        let s = ChunkScheduler::new(3, 256);
        let outcome = s.simulate(0, SchedulingPolicy::WorkStealing, |_| 1);
        assert_eq!(outcome.total_work, 0);
        assert_eq!(outcome.makespan(), 0);
        assert_eq!(outcome.speedup(), 1.0);
        assert_eq!(outcome.imbalance(), 1.0);
        let threaded = s.execute_threaded(0, |_| 1);
        assert_eq!(threaded.total_work, 0);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        ChunkScheduler::new(0, 256);
    }

    #[test]
    fn run_workers_gives_each_worker_its_own_state() {
        let s = ChunkScheduler::new(4, 8);
        let pool = WorkerPool::new(4);
        let n = 512;
        let mut states = vec![Vec::<usize>::new(); 4];
        let outcome = s.run_workers(
            &pool,
            n,
            SchedulingPolicy::WorkStealing,
            &mut states,
            |seen, chunk| {
                seen.push(chunk);
                s.chunk_range(chunk, n).len() as u64
            },
        );
        assert_eq!(outcome.total_work, n as u64);
        let mut all: Vec<usize> = states.into_iter().flatten().collect();
        all.sort_unstable();
        let expected: Vec<usize> = (0..s.num_chunks(n)).collect();
        assert_eq!(all, expected, "every chunk processed exactly once");
    }

    #[test]
    fn run_workers_single_worker_is_inline_and_ordered() {
        let s = ChunkScheduler::new(1, 4);
        let pool = WorkerPool::new(1);
        let caller = std::thread::current().id();
        let mut states = vec![Vec::<(usize, std::thread::ThreadId)>::new()];
        s.run_workers(
            &pool,
            32,
            SchedulingPolicy::WorkStealing,
            &mut states,
            |seen, chunk| {
                seen.push((chunk, std::thread::current().id()));
                1
            },
        );
        let order: Vec<usize> = states[0].iter().map(|(c, _)| *c).collect();
        assert_eq!(
            order,
            (0..8).collect::<Vec<_>>(),
            "chunks in ascending order"
        );
        assert!(
            states[0].iter().all(|(_, id)| *id == caller),
            "no thread spawned"
        );
    }

    #[test]
    fn static_blocks_match_the_deterministic_simulation() {
        for (workers, chunk_size, items) in [(4usize, 8usize, 515usize), (3, 16, 1000), (8, 1, 5)] {
            let s = ChunkScheduler::new(workers, chunk_size);
            let pool = WorkerPool::new(workers);
            let num_chunks = s.num_chunks(items);
            // Real static execution: record which worker ran each chunk.
            let assignment = std::sync::Mutex::new(vec![usize::MAX; num_chunks]);
            let mut states: Vec<usize> = (0..workers).collect();
            s.run_workers(
                &pool,
                items,
                SchedulingPolicy::StaticBlocks,
                &mut states,
                |worker, chunk| {
                    assignment.lock().unwrap()[chunk] = *worker;
                    1
                },
            );
            let got = assignment.into_inner().unwrap();
            for (chunk, &worker) in got.iter().enumerate() {
                let simulated = (chunk * workers) / num_chunks;
                // With >1 chunk the real executor honours the simulated mapping;
                // the single-chunk fast path runs inline on worker 0.
                if num_chunks > 1 {
                    assert_eq!(worker, simulated, "chunk {chunk} of {num_chunks}");
                } else {
                    assert_eq!(worker, 0);
                }
            }
        }
    }
}
