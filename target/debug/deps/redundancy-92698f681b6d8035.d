/root/repo/target/debug/deps/redundancy-92698f681b6d8035.d: crates/bench/benches/redundancy.rs Cargo.toml

/root/repo/target/debug/deps/libredundancy-92698f681b6d8035.rmeta: crates/bench/benches/redundancy.rs Cargo.toml

crates/bench/benches/redundancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
