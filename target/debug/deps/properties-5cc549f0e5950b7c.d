/root/repo/target/debug/deps/properties-5cc549f0e5950b7c.d: tests/properties.rs

/root/repo/target/debug/deps/properties-5cc549f0e5950b7c: tests/properties.rs

tests/properties.rs:
