//! Activity-proportional execution acceptance tests (PR 4): the sparse push
//! scratch must be bit-equivalent to the dense scratch for **every registered
//! application** ([`slfe::apps::AppKind::ALL`]) at 1 and 4 workers — values,
//! work counters and per-`(src_node, dst_node)` message tallies — and the
//! chunk-level activity summaries must actually skip cold chunks in the
//! regimes the paper's workloads produce (late sparse BFS/SSSP iterations,
//! rr-gated early pulls, early-converged arithmetic chunks).

use slfe::apps::{bfs, cc, heat, numpaths, pagerank, spmv, sssp, tunkrank, widestpath, AppKind};
use slfe::core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe::graph::{generators, Graph};
use slfe::metrics::{Counters, Mode};
use slfe::prelude::ClusterConfig;

/// Run `program` twice — dense scratch forced (`sparse_push_density = 0`) and
/// sparse scratch forced (`> 1`) — and require bit-identical values (via
/// `compare`), identical counters (the scratch footprint aside) and identical
/// per-node-pair message tallies.
fn check_sparse_equals_dense<P, V, PF, C>(
    graph: &Graph,
    config: EngineConfig,
    make_program: PF,
    compare: C,
) where
    P: GraphProgram<Value = V>,
    V: Copy + Send + Sync + std::fmt::Debug,
    PF: Fn(&Graph) -> P,
    C: Fn(&[V], &[V], usize),
{
    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let dense_engine = SlfeEngine::build(
            graph,
            cluster.clone(),
            config.clone().with_sparse_push_density(0.0),
        );
        let sparse_engine =
            SlfeEngine::build(graph, cluster, config.clone().with_sparse_push_density(2.0));
        let dense = dense_engine.run(&make_program(graph));
        let sparse = sparse_engine.run(&make_program(graph));
        compare(&dense.values, &sparse.values, workers);
        assert_eq!(dense.stats.iterations, sparse.stats.iterations);
        assert_eq!(dense.converged, sparse.converged);
        let strip_peak = |c: Counters| Counters {
            scratch_bytes_peak: 0,
            ..c
        };
        assert_eq!(
            strip_peak(dense.stats.totals),
            strip_peak(sparse.stats.totals),
            "counters diverge between scratch representations at {workers} workers"
        );
        for src in 0..2 {
            for dst in 0..2 {
                assert_eq!(
                    dense_engine
                        .cluster()
                        .comm_tracker()
                        .messages_between(src, dst),
                    sparse_engine
                        .cluster()
                        .comm_tracker()
                        .messages_between(src, dst),
                    "message tally {src}->{dst} diverges at {workers} workers"
                );
            }
        }
    }
}

fn assert_bits_equal(dense: &[f32], sparse: &[f32], workers: usize, app: AppKind) {
    assert_eq!(dense.len(), sparse.len());
    for (v, (a, b)) in dense.iter().zip(sparse).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{app}: vertex {v} diverges at {workers} workers ({a} vs {b})"
        );
    }
}

#[test]
fn every_registered_program_is_bit_identical_under_sparse_and_dense_scratch() {
    let rmat = generators::rmat(320, 2100, 0.57, 0.19, 0.19, 4100);
    let sym = cc::symmetrize(&generators::rmat(220, 1000, 0.57, 0.19, 0.19, 4150));
    let dag = generators::layered(8, 30, 4, 41);
    let root = slfe::graph::stats::highest_out_degree_vertex(&rmat).unwrap();

    for app in AppKind::ALL {
        eprintln!("checking {app}");
        match app {
            AppKind::Sssp => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default(),
                |_| sssp::SsspProgram { root },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::Bfs => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default(),
                |_| bfs::BfsProgram { root },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::WidestPath => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default(),
                |_| widestpath::WidestPathProgram { root },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::ConnectedComponents => check_sparse_equals_dense(
                &sym,
                EngineConfig::default(),
                cc::CcProgram::for_graph,
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            // Arithmetic programs never push — the checks still pin that the
            // pull-side skipping and lazily-absent push scratch leave their
            // whole execution (values, counters, messages) untouched by the
            // density knob.
            AppKind::PageRank => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default(),
                pagerank::PageRankProgram::for_graph,
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::TunkRank => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default(),
                |_| tunkrank::TunkRankProgram::default(),
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::SpMV => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default(),
                |g: &Graph| spmv::SpmvProgram::ones(g.num_vertices()),
                |d: &[(f32, f32)], s: &[(f32, f32)], k| {
                    for (v, (a, b)) in d.iter().zip(s).enumerate() {
                        assert_eq!(
                            (a.0.to_bits(), a.1.to_bits()),
                            (b.0.to_bits(), b.1.to_bits()),
                            "SpMV: vertex {v} diverges at {k} workers"
                        );
                    }
                },
            ),
            AppKind::HeatSimulation => check_sparse_equals_dense(
                &rmat,
                EngineConfig::default().with_max_iterations(120),
                |g: &Graph| heat::HeatProgram::point_source(g, root),
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
            AppKind::NumPaths => check_sparse_equals_dense(
                &dag,
                EngineConfig::default(),
                |_| numpaths::NumPathsProgram { root: 0 },
                |d, s, k| assert_bits_equal(d, s, k, app),
            ),
        }
    }
}

/// A warm restart over a small batch is push-only with a tiny frontier, so
/// under the default density threshold every phase uses the sparse maps: the
/// `total_workers × O(n)` dense scratch must never materialise.
#[test]
fn warm_push_only_restarts_never_allocate_dense_scratch() {
    let graph = generators::rmat(6000, 48_000, 0.57, 0.19, 0.19, 4200);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let program = sssp::SsspProgram { root };
    let cluster = ClusterConfig::new(2, 4);
    let previous =
        SlfeEngine::build(&graph, cluster.clone(), EngineConfig::default()).run(&program);

    // Perturb quiet corners of the graph (R-MAT concentrates degree on low
    // ids): the push scratch holds one entry per out-edge of an active
    // vertex, so the footprint pin needs a disturbance with small fanout.
    let quiet: Vec<u32> = (0..graph.num_vertices() as u32)
        .filter(|&v| graph.out_degree(v) <= 2 && graph.in_degree(v) <= 2)
        .take(4)
        .collect();
    assert!(quiet.len() == 4, "graph has no quiet vertices to perturb");
    let mut batch = slfe::graph::UpdateBatch::new();
    batch
        .insert(quiet[0], quiet[1], 1.0)
        .insert(quiet[2], quiet[3], 2.5);
    let (mutated, effect) = graph.apply_batch(&batch);
    let dirty = effect.dirty_bitset(mutated.num_vertices());
    let engine = SlfeEngine::build(&mutated, cluster.clone(), EngineConfig::default());
    let warm = engine.run_from(&program, &previous, &dirty);
    assert!(warm.converged);

    // The dense trio would cost at least one 4-byte value per vertex per
    // worker; the sparse maps for a 4-endpoint disturbance stay far below a
    // single worker's share of that.
    let n = mutated.num_vertices() as u64;
    assert!(
        warm.stats.totals.scratch_bytes_peak < 4 * n,
        "warm restart allocated dense-sized scratch: {} bytes for |V| = {n}",
        warm.stats.totals.scratch_bytes_peak
    );
    assert!(
        warm.stats.totals.scratch_bytes_peak > 0,
        "sparse maps should report their footprint"
    );

    // A dense-forced cold run on the same graph pays the full footprint:
    // every pool worker's value buffer alone is 4n bytes.
    let dense_cold = SlfeEngine::build(
        &mutated,
        cluster.clone(),
        EngineConfig::default().with_sparse_push_density(0.0),
    )
    .run(&program);
    let total_workers = cluster.total_workers() as u64;
    assert!(
        dense_cold.stats.totals.scratch_bytes_peak >= total_workers * 4 * n,
        "dense scratch should cost every worker its O(n) buffers, got {}",
        dense_cold.stats.totals.scratch_bytes_peak
    );
    assert!(
        dense_cold.stats.totals.scratch_bytes_peak > warm.stats.totals.scratch_bytes_peak * 20,
        "dense scratch ({}) should dwarf the warm sparse footprint ({})",
        dense_cold.stats.totals.scratch_bytes_peak,
        warm.stats.totals.scratch_bytes_peak
    );
}

/// Late BFS/SSSP iterations have near-empty frontiers: the push-phase activity
/// summaries must skip whole cold chunks, and the per-iteration trace must
/// show the skips happening in the sparse tail, tracking the active set.
#[test]
fn late_sparse_iterations_skip_cold_chunks() {
    // A deep layered graph: the frontier is one layer wide, so at any
    // iteration all chunks outside the moving wave are cold.
    let graph = generators::layered(24, 400, 6, 4300);
    let config = EngineConfig::default();
    for (app, result) in [
        (
            "sssp",
            SlfeEngine::build(&graph, ClusterConfig::new(2, 2), config.clone())
                .run(&sssp::SsspProgram { root: 0 }),
        ),
        (
            "bfs",
            SlfeEngine::build(&graph, ClusterConfig::new(2, 2), config.clone())
                .run(&bfs::BfsProgram { root: 0 }),
        ),
    ] {
        assert!(
            result.stats.totals.chunks_skipped > 0,
            "{app}: no chunks skipped on a frontier one layer wide"
        );
        // Push iterations with a sub-chunk frontier must skip chunks.
        let push_skips: u64 = result
            .stats
            .trace
            .records()
            .iter()
            .filter(|r| r.mode == Mode::Push && r.active_vertices > 0 && r.active_vertices < 256)
            .map(|r| r.counters.chunks_skipped)
            .sum();
        assert!(
            push_skips > 0,
            "{app}: sparse push iterations visited every chunk"
        );
    }
}

/// The "start late" ruler gates whole chunks in early pull iterations
/// (`iter < min last_iter` over the chunk), and the "finish early" ruler
/// retires whole chunks in late arithmetic iterations — both must surface as
/// pull-phase chunk skips.
#[test]
fn rulers_skip_whole_chunks_in_pull_phases() {
    // One layer is ~10% of all edges, comfortably above the 5% pull threshold,
    // so the wave's middle iterations run in pull mode while deeper chunks are
    // still rr-gated.
    let graph = generators::layered(10, 1000, 6, 4400);

    // Min/max: deep chunks are rr-gated while the pull wave is still shallow.
    let sssp = SlfeEngine::build(&graph, ClusterConfig::new(2, 2), EngineConfig::default())
        .run(&sssp::SsspProgram { root: 0 });
    let pull_skips: u64 = sssp
        .stats
        .trace
        .records()
        .iter()
        .filter(|r| r.mode == Mode::Pull)
        .map(|r| r.counters.chunks_skipped)
        .sum();
    assert!(
        pull_skips > 0,
        "rr-gated pull phases visited every chunk (skipped total: {})",
        sssp.stats.totals.chunks_skipped
    );
    // No-RR oracle: identical distances with or without chunk skipping.
    let no_rr = SlfeEngine::build(&graph, ClusterConfig::new(2, 2), EngineConfig::without_rr())
        .run(&sssp::SsspProgram { root: 0 });
    for v in 0..graph.num_vertices() {
        let (a, b) = (sssp.values[v], no_rr.values[v]);
        assert!((a.is_infinite() && b.is_infinite()) || a.to_bits() == b.to_bits());
    }

    // Arithmetic: early-converged chunks retire from late pull iterations.
    let pr = SlfeEngine::build(
        &graph,
        ClusterConfig::new(2, 2),
        EngineConfig::default().with_max_iterations(150),
    )
    .run(&pagerank::PageRankProgram::for_graph(&graph));
    assert!(
        pr.stats.totals.chunks_skipped > 0,
        "no arithmetic chunk fully early-converged"
    );
}

/// Chunk skipping and scratch representation are decided from barrier-merged
/// state only, so `chunks_skipped` must be identical at every worker count.
/// PageRank deliberately: it is pull-only, so every phase takes the chunked
/// global path at every worker count. (Min/max apps are excluded by design —
/// their `workers_per_node: 1` push phases run the chunk-free sequential
/// oracle, which reports no skips; see `Counters::chunks_skipped`.)
#[test]
fn chunk_skip_tallies_are_worker_count_invariant() {
    let graph = generators::layered(16, 300, 5, 4500);
    let mut tallies = Vec::new();
    for workers in [1usize, 2, 4] {
        let result = SlfeEngine::build(
            &graph,
            ClusterConfig::new(2, workers),
            EngineConfig::default(),
        )
        .run(&pagerank::PageRankProgram::for_graph(&graph));
        tallies.push(result.stats.totals.chunks_skipped);
    }
    assert!(
        tallies.windows(2).all(|w| w[0] == w[1]),
        "chunks_skipped varies with worker count: {tallies:?}"
    );
}
