//! Out-of-core execution acceptance tests (PR 5): a graph whose disk-segment
//! footprint exceeds the buffer-pool byte budget must run **every registered
//! min/max application** bit-identically to the in-memory store at 1 and 4
//! workers, with the pool provably cycling (`segment_bytes_read` greater than
//! the budget), peak residency pinned at or below the budget, and the
//! activity summaries doubling as the I/O planner (skipped chunks fault no
//! segments). Arithmetic applications are covered too — they only pull, so
//! the CSC streaming path is everything they touch.

use slfe::apps::{bfs, cc, pagerank, sssp, widestpath, AppKind};
use slfe::core::{EngineConfig, GraphProgram, SlfeEngine};
use slfe::graph::{generators, Graph};
use slfe::prelude::ClusterConfig;

/// Pool budget (bytes) used across these tests: small enough that the test
/// graphs' footprints exceed it several times over, large enough to hold
/// every concurrently pinned cursor segment.
const BUDGET: u64 = 96 << 10;
/// Segment size (bytes): small, so the directory has a real population.
const SEGMENT: usize = 4 << 10;

fn oocore_config() -> EngineConfig {
    EngineConfig::default()
        .with_storage_budget(BUDGET)
        .with_storage_segment_bytes(SEGMENT)
}

/// Run `program` on the in-memory store and on the segment store at 1 and 4
/// workers per node; values must be bit-identical everywhere, and the
/// out-of-core run must actually stream (bytes read > budget) while never
/// holding more than the budget resident.
fn check_oocore_equals_memory<P, PF>(graph: &Graph, app: AppKind, make_program: PF)
where
    P: GraphProgram<Value = f32>,
    PF: Fn(&Graph) -> P,
{
    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let memory_engine = SlfeEngine::build(
            graph,
            cluster.clone(),
            EngineConfig::default().with_trace(false),
        );
        let oocore_engine = SlfeEngine::build(graph, cluster, oocore_config().with_trace(false));
        let storage = oocore_engine.storage().expect("storage requested");
        assert!(
            storage.footprint_bytes() > BUDGET,
            "{app}: test graph's segment footprint {} must exceed the {BUDGET} B budget",
            storage.footprint_bytes()
        );
        let memory = memory_engine.run(&make_program(graph));
        let oocore = oocore_engine.run(&make_program(graph));
        for (v, (a, b)) in memory.values.iter().zip(&oocore.values).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{app}: vertex {v} diverges at {workers} workers ({a} vs {b})"
            );
        }
        assert_eq!(memory.stats.iterations, oocore.stats.iterations);
        assert_eq!(memory.converged, oocore.converged);
        // Work counters must match exactly — streaming changes which bytes
        // are resident, never what is computed.
        assert_eq!(
            memory.stats.totals.edge_computations, oocore.stats.totals.edge_computations,
            "{app}: edge computations diverge at {workers} workers"
        );
        assert_eq!(
            memory.stats.totals.vertex_updates,
            oocore.stats.totals.vertex_updates
        );
        // The in-memory run reports no I/O; the out-of-core run must have
        // cycled the pool (footprint > budget forces refaults).
        assert_eq!(memory.stats.totals.segments_faulted, 0);
        assert_eq!(memory.stats.totals.segment_bytes_read, 0);
        assert!(
            oocore.stats.totals.segments_faulted > 0,
            "{app}: no segments faulted at {workers} workers"
        );
        assert!(
            oocore.stats.totals.segment_bytes_read > BUDGET,
            "{app}: streamed only {} B against a {BUDGET} B budget at {workers} workers",
            oocore.stats.totals.segment_bytes_read
        );
        assert!(
            storage.pool().peak_resident_bytes() <= BUDGET,
            "{app}: pool peaked at {} B over the {BUDGET} B budget at {workers} workers",
            storage.pool().peak_resident_bytes()
        );
    }
}

#[test]
fn every_registered_minmax_app_is_bit_identical_out_of_core() {
    // Dense enough that CSR+CSC segments far exceed the pool budget.
    let rmat = generators::rmat(12_000, 96_000, 0.57, 0.19, 0.19, 5100);
    let sym = cc::symmetrize(&generators::rmat(6_000, 42_000, 0.57, 0.19, 0.19, 5150));
    let root = slfe::graph::stats::highest_out_degree_vertex(&rmat).unwrap();

    for app in AppKind::ALL {
        if app.aggregation() != slfe::core::AggregationKind::MinMax {
            continue;
        }
        eprintln!("checking {app}");
        match app {
            AppKind::Sssp => check_oocore_equals_memory(&rmat, app, |_| sssp::SsspProgram { root }),
            AppKind::Bfs => check_oocore_equals_memory(&rmat, app, |_| bfs::BfsProgram { root }),
            AppKind::WidestPath => {
                check_oocore_equals_memory(&rmat, app, |_| widestpath::WidestPathProgram { root })
            }
            AppKind::ConnectedComponents => {
                check_oocore_equals_memory(&sym, app, cc::CcProgram::for_graph)
            }
            _ => unreachable!("min/max filter above"),
        }
    }
}

#[test]
fn arithmetic_pull_streams_csc_bit_identically() {
    let rmat = generators::rmat(10_000, 80_000, 0.57, 0.19, 0.19, 5200);
    check_oocore_equals_memory(
        &rmat,
        AppKind::PageRank,
        pagerank::PageRankProgram::for_graph,
    );
}

/// The activity summaries double as the I/O planner: a deep layered SSSP
/// whose frontier is one layer wide must fault far fewer segment-bytes than
/// a frontier-blind pass over every chunk would, because skipped chunks
/// never touch the cursor.
#[test]
fn skipped_chunks_fault_no_segments() {
    let layered = generators::layered(24, 1_000, 6, 5300);
    let engine = SlfeEngine::build(
        &layered,
        ClusterConfig::new(2, 4),
        oocore_config().with_trace(false),
    );
    let result = engine.run(&sssp::SsspProgram { root: 0 });
    assert!(result.converged);
    assert!(
        result.stats.totals.chunks_skipped > 0,
        "the layered wave must skip cold chunks"
    );
    // A frontier-blind executor would stream ~footprint bytes per iteration.
    let storage = engine.storage().unwrap();
    let blind_bytes = storage.footprint_bytes() * result.stats.iterations as u64;
    assert!(
        result.stats.totals.segment_bytes_read < blind_bytes / 4,
        "activity-planned I/O ({} B) should be well under a frontier-blind sweep ({blind_bytes} B)",
        result.stats.totals.segment_bytes_read
    );
}

/// Warm serving restarts on the segment store: `SlfeEngine::run_from` must
/// reproduce a cold out-of-core run bit-for-bit (the warm path exercises the
/// push streaming through the sequential and chunked paths alike).
#[test]
fn warm_restart_is_bit_identical_out_of_core() {
    use slfe::graph::UpdateBatch;
    let graph = generators::rmat(8_000, 64_000, 0.57, 0.19, 0.19, 5400);
    let root = slfe::graph::stats::highest_out_degree_vertex(&graph).unwrap();
    let program = sssp::SsspProgram { root };
    let mut batch = UpdateBatch::new();
    let mut rng = slfe::graph::rng::SplitMix64::seed_from_u64(9);
    for _ in 0..30 {
        let src = rng.range_u32(0, graph.num_vertices() as u32);
        let dst = rng.range_u32(0, graph.num_vertices() as u32);
        batch.insert(src, dst, rng.range_f32(1.0, 8.0));
    }
    let (mutated, effect) = graph.apply_batch(&batch);
    let dirty = effect.dirty_bitset(mutated.num_vertices());
    for workers in [1usize, 4] {
        let cluster = ClusterConfig::new(2, workers);
        let previous = SlfeEngine::build(&graph, cluster.clone(), oocore_config()).run(&program);
        let warm_engine = SlfeEngine::build(&mutated, cluster.clone(), oocore_config());
        let warm = warm_engine.run_from(&program, &previous, &dirty);
        let cold = SlfeEngine::build(&mutated, cluster, EngineConfig::default()).run(&program);
        assert_eq!(
            warm.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            cold.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "warm out-of-core restart diverges from cold in-memory at {workers} workers"
        );
        assert!(warm.converged);
    }
}
