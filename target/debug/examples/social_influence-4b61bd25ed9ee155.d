/root/repo/target/debug/examples/social_influence-4b61bd25ed9ee155.d: examples/social_influence.rs

/root/repo/target/debug/examples/social_influence-4b61bd25ed9ee155: examples/social_influence.rs

examples/social_influence.rs:
