//! Synthetic graph generators.
//!
//! The paper evaluates on seven real-world graphs plus a Graph500-style RMAT graph.
//! Real downloads are not available in this environment, so [`crate::datasets`]
//! builds scaled-down proxies from the generators in this module. RMAT is the
//! workhorse: with parameters `(a, b, c)` around `(0.57, 0.19, 0.19)` it produces the
//! heavy-tailed degree distributions that drive the redundancy behaviour the paper
//! measures (many propagation levels, a small number of very high-degree hubs).

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use crate::rng::SplitMix64;
use crate::types::VertexId;

/// Generate an RMAT (recursive-matrix) graph with `num_vertices` vertices and
/// approximately `num_edges` edges.
///
/// `a`, `b`, `c` are the probabilities of recursing into the top-left, top-right and
/// bottom-left quadrant respectively (`d = 1 - a - b - c`). The classic Graph500
/// parameters are `a = 0.57, b = 0.19, c = 0.19`.
///
/// Edge weights are drawn uniformly from `[1, 10)` so that min/max applications
/// (SSSP, WidestPath) have non-trivial inputs. Self loops and duplicate edges are
/// removed, so the final edge count can be slightly below `num_edges`.
pub fn rmat(num_vertices: usize, num_edges: usize, a: f64, b: f64, c: f64, seed: u64) -> Graph {
    assert!(num_vertices > 0, "RMAT graph needs at least one vertex");
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-9,
        "invalid RMAT probabilities"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    // Number of levels of recursion: ceil(log2(num_vertices)).
    let levels = usize::BITS - (num_vertices.max(2) - 1).leading_zeros();
    let mut builder = GraphBuilder::new()
        .with_vertices(num_vertices)
        .deduplicate(true)
        .drop_self_loops(true);
    // RMAT naturally produces duplicate pairs (that is where the skew comes from), so
    // keep sampling until `num_edges` *distinct* non-loop edges exist or the attempt
    // budget runs out. This keeps the proxy datasets close to their target average
    // degree (Table 4) instead of losing half the edges to de-duplication.
    let mut seen = std::collections::HashSet::with_capacity(num_edges * 2);
    let max_attempts = num_edges.saturating_mul(8).max(16);
    let mut attempts = 0usize;
    while seen.len() < num_edges && attempts < max_attempts {
        attempts += 1;
        let (mut lo_r, mut hi_r) = (0usize, num_vertices);
        let (mut lo_c, mut hi_c) = (0usize, num_vertices);
        for _ in 0..levels {
            if hi_r - lo_r <= 1 && hi_c - lo_c <= 1 {
                break;
            }
            let p: f64 = rng.next_f64();
            let (row_hi, col_hi) = if p < a {
                (false, false)
            } else if p < a + b {
                (false, true)
            } else if p < a + b + c {
                (true, false)
            } else {
                (true, true)
            };
            let mid_r = lo_r + (hi_r - lo_r) / 2;
            let mid_c = lo_c + (hi_c - lo_c) / 2;
            if hi_r - lo_r > 1 {
                if row_hi {
                    lo_r = mid_r;
                } else {
                    hi_r = mid_r;
                }
            }
            if hi_c - lo_c > 1 {
                if col_hi {
                    lo_c = mid_c;
                } else {
                    hi_c = mid_c;
                }
            }
        }
        let src = lo_r.min(num_vertices - 1) as VertexId;
        let dst = lo_c.min(num_vertices - 1) as VertexId;
        if src == dst || !seen.insert((src, dst)) {
            continue;
        }
        let weight = rng.range_f32(1.0, 10.0);
        builder.add_edge(src, dst, weight);
    }
    builder.build()
}

/// Generate an Erdős–Rényi `G(n, m)` graph: `num_edges` edges drawn uniformly at
/// random between distinct vertices, deduplicated.
pub fn erdos_renyi(num_vertices: usize, num_edges: usize, seed: u64) -> Graph {
    assert!(
        num_vertices > 1,
        "Erdős–Rényi graph needs at least two vertices"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut builder = GraphBuilder::new()
        .with_vertices(num_vertices)
        .deduplicate(true)
        .drop_self_loops(true);
    for _ in 0..num_edges {
        let src = rng.range_usize(0, num_vertices) as VertexId;
        let dst = rng.range_usize(0, num_vertices) as VertexId;
        let weight = rng.range_f32(1.0, 10.0);
        builder.add_edge(src, dst, weight);
    }
    builder.build()
}

/// A directed path `0 -> 1 -> ... -> n-1` with unit weights.
///
/// Paths maximise the number of propagation levels, making them the worst case for
/// label-propagation redundancy and a good stress test for the "start late" rule.
pub fn path(num_vertices: usize) -> Graph {
    let mut builder = GraphBuilder::new().with_vertices(num_vertices);
    for v in 1..num_vertices {
        builder.add_unweighted((v - 1) as VertexId, v as VertexId);
    }
    builder.build()
}

/// A directed cycle `0 -> 1 -> ... -> n-1 -> 0` with unit weights.
pub fn cycle(num_vertices: usize) -> Graph {
    assert!(num_vertices >= 2, "cycle needs at least two vertices");
    let mut builder = GraphBuilder::new().with_vertices(num_vertices);
    for v in 0..num_vertices {
        builder.add_unweighted(v as VertexId, ((v + 1) % num_vertices) as VertexId);
    }
    builder.build()
}

/// A star with `num_leaves` leaves: vertex 0 points to every leaf.
pub fn star(num_leaves: usize) -> Graph {
    let mut builder = GraphBuilder::new().with_vertices(num_leaves + 1);
    for leaf in 1..=num_leaves {
        builder.add_unweighted(0, leaf as VertexId);
    }
    builder.build()
}

/// A complete directed graph on `n` vertices (every ordered pair, no self loops).
pub fn complete(n: usize) -> Graph {
    let mut builder = GraphBuilder::new().with_vertices(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                builder.add_unweighted(u as VertexId, v as VertexId);
            }
        }
    }
    builder.build()
}

/// A `rows x cols` grid with edges pointing right and down, unit weights.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    let mut builder = GraphBuilder::new().with_vertices(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                builder.add_unweighted(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                builder.add_unweighted(id(r, c), id(r + 1, c));
            }
        }
    }
    builder.build()
}

/// A layered DAG: `layers` layers of `width` vertices each; every vertex of layer
/// `i` has up to `fanout` weighted edges to vertices of layer `i + 1` — one
/// "spine" edge to its own slot plus `fanout - 1` random ones.
///
/// Layered graphs maximise the depth of the propagation structure while keeping a
/// wide frontier, which is exactly the regime where the paper's "start late" rule
/// pays off: a vertex in layer `i` cannot receive its final value before iteration
/// `i`, so every earlier computation on it is redundant. The spine edge guarantees
/// every non-first-layer vertex has an in-edge, so the only propagation roots are
/// layer 0 and the RR guidance level of a vertex is exactly its layer index
/// (random-only targets leave a few isolated mid-layer vertices whose zero
/// in-degree seeds early BFS waves and flattens the level structure).
pub fn layered(layers: usize, width: usize, fanout: usize, seed: u64) -> Graph {
    assert!(
        layers >= 1 && width >= 1,
        "need at least one layer and one vertex per layer"
    );
    let mut rng = SplitMix64::seed_from_u64(seed);
    let id = |layer: usize, slot: usize| (layer * width + slot) as VertexId;
    let mut builder = GraphBuilder::new()
        .with_vertices(layers * width)
        .deduplicate(true)
        .drop_self_loops(true);
    for layer in 0..layers.saturating_sub(1) {
        for slot in 0..width {
            builder.add_edge(
                id(layer, slot),
                id(layer + 1, slot),
                rng.range_f32(1.0, 5.0),
            );
            for _ in 1..fanout {
                let dst_slot = rng.range_usize(0, width);
                let weight = rng.range_f32(1.0, 5.0);
                builder.add_edge(id(layer, slot), id(layer + 1, dst_slot), weight);
            }
        }
    }
    builder.build()
}

/// A complete binary out-tree with `depth` levels below the root (depth 0 = root only).
pub fn binary_tree(depth: u32) -> Graph {
    let num_vertices = (1usize << (depth + 1)) - 1;
    let mut builder = GraphBuilder::new().with_vertices(num_vertices);
    for v in 0..num_vertices {
        let left = 2 * v + 1;
        let right = 2 * v + 2;
        if left < num_vertices {
            builder.add_unweighted(v as VertexId, left as VertexId);
        }
        if right < num_vertices {
            builder.add_unweighted(v as VertexId, right as VertexId);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmat_respects_vertex_count_and_is_valid() {
        let g = rmat(128, 1000, 0.57, 0.19, 0.19, 1);
        assert_eq!(g.num_vertices(), 128);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 1000);
        g.validate().unwrap();
    }

    #[test]
    fn rmat_is_deterministic_for_a_seed() {
        let g1 = rmat(64, 300, 0.57, 0.19, 0.19, 7);
        let g2 = rmat(64, 300, 0.57, 0.19, 0.19, 7);
        assert_eq!(g1.num_edges(), g2.num_edges());
        for v in g1.vertices() {
            assert_eq!(g1.out_neighbors(v), g2.out_neighbors(v));
        }
    }

    #[test]
    fn rmat_is_skewed_toward_low_ids() {
        // With a = 0.57 the mass concentrates in the low-id quadrant, so the top
        // quarter of the id space should own fewer edges than the bottom quarter.
        let g = rmat(256, 4000, 0.57, 0.19, 0.19, 3);
        let low: usize = (0..64).map(|v| g.out_degree(v)).sum();
        let high: usize = (192..256).map(|v| g.out_degree(v)).sum();
        assert!(
            low > high,
            "low-id quadrant ({low}) should dominate high-id ({high})"
        );
    }

    #[test]
    fn erdos_renyi_has_no_self_loops() {
        let g = erdos_renyi(50, 400, 11);
        for v in g.vertices() {
            assert!(!g.has_edge(v, v));
        }
        g.validate().unwrap();
    }

    #[test]
    fn path_has_linear_structure() {
        let g = path(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.out_degree(0), 1);
        assert_eq!(g.out_degree(9), 0);
        assert_eq!(g.in_degree(0), 0);
        assert!(g.has_edge(3, 4));
    }

    #[test]
    fn cycle_every_vertex_has_degree_one_each_way() {
        let g = cycle(7);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 1);
            assert_eq!(g.in_degree(v), 1);
        }
        assert!(g.has_edge(6, 0));
    }

    #[test]
    fn star_center_has_all_out_edges() {
        let g = star(12);
        assert_eq!(g.num_vertices(), 13);
        assert_eq!(g.out_degree(0), 12);
        assert_eq!(g.in_degree(0), 0);
        for leaf in 1..13 {
            assert_eq!(g.in_degree(leaf), 1);
        }
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 30);
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 5);
            assert_eq!(g.in_degree(v), 5);
        }
    }

    #[test]
    fn grid_edge_count() {
        let g = grid(3, 4);
        // horizontal: 3 * 3, vertical: 2 * 4
        assert_eq!(g.num_edges(), 9 + 8);
        assert_eq!(g.num_vertices(), 12);
        g.validate().unwrap();
    }

    #[test]
    fn layered_graph_only_connects_adjacent_layers() {
        let g = layered(5, 10, 3, 42);
        assert_eq!(g.num_vertices(), 50);
        for v in g.vertices() {
            let layer = v as usize / 10;
            for &u in g.out_neighbors(v) {
                assert_eq!(u as usize / 10, layer + 1, "edge {v}->{u} skips a layer");
            }
        }
        // Last layer has no outgoing edges; first layer has no incoming edges.
        for slot in 0..10u32 {
            assert_eq!(g.out_degree(40 + slot), 0);
            assert_eq!(g.in_degree(slot), 0);
        }
    }

    #[test]
    fn layered_graph_is_deterministic_and_respects_fanout_cap() {
        let a = layered(4, 8, 4, 7);
        let b = layered(4, 8, 4, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        for v in a.vertices() {
            assert!(a.out_degree(v) <= 4);
        }
    }

    #[test]
    fn binary_tree_structure() {
        let g = binary_tree(3);
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.out_degree(0), 2);
        // leaves have no children
        for v in 7..15 {
            assert_eq!(g.out_degree(v), 0);
        }
    }
}
