//! Wall-clock benchmarks backing Figures 6, 7 and 10: worker-count scaling of the
//! engine's real thread pool, node-count scaling, and the work-stealing ablation.
//!
//! The dedicated `parallel_bench` binary produces the machine-readable
//! `BENCH_parallel.json` scaling record; this bench is the quick human-readable
//! spot check.

use slfe_apps::AppKind;
use slfe_bench::timing::{report, time_best_of};
use slfe_bench::{runner, EngineKind};
use slfe_cluster::{ChunkScheduler, ClusterConfig, SchedulingPolicy};
use slfe_graph::datasets::Dataset;

fn main() {
    let graph = Dataset::LiveJournal.load_scaled(16_000);
    let runs = 5;

    // Figure 6: intra-node worker sweep (wall clock of the whole run, real threads).
    println!("== fig6_intra_node_workers ==");
    for workers in [1usize, 4, 16] {
        let sample = time_best_of(runs, || {
            runner::run_app(
                EngineKind::Slfe,
                AppKind::PageRank,
                &graph,
                ClusterConfig::new(1, workers),
            )
        });
        report(&format!("pagerank_{workers}_workers"), sample);
    }

    // Figure 7: inter-node sweep.
    println!("== fig7_inter_node_nodes ==");
    for nodes in [1usize, 4, 8] {
        let sample = time_best_of(runs, || {
            runner::run_app(
                EngineKind::Slfe,
                AppKind::PageRank,
                &graph,
                ClusterConfig::new(nodes, 4),
            )
        });
        report(&format!("pagerank_{nodes}_nodes"), sample);
    }

    // Figure 10a: scheduler ablation on a synthetic skewed chunk-cost distribution.
    println!("== fig10a_stealing_ablation ==");
    let scheduler = ChunkScheduler::new(8, 256);
    let items = 256 * 512;
    let cost = |chunk: usize| {
        if chunk.is_multiple_of(37) {
            2000u64
        } else {
            50
        }
    };
    for (name, policy) in [
        ("static_blocks", SchedulingPolicy::StaticBlocks),
        ("work_stealing", SchedulingPolicy::WorkStealing),
    ] {
        let sample = time_best_of(20, || scheduler.simulate(items, policy, cost));
        report(name, sample);
    }
}
