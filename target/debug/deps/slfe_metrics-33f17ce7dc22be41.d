/root/repo/target/debug/deps/slfe_metrics-33f17ce7dc22be41.d: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/debug/deps/libslfe_metrics-33f17ce7dc22be41.rlib: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

/root/repo/target/debug/deps/libslfe_metrics-33f17ce7dc22be41.rmeta: crates/metrics/src/lib.rs crates/metrics/src/counters.rs crates/metrics/src/imbalance.rs crates/metrics/src/report.rs crates/metrics/src/stats.rs crates/metrics/src/trace.rs

crates/metrics/src/lib.rs:
crates/metrics/src/counters.rs:
crates/metrics/src/imbalance.rs:
crates/metrics/src/report.rs:
crates/metrics/src/stats.rs:
crates/metrics/src/trace.rs:
