//! Deterministic, seeded I/O fault injection.
//!
//! Production storage fails in more ways than process death: a transient
//! `EINTR`-class hiccup, a short read, a disk that silently fills, an fsync
//! the kernel refuses. This module gives every disk touchpoint in the stack
//! (segment reads/writes, WAL append/open/trim, snapshot write/rename/read) a
//! shared, *deterministic* fault schedule so tests can drive each site through
//! each failure mode and pin the recovery behaviour — bit-identical values or
//! a typed error, never a panic.
//!
//! Design:
//!
//! - A [`FaultPlan`] is plain data: a list of rules, each naming a
//!   [`FaultSite`], the call index (per site, counted from arming) at which it
//!   fires, and a [`FaultKind`]. Plans are `Clone + PartialEq` and can sit in
//!   server config.
//! - A [`FaultInjector`] is the runtime half: per-site atomic call counters,
//!   an armed flag, and cumulative [`FaultCounters`]. It is `Arc`-shared by
//!   every layer of one server so a single schedule covers the whole stack.
//!   Disarmed injectors cost one relaxed atomic load per I/O call and inject
//!   nothing — the default for production servers.
//! - [`with_retries`] is the bounded exponential-backoff loop every recovery
//!   site uses; [`RetryPolicy`] carries the knobs.
//!
//! Determinism: schedules are indexed by per-site call counts, not clocks, so
//! the same plan against the same workload fires at exactly the same
//! operations on every run.

use crate::rng::SplitMix64;
use slfe_metrics::FaultCounters;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Every distinct disk touchpoint that can have faults injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Reading a segment from a `SegmentedStore` file into the buffer pool.
    SegmentRead,
    /// Appending an encoded segment to a store file (build, patch, rebuild).
    SegmentWrite,
    /// Writing a WAL frame.
    WalAppend,
    /// Fsyncing the WAL after an append.
    WalFsync,
    /// Reading the WAL during `Wal::open` recovery scan.
    WalOpen,
    /// Truncating the WAL after a successful snapshot.
    WalTrim,
    /// Writing + syncing the snapshot temp file.
    SnapshotWrite,
    /// Atomically renaming the snapshot temp file into place.
    SnapshotRename,
    /// Reading the snapshot during recovery.
    SnapshotRead,
}

/// All injection sites, in a stable order (used by sweeps and benches).
pub const ALL_FAULT_SITES: [FaultSite; 9] = [
    FaultSite::SegmentRead,
    FaultSite::SegmentWrite,
    FaultSite::WalAppend,
    FaultSite::WalFsync,
    FaultSite::WalOpen,
    FaultSite::WalTrim,
    FaultSite::SnapshotWrite,
    FaultSite::SnapshotRename,
    FaultSite::SnapshotRead,
];

impl FaultSite {
    /// Stable lowercase name (bench JSON, error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::SegmentRead => "segment_read",
            FaultSite::SegmentWrite => "segment_write",
            FaultSite::WalAppend => "wal_append",
            FaultSite::WalFsync => "wal_fsync",
            FaultSite::WalOpen => "wal_open",
            FaultSite::WalTrim => "wal_trim",
            FaultSite::SnapshotWrite => "snapshot_write",
            FaultSite::SnapshotRename => "snapshot_rename",
            FaultSite::SnapshotRead => "snapshot_read",
        }
    }

    fn index(self) -> usize {
        ALL_FAULT_SITES.iter().position(|s| *s == self).unwrap_or(0)
    }
}

/// What kind of failure a rule injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The next `failures` calls at the site fail, then the site heals.
    /// Bounded retries must absorb these with no observable effect.
    Transient {
        /// Number of consecutive calls that fail once the rule fires.
        failures: u32,
    },
    /// Every call at the site from `at_call` onward fails. Recovery must
    /// degrade: quarantine + rebuild for segment reads, read-only mode for
    /// write-side sites.
    Permanent,
    /// Exactly one call delivers fewer bytes than requested (reads come back
    /// truncated, writes land partially before erroring).
    ShortIo,
    /// Every call from `at_call` onward fails with ENOSPC. Never retried —
    /// a full disk does not heal by itself — and flips the server read-only.
    DiskFull,
}

/// One scheduled fault: `kind` at `site`, firing at per-site call `at_call`
/// (call indices count from the moment the plan is armed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// Which disk touchpoint this rule applies to.
    pub site: FaultSite,
    /// Per-site call index (counted from arming) at which the rule fires.
    pub at_call: u64,
    /// Failure mode injected once the rule fires.
    pub kind: FaultKind,
}

/// A deterministic fault schedule: plain data, buildable by tests and
/// benches, attachable to a server config.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing even when armed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a rule; builder-style.
    pub fn fail(mut self, site: FaultSite, at_call: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            site,
            at_call,
            kind,
        });
        self
    }

    /// A seeded chaos schedule: every site gets one transient fault (1–2
    /// consecutive failures) at a small pseudo-random call offset. Because
    /// all faults are transient, a server driven under this plan must finish
    /// bit-identical to a fault-free run.
    pub fn seeded_transient(seed: u64) -> Self {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0xFA17_F1A5);
        let mut plan = Self::new();
        for site in ALL_FAULT_SITES {
            let at_call = rng.next_u64() % 4;
            let failures = 1 + (rng.next_u64() % 2) as u32;
            plan = plan.fail(site, at_call, FaultKind::Transient { failures });
        }
        plan
    }

    /// The scheduled rules.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// True when no rules are scheduled.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// What a faulted call site must do right now.
#[derive(Debug)]
pub enum FaultAction {
    /// Fail the operation with this error without touching the disk.
    Error(io::Error),
    /// Perform the I/O but deliver/persist fewer bytes than requested, then
    /// report the short transfer as an error.
    ShortIo,
}

#[derive(Debug, Default)]
struct AtomicFaultCounters {
    injected_transient: AtomicU64,
    injected_permanent: AtomicU64,
    injected_short_io: AtomicU64,
    injected_disk_full: AtomicU64,
    io_retries: AtomicU64,
    io_retry_successes: AtomicU64,
    segments_quarantined: AtomicU64,
    poisoned_runs: AtomicU64,
}

/// Runtime fault state shared (via `Arc`) by every disk touchpoint of one
/// server: the armed schedule, per-site call counters, and cumulative
/// recovery counters. Counters accumulate even across re-arming.
#[derive(Debug)]
pub struct FaultInjector {
    armed: AtomicBool,
    rules: Mutex<Vec<FaultRule>>,
    calls: [AtomicU64; ALL_FAULT_SITES.len()],
    counters: AtomicFaultCounters,
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self {
            armed: AtomicBool::new(false),
            rules: Mutex::new(Vec::new()),
            calls: Default::default(),
            counters: AtomicFaultCounters::default(),
        }
    }
}

impl FaultInjector {
    /// A disarmed injector: one relaxed atomic load per I/O call, injects
    /// nothing. The default for every server.
    pub fn disabled() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// An injector armed with `plan` from construction (call counters start
    /// at zero), so faults can fire during open/recovery paths.
    pub fn armed(plan: FaultPlan) -> Arc<Self> {
        let inj = Self::disabled();
        inj.arm(plan);
        inj
    }

    /// Arm (or re-arm) the injector with `plan`. Per-site call counters reset
    /// to zero so `at_call` indices are relative to this arming point;
    /// cumulative fault counters are preserved.
    pub fn arm(&self, plan: FaultPlan) {
        let mut rules = self.rules.lock().expect("fault rule lock poisoned");
        *rules = plan.rules;
        for c in &self.calls {
            c.store(0, Ordering::Relaxed);
        }
        self.armed.store(true, Ordering::Release);
    }

    /// Disarm: subsequent I/O calls inject nothing (counters retained).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::Release);
    }

    /// True when a plan is armed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire)
    }

    /// Called by a site immediately before performing real I/O. Advances the
    /// site's call counter and returns the action to take, if any fault is
    /// scheduled for this call.
    pub fn on_io(&self, site: FaultSite) -> Option<FaultAction> {
        if !self.armed.load(Ordering::Acquire) {
            return None;
        }
        let call = self.calls[site.index()].fetch_add(1, Ordering::Relaxed);
        let rules = self.rules.lock().expect("fault rule lock poisoned");
        for rule in rules.iter().filter(|r| r.site == site) {
            let fires = match rule.kind {
                FaultKind::Transient { failures } => {
                    call >= rule.at_call && call < rule.at_call.saturating_add(failures as u64)
                }
                FaultKind::Permanent | FaultKind::DiskFull => call >= rule.at_call,
                FaultKind::ShortIo => call == rule.at_call,
            };
            if !fires {
                continue;
            }
            return Some(match rule.kind {
                FaultKind::Transient { .. } => {
                    self.counters
                        .injected_transient
                        .fetch_add(1, Ordering::Relaxed);
                    FaultAction::Error(io::Error::other(format!(
                        "injected transient fault at {} (call {call})",
                        site.name()
                    )))
                }
                FaultKind::Permanent => {
                    self.counters
                        .injected_permanent
                        .fetch_add(1, Ordering::Relaxed);
                    FaultAction::Error(io::Error::other(format!(
                        "injected permanent fault at {} (call {call})",
                        site.name()
                    )))
                }
                FaultKind::ShortIo => {
                    self.counters
                        .injected_short_io
                        .fetch_add(1, Ordering::Relaxed);
                    FaultAction::ShortIo
                }
                FaultKind::DiskFull => {
                    self.counters
                        .injected_disk_full
                        .fetch_add(1, Ordering::Relaxed);
                    FaultAction::Error(disk_full_error(site))
                }
            });
        }
        None
    }

    /// Record one retry attempt by a backoff loop.
    pub fn note_retry(&self) {
        self.counters.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a retried operation that eventually succeeded.
    pub fn note_retry_success(&self) {
        self.counters
            .io_retry_successes
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record a segment quarantined and rebuilt from the recovery source.
    pub fn note_quarantine(&self) {
        self.counters
            .segments_quarantined
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Record an engine run poisoned by an unrecoverable segment read.
    pub fn note_poisoned_run(&self) {
        self.counters.poisoned_runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the cumulative counters.
    pub fn counters(&self) -> FaultCounters {
        FaultCounters {
            injected_transient: self.counters.injected_transient.load(Ordering::Relaxed),
            injected_permanent: self.counters.injected_permanent.load(Ordering::Relaxed),
            injected_short_io: self.counters.injected_short_io.load(Ordering::Relaxed),
            injected_disk_full: self.counters.injected_disk_full.load(Ordering::Relaxed),
            io_retries: self.counters.io_retries.load(Ordering::Relaxed),
            io_retry_successes: self.counters.io_retry_successes.load(Ordering::Relaxed),
            segments_quarantined: self.counters.segments_quarantined.load(Ordering::Relaxed),
            poisoned_runs: self.counters.poisoned_runs.load(Ordering::Relaxed),
        }
    }
}

/// Raw OS code for ENOSPC ("no space left on device").
const ENOSPC: i32 = 28;

fn disk_full_error(site: FaultSite) -> io::Error {
    if cfg!(unix) {
        io::Error::from_raw_os_error(ENOSPC)
    } else {
        io::Error::other(format!("injected ENOSPC at {}", site.name()))
    }
}

/// True when `e` is a disk-full condition. Disk-full errors are never
/// retried: a full disk does not heal on a backoff timer.
pub fn is_disk_full(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC) || e.to_string().contains("ENOSPC")
}

/// Bounded exponential-backoff retry knobs for transient I/O failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ms << n`, capped below.
    pub backoff_base_ms: u64,
    /// Upper bound on a single backoff sleep.
    pub backoff_cap_ms: u64,
    /// Seed for deterministic backoff jitter; 0 (the default) disables
    /// jitter and keeps the legacy fixed schedule. When set, each retrier
    /// sleeps `backoff/2 + jitter` with the jitter drawn from a
    /// [`SplitMix64`] stream keyed by `(jitter_seed, retrier, attempt)` —
    /// concurrent retriers that failed at the same instant no longer wake
    /// (and hammer the same device) in lockstep, while a fixed seed keeps
    /// every sleep reproducible. Jitter only moves wake-up *times*; retry
    /// counts and outcomes are unchanged, so fault-sweep bit-identity is
    /// unaffected.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 16,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            backoff_base_ms: 0,
            backoff_cap_ms: 0,
            jitter_seed: 0,
        }
    }

    /// Enable deterministic jitter, deriving the stream from `seed`
    /// (typically the fault plan's seed so one knob drives both schedules).
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Sleep duration before retry attempt `attempt` (0-indexed).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let ms = self
            .backoff_base_ms
            .saturating_shl(attempt.min(16))
            .min(self.backoff_cap_ms);
        Duration::from_millis(ms)
    }

    /// [`RetryPolicy::backoff`] with deterministic de-synchronization:
    /// `retrier` distinguishes concurrent backoff loops (each
    /// [`with_retries`] call gets its own ordinal). With `jitter_seed == 0`
    /// this is exactly `backoff(attempt)`; otherwise the sleep lands in
    /// `[backoff/2, backoff]` — same expected magnitude, but two retriers
    /// with different ordinals draw different offsets, so they stop
    /// retrying in lockstep.
    pub fn backoff_jittered(&self, attempt: u32, retrier: u64) -> Duration {
        let base = self.backoff(attempt);
        if self.jitter_seed == 0 || base.is_zero() {
            return base;
        }
        let half = base / 2;
        let mut rng = SplitMix64::seed_from_u64(
            self.jitter_seed ^ retrier.rotate_left(17) ^ ((attempt as u64) << 56),
        );
        let span = half.as_nanos() as u64;
        let jitter = if span == 0 {
            0
        } else {
            rng.next_u64() % (span + 1)
        };
        half + Duration::from_nanos(jitter)
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// Process-wide ordinal handed to each [`with_retries`] invocation so
/// concurrent retry loops draw from distinct jitter streams. Monotonic and
/// relaxed: the value only has to be *distinct*, not ordered.
static RETRIER_ORDINAL: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Run `op` with bounded exponential-backoff retries per `policy`. Disk-full
/// errors are returned immediately (retrying ENOSPC is pointless); other
/// errors are retried up to `policy.max_retries` times. Retry attempts and
/// eventual successes are recorded on `injector` when present. When the
/// policy carries a jitter seed, each retry loop sleeps on its own
/// deterministic jittered schedule (see [`RetryPolicy::backoff_jittered`]).
pub fn with_retries<T>(
    policy: &RetryPolicy,
    injector: Option<&FaultInjector>,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let retrier = RETRIER_ORDINAL.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => {
                if attempt > 0 {
                    if let Some(inj) = injector {
                        inj.note_retry_success();
                    }
                }
                return Ok(v);
            }
            Err(e) if attempt < policy.max_retries && !is_disk_full(&e) => {
                if let Some(inj) = injector {
                    inj.note_retry();
                }
                std::thread::sleep(policy.backoff_jittered(attempt, retrier));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_injector_injects_nothing() {
        let inj = FaultInjector::disabled();
        for _ in 0..64 {
            for site in ALL_FAULT_SITES {
                assert!(inj.on_io(site).is_none());
            }
        }
        assert_eq!(inj.counters(), FaultCounters::zero());
        assert!(!inj.is_armed());
    }

    #[test]
    fn transient_rule_fires_for_exactly_its_window() {
        let inj = FaultInjector::armed(FaultPlan::new().fail(
            FaultSite::WalAppend,
            2,
            FaultKind::Transient { failures: 3 },
        ));
        let fired: Vec<bool> = (0..8)
            .map(|_| inj.on_io(FaultSite::WalAppend).is_some())
            .collect();
        assert_eq!(fired, [false, false, true, true, true, false, false, false]);
        // Other sites are untouched.
        assert!(inj.on_io(FaultSite::SegmentRead).is_none());
        assert_eq!(inj.counters().injected_transient, 3);
    }

    #[test]
    fn permanent_and_disk_full_rules_fire_forever() {
        let inj = FaultInjector::armed(
            FaultPlan::new()
                .fail(FaultSite::SegmentRead, 1, FaultKind::Permanent)
                .fail(FaultSite::SnapshotWrite, 0, FaultKind::DiskFull),
        );
        assert!(inj.on_io(FaultSite::SegmentRead).is_none());
        for _ in 0..5 {
            match inj.on_io(FaultSite::SegmentRead) {
                Some(FaultAction::Error(e)) => assert!(!is_disk_full(&e)),
                other => panic!("expected permanent error, got {other:?}"),
            }
            match inj.on_io(FaultSite::SnapshotWrite) {
                Some(FaultAction::Error(e)) => assert!(is_disk_full(&e)),
                other => panic!("expected ENOSPC, got {other:?}"),
            }
        }
        let c = inj.counters();
        assert_eq!(c.injected_permanent, 5);
        assert_eq!(c.injected_disk_full, 5);
    }

    #[test]
    fn short_io_fires_exactly_once() {
        let inj =
            FaultInjector::armed(FaultPlan::new().fail(FaultSite::WalOpen, 0, FaultKind::ShortIo));
        assert!(matches!(
            inj.on_io(FaultSite::WalOpen),
            Some(FaultAction::ShortIo)
        ));
        assert!(inj.on_io(FaultSite::WalOpen).is_none());
        assert_eq!(inj.counters().injected_short_io, 1);
    }

    #[test]
    fn rearming_resets_call_counters_but_keeps_counters() {
        let inj = FaultInjector::armed(FaultPlan::new().fail(
            FaultSite::WalTrim,
            0,
            FaultKind::Transient { failures: 1 },
        ));
        assert!(inj.on_io(FaultSite::WalTrim).is_some());
        assert!(inj.on_io(FaultSite::WalTrim).is_none());
        inj.arm(FaultPlan::new().fail(FaultSite::WalTrim, 0, FaultKind::Transient { failures: 1 }));
        // Call counter reset: call 0 fires again.
        assert!(inj.on_io(FaultSite::WalTrim).is_some());
        assert_eq!(inj.counters().injected_transient, 2);
        inj.disarm();
        assert!(inj.on_io(FaultSite::WalTrim).is_none());
    }

    #[test]
    fn with_retries_recovers_from_transient_failures() {
        let inj = FaultInjector::disabled();
        let policy = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::none()
        };
        let mut left = 2;
        let out = with_retries(&policy, Some(&inj), || {
            if left > 0 {
                left -= 1;
                Err(io::Error::other("flaky"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        let c = inj.counters();
        assert_eq!(c.io_retries, 2);
        assert_eq!(c.io_retry_successes, 1);
    }

    #[test]
    fn with_retries_gives_up_after_budget_and_never_retries_enospc() {
        let policy = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::none()
        };
        let mut calls = 0;
        let out: io::Result<()> = with_retries(&policy, None, || {
            calls += 1;
            Err(io::Error::other("always"))
        });
        assert!(out.is_err());
        assert_eq!(calls, 3); // 1 initial + 2 retries

        let mut enospc_calls = 0;
        let out: io::Result<()> = with_retries(&policy, None, || {
            enospc_calls += 1;
            Err(disk_full_error(FaultSite::WalAppend))
        });
        assert!(is_disk_full(&out.unwrap_err()));
        assert_eq!(enospc_calls, 1);
    }

    #[test]
    fn seeded_transient_plans_are_deterministic_and_cover_every_site() {
        let a = FaultPlan::seeded_transient(7);
        let b = FaultPlan::seeded_transient(7);
        assert_eq!(a, b);
        assert_eq!(a.rules().len(), ALL_FAULT_SITES.len());
        for site in ALL_FAULT_SITES {
            assert!(a.rules().iter().any(|r| r.site == site
                && matches!(r.kind, FaultKind::Transient { failures } if failures >= 1)));
        }
        assert_ne!(a, FaultPlan::seeded_transient(8));
    }

    #[test]
    fn backoff_is_bounded() {
        let p = RetryPolicy::default();
        assert!(p.backoff(0) >= Duration::from_millis(1));
        assert!(p.backoff(40) <= Duration::from_millis(p.backoff_cap_ms));
        assert_eq!(RetryPolicy::none().backoff(5), Duration::ZERO);
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_stream_dependent() {
        let p = RetryPolicy::default().with_jitter_seed(0xC0FFEE);
        for attempt in 0..6 {
            for retrier in 0..8u64 {
                let base = p.backoff(attempt);
                let j = p.backoff_jittered(attempt, retrier);
                // Same keys, same sleep — reproducible under a fixed seed.
                assert_eq!(j, p.backoff_jittered(attempt, retrier));
                // Bounded by [base/2, base].
                assert!(j >= base / 2, "attempt {attempt} retrier {retrier}");
                assert!(j <= base, "attempt {attempt} retrier {retrier}");
            }
        }
        // Distinct retriers de-synchronize: at least one pair of streams must
        // differ for a non-trivial backoff window.
        let spread: Vec<Duration> = (0..16).map(|r| p.backoff_jittered(3, r)).collect();
        assert!(spread.iter().any(|d| *d != spread[0]));
        // Different seeds give different schedules.
        let q = RetryPolicy::default().with_jitter_seed(0xBEEF);
        assert!((0..16).any(|r| p.backoff_jittered(3, r) != q.backoff_jittered(3, r)));
    }

    #[test]
    fn jitter_disabled_by_default_keeps_legacy_schedule() {
        let p = RetryPolicy::default();
        assert_eq!(p.jitter_seed, 0);
        for attempt in 0..8 {
            assert_eq!(p.backoff_jittered(attempt, 42), p.backoff(attempt));
        }
        // Zero-width backoff never sleeps, jittered or not.
        let z = RetryPolicy::none().with_jitter_seed(9);
        assert_eq!(z.backoff_jittered(0, 1), Duration::ZERO);
    }

    #[test]
    fn with_retries_recovers_under_jitter() {
        let policy = RetryPolicy {
            max_retries: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 1,
            jitter_seed: 7,
        };
        let mut left = 2;
        let out = with_retries(&policy, None, || {
            if left > 0 {
                left -= 1;
                Err(io::Error::other("flaky"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
    }
}
